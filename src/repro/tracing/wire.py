"""Wire format for streamed RLE time-series blocks (paper Section 3.6).

The paper's tracer "streams RLE-encoded time series data" to the central
analyzer, and Section 3.5 credits RLE with "reduc[ing] the network
transmission overhead". This module is that wire format: a compact,
self-delimiting binary encoding of a :class:`RunLengthSeries` block with
an exact decode, so the transmission saving can actually be measured
(see ``benchmarks/test_fig10_trace_size.py`` and the wire-size tests).

Layout (little-endian)::

    magic     2 bytes  b"RL"
    version   1 byte
    quantum   8 bytes  float64 (seconds)
    start     8 bytes  int64   (absolute quantum index of the window)
    length    8 bytes  int64   (window length in quanta)
    runs      4 bytes  uint32  (number of runs)
    per run:
      offset  varint   (delta from previous run's end -- gap length)
      count   varint   (run length, >= 1)
      value   4 bytes  float32 (density value)

Run starts are delta-encoded against the previous run's end, so long
quiet zones cost one small varint instead of an absolute index.

Transport framing
-----------------

A raw block says *what* was measured but not *who* measured it or *where
it belongs in the stream*. For the fault-tolerant transport layer
(:mod:`repro.tracing.transport`) each block travels inside a
:class:`BlockFrame` that adds the sending tracer's identity, a
**per-tracer epoch** (bumped on tracer restart, so pre-restart blocks can
never be resurrected), a **per-stream sequence number** (so the receiver
can detect drops, duplicates and reordering) and a CRC-32 over the frame
body (so corruption on a lossy link is detected instead of silently
decoded). Layout (little-endian)::

    magic     2 bytes  b"RF"
    version   1 byte
    crc32     4 bytes  uint32, CRC-32 of every byte after this field
    flags     1 byte   (bit 0: heartbeat -- no block payload;
                        bit 1: packed timestamp batch payload)
    epoch     varint
    seq       varint
    node      varint length + utf-8 (observing tracer id)
    src       varint length + utf-8 (edge source; empty for heartbeats)
    dst       varint length + utf-8 (edge destination; empty for heartbeats)
    block     remaining bytes: one encode_block() payload (data frames only)

Packed timestamp frames
-----------------------

The high-throughput ingest path ships raw capture timestamps in bulk:
one :class:`TimestampFrame` carries N float64 timestamps for one edge as
a packed little-endian array (``np.frombuffer`` on decode -- no
per-record parsing). It shares the CRC-framed envelope above; after the
``dst`` string the payload continues::

    side      1 byte   (1: observed at destination, 0: at source)
    count     varint   (number of timestamps)
    payload   count * 8 bytes, little-endian float64

The per-record :class:`~repro.tracing.records.CaptureRecord` path stays
available for compatibility; batch frames are strictly additive.
"""

from __future__ import annotations

import dataclasses
import struct
import zlib
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

import numpy as np

from repro.core.rle import RunLengthSeries
from repro.errors import SeriesError, TraceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

MAGIC = b"RL"
VERSION = 1

FRAME_MAGIC = b"RF"
FRAME_VERSION = 1
#: Frame flag bit: heartbeat frame (liveness only, no block payload).
FRAME_FLAG_HEARTBEAT = 0x01
#: Frame flag bit: packed float64 timestamp-batch payload (no RLE block).
FRAME_FLAG_TIMESTAMPS = 0x02

_HEADER = struct.Struct("<2sBdqqI")
_FRAME_PREFIX = struct.Struct("<2sBI")  # magic, version, crc32


def _encode_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise TraceError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TraceError("truncated varint in wire block")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise TraceError("varint overflow in wire block")


def encode_block(
    series: RunLengthSeries, metrics: Optional["MetricsRegistry"] = None
) -> bytes:
    """Serialize one RLE block to its wire representation.

    ``metrics`` (optional) receives ``wire_blocks_encoded_total``,
    ``wire_bytes_encoded_total`` and the ``wire_runs_per_block`` histogram.
    """
    out = bytearray(
        _HEADER.pack(
            MAGIC, VERSION, series.quantum, series.start, series.length,
            series.num_runs,
        )
    )
    previous_end = series.start
    for run in series:
        _encode_varint(run.start - previous_end, out)
        _encode_varint(run.count, out)
        out += struct.pack("<f", run.value)
        previous_end = run.start + run.count
    if metrics is not None:
        _wire_metrics(metrics, "encoded", len(out), series.num_runs)
    return bytes(out)


def decode_block(
    data: bytes, metrics: Optional["MetricsRegistry"] = None
) -> RunLengthSeries:
    """Exact inverse of :func:`encode_block` (float32 value precision).

    Truncated or corrupted payloads raise :class:`~repro.errors.TraceError`
    -- never a bare ``struct.error`` or a series-construction error -- so a
    streaming analyzer can drop the block and keep its refresh loop alive.

    ``metrics`` (optional) receives ``wire_blocks_decoded_total``,
    ``wire_bytes_decoded_total`` and the ``wire_runs_per_block`` histogram.
    """
    if len(data) < _HEADER.size:
        raise TraceError("wire block shorter than header")
    magic, version, quantum, start, length, num_runs = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise TraceError(f"bad wire magic {magic!r}")
    if version != VERSION:
        raise TraceError(f"unsupported wire version {version}")
    if not quantum > 0.0:  # also rejects NaN from corrupted header bytes
        raise TraceError(f"corrupt wire block: bad quantum {quantum!r}")
    if length < 0:
        raise TraceError(f"corrupt wire block: negative length {length}")
    pos = _HEADER.size
    starts: List[int] = []
    counts: List[int] = []
    values: List[float] = []
    previous_end = start
    for _ in range(num_runs):
        gap, pos = _decode_varint(data, pos)
        count, pos = _decode_varint(data, pos)
        if pos + 4 > len(data):
            raise TraceError("truncated run value in wire block")
        (value,) = struct.unpack_from("<f", data, pos)
        pos += 4
        run_start = previous_end + gap
        starts.append(run_start)
        counts.append(count)
        values.append(value)
        previous_end = run_start + count
    if pos != len(data):
        raise TraceError(f"{len(data) - pos} trailing bytes in wire block")
    try:
        block = RunLengthSeries(
            np.array(starts, dtype=np.int64),
            np.array(counts, dtype=np.int64),
            np.array(values, dtype=np.float64),
            start,
            length,
            quantum,
        )
    except SeriesError as exc:
        # Corruption that survives the framing checks (flipped value bytes,
        # runs escaping the window) surfaces as the documented wire error.
        raise TraceError(f"corrupt wire block: {exc}") from exc
    if metrics is not None:
        _wire_metrics(metrics, "decoded", len(data), block.num_runs)
    return block


def _wire_metrics(
    metrics: "MetricsRegistry", direction: str, num_bytes: int, num_runs: int
) -> None:
    """Record one block's codec counters into a registry."""
    from repro.obs.instruments import DEFAULT_COUNT_BUCKETS

    metrics.counter(
        f"wire_blocks_{direction}_total", f"RLE blocks {direction}"
    ).inc()
    metrics.counter(
        f"wire_bytes_{direction}_total", f"Wire-format bytes {direction}"
    ).inc(num_bytes)
    metrics.histogram(
        "wire_runs_per_block",
        "RLE runs per block crossing the wire codec",
        buckets=DEFAULT_COUNT_BUCKETS,
    ).observe(num_runs)


# -- transport framing ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class BlockFrame:
    """One transport frame: a wire block plus stream bookkeeping.

    Attributes
    ----------
    node:
        Id of the tracer that produced the frame.
    epoch:
        Per-tracer restart epoch; bumped whenever the tracer restarts so
        the receiver can reject blocks that predate the restart.
    seq:
        Sequence number within the ``(node, src, dst)`` stream for this
        epoch; one block per flush round, starting at 0.
    src, dst:
        The edge the block measures (empty strings for heartbeats).
    block:
        The RLE payload, or None for a heartbeat frame.
    """

    node: str
    epoch: int
    seq: int
    src: str
    dst: str
    block: Optional[RunLengthSeries] = None

    @property
    def is_heartbeat(self) -> bool:
        return self.block is None

    @property
    def edge(self) -> Tuple[str, str]:
        return (self.src, self.dst)


@dataclasses.dataclass(frozen=True, eq=False)
class TimestampFrame:
    """One transport frame carrying a packed timestamp batch.

    The columnar sibling of :class:`BlockFrame`: the same envelope
    (node identity, restart epoch, per-stream sequence number, CRC-32)
    around N raw float64 capture timestamps for one edge instead of an
    RLE block. ``observed_at_destination`` records which endpoint
    captured the batch, so the receiving collector files it on the
    correct side.
    """

    node: str
    epoch: int
    seq: int
    src: str
    dst: str
    timestamps: np.ndarray
    observed_at_destination: bool = True

    def __post_init__(self) -> None:
        arr = np.asarray(self.timestamps, dtype=np.float64)
        if arr.ndim != 1:
            raise TraceError(
                f"timestamp frame payload must be one-dimensional, got {arr.shape}"
            )
        object.__setattr__(self, "timestamps", arr)

    @property
    def edge(self) -> Tuple[str, str]:
        return (self.src, self.dst)

    def __len__(self) -> int:
        return int(self.timestamps.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimestampFrame):
            return NotImplemented
        return (
            self.node == other.node
            and self.epoch == other.epoch
            and self.seq == other.seq
            and self.src == other.src
            and self.dst == other.dst
            and self.observed_at_destination == other.observed_at_destination
            and np.array_equal(self.timestamps, other.timestamps)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable array payload


#: Either transport frame kind, as returned by :func:`decode_frame`.
AnyFrame = Union[BlockFrame, TimestampFrame]


def _encode_string(text: str, out: bytearray) -> None:
    raw = text.encode("utf-8")
    _encode_varint(len(raw), out)
    out += raw


def _decode_string(data: bytes, pos: int) -> Tuple[str, int]:
    length, pos = _decode_varint(data, pos)
    if pos + length > len(data):
        raise TraceError("truncated string in transport frame")
    try:
        text = data[pos : pos + length].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceError(f"corrupt transport frame: bad utf-8 ({exc})") from exc
    return text, pos + length


def encode_frame(frame: AnyFrame) -> bytes:
    """Serialize one :class:`BlockFrame` or :class:`TimestampFrame`."""
    body = bytearray()
    if isinstance(frame, TimestampFrame):
        body.append(FRAME_FLAG_TIMESTAMPS)
    else:
        body.append(FRAME_FLAG_HEARTBEAT if frame.is_heartbeat else 0)
    _encode_varint(frame.epoch, body)
    _encode_varint(frame.seq, body)
    _encode_string(frame.node, body)
    _encode_string(frame.src, body)
    _encode_string(frame.dst, body)
    if isinstance(frame, TimestampFrame):
        body.append(1 if frame.observed_at_destination else 0)
        _encode_varint(int(frame.timestamps.size), body)
        body += np.ascontiguousarray(frame.timestamps, dtype="<f8").tobytes()
    elif frame.block is not None:
        body += encode_block(frame.block)
    return _FRAME_PREFIX.pack(FRAME_MAGIC, FRAME_VERSION, zlib.crc32(body)) + bytes(
        body
    )


def decode_frame(data: bytes) -> AnyFrame:
    """Exact inverse of :func:`encode_frame`.

    Truncation, a failed CRC-32, or any corruption in the embedded
    payload raises :class:`~repro.errors.TraceError` -- the transport
    receiver counts such frames (``transport_corrupt_blocks_total``) and
    drops them instead of letting the refresh loop die. Returns a
    :class:`TimestampFrame` for packed-batch frames, a
    :class:`BlockFrame` otherwise.
    """
    if len(data) < _FRAME_PREFIX.size + 1:
        raise TraceError("transport frame shorter than header")
    magic, version, crc = _FRAME_PREFIX.unpack_from(data, 0)
    if magic != FRAME_MAGIC:
        raise TraceError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise TraceError(f"unsupported frame version {version}")
    body = data[_FRAME_PREFIX.size :]
    if zlib.crc32(body) != crc:
        raise TraceError("transport frame failed CRC-32 check")
    flags = body[0]
    pos = 1
    epoch, pos = _decode_varint(body, pos)
    seq, pos = _decode_varint(body, pos)
    node, pos = _decode_string(body, pos)
    src, pos = _decode_string(body, pos)
    dst, pos = _decode_string(body, pos)
    if flags & FRAME_FLAG_TIMESTAMPS:
        at_destination, timestamps, pos = _decode_timestamp_payload(body, pos)
        if pos != len(body):
            raise TraceError(f"{len(body) - pos} trailing bytes in timestamp frame")
        return TimestampFrame(
            node, epoch, seq, src, dst, timestamps,
            observed_at_destination=at_destination,
        )
    if flags & FRAME_FLAG_HEARTBEAT:
        if pos != len(body):
            raise TraceError(f"{len(body) - pos} trailing bytes in heartbeat frame")
        return BlockFrame(node, epoch, seq, src, dst, None)
    block = decode_block(body[pos:])
    return BlockFrame(node, epoch, seq, src, dst, block)


def _decode_timestamp_payload(
    body: bytes, pos: int
) -> Tuple[bool, np.ndarray, int]:
    """Decode ``side + count + packed float64`` from a timestamp frame."""
    if pos >= len(body):
        raise TraceError("truncated timestamp frame: missing side byte")
    side = body[pos]
    pos += 1
    if side not in (0, 1):
        raise TraceError(f"corrupt timestamp frame: bad side byte {side}")
    count, pos = _decode_varint(body, pos)
    end = pos + 8 * count
    if end > len(body):
        raise TraceError("truncated timestamp frame payload")
    timestamps = np.frombuffer(body, dtype="<f8", count=count, offset=pos)
    if count and not np.isfinite(timestamps).all():
        raise TraceError("corrupt timestamp frame: non-finite timestamp")
    return bool(side), timestamps, end


def wire_sizes(series: RunLengthSeries, message_count: int = 0) -> dict:
    """Byte counts of the alternatives the paper compares.

    * ``raw_timestamps``: 8 bytes per captured message (the
      tcpdump-and-forward strawman); pass ``message_count``.
    * ``dense``: 4 bytes per quantum of the window.
    * ``sparse``: 12 bytes per non-zero sample (8 index + 4 value).
    * ``rle_wire``: the actual encoded block.
    """
    return {
        "raw_timestamps": 8 * message_count,
        "dense": 4 * series.length,
        "sparse": 12 * series.nnz,
        "rle_wire": len(encode_block(series)),
    }
