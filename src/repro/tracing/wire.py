"""Wire format for streamed RLE time-series blocks (paper Section 3.6).

The paper's tracer "streams RLE-encoded time series data" to the central
analyzer, and Section 3.5 credits RLE with "reduc[ing] the network
transmission overhead". This module is that wire format: a compact,
self-delimiting binary encoding of a :class:`RunLengthSeries` block with
an exact decode, so the transmission saving can actually be measured
(see ``benchmarks/test_fig10_trace_size.py`` and the wire-size tests).

Layout (little-endian)::

    magic     2 bytes  b"RL"
    version   1 byte
    quantum   8 bytes  float64 (seconds)
    start     8 bytes  int64   (absolute quantum index of the window)
    length    8 bytes  int64   (window length in quanta)
    runs      4 bytes  uint32  (number of runs)
    per run:
      offset  varint   (delta from previous run's end -- gap length)
      count   varint   (run length, >= 1)
      value   4 bytes  float32 (density value)

Run starts are delta-encoded against the previous run's end, so long
quiet zones cost one small varint instead of an absolute index.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.rle import RunLengthSeries
from repro.errors import SeriesError, TraceError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

MAGIC = b"RL"
VERSION = 1

_HEADER = struct.Struct("<2sBdqqI")


def _encode_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise TraceError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _decode_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise TraceError("truncated varint in wire block")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise TraceError("varint overflow in wire block")


def encode_block(
    series: RunLengthSeries, metrics: Optional["MetricsRegistry"] = None
) -> bytes:
    """Serialize one RLE block to its wire representation.

    ``metrics`` (optional) receives ``wire_blocks_encoded_total``,
    ``wire_bytes_encoded_total`` and the ``wire_runs_per_block`` histogram.
    """
    out = bytearray(
        _HEADER.pack(
            MAGIC, VERSION, series.quantum, series.start, series.length,
            series.num_runs,
        )
    )
    previous_end = series.start
    for run in series:
        _encode_varint(run.start - previous_end, out)
        _encode_varint(run.count, out)
        out += struct.pack("<f", run.value)
        previous_end = run.start + run.count
    if metrics is not None:
        _wire_metrics(metrics, "encoded", len(out), series.num_runs)
    return bytes(out)


def decode_block(
    data: bytes, metrics: Optional["MetricsRegistry"] = None
) -> RunLengthSeries:
    """Exact inverse of :func:`encode_block` (float32 value precision).

    Truncated or corrupted payloads raise :class:`~repro.errors.TraceError`
    -- never a bare ``struct.error`` or a series-construction error -- so a
    streaming analyzer can drop the block and keep its refresh loop alive.

    ``metrics`` (optional) receives ``wire_blocks_decoded_total``,
    ``wire_bytes_decoded_total`` and the ``wire_runs_per_block`` histogram.
    """
    if len(data) < _HEADER.size:
        raise TraceError("wire block shorter than header")
    magic, version, quantum, start, length, num_runs = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise TraceError(f"bad wire magic {magic!r}")
    if version != VERSION:
        raise TraceError(f"unsupported wire version {version}")
    if not quantum > 0.0:  # also rejects NaN from corrupted header bytes
        raise TraceError(f"corrupt wire block: bad quantum {quantum!r}")
    if length < 0:
        raise TraceError(f"corrupt wire block: negative length {length}")
    pos = _HEADER.size
    starts: List[int] = []
    counts: List[int] = []
    values: List[float] = []
    previous_end = start
    for _ in range(num_runs):
        gap, pos = _decode_varint(data, pos)
        count, pos = _decode_varint(data, pos)
        if pos + 4 > len(data):
            raise TraceError("truncated run value in wire block")
        (value,) = struct.unpack_from("<f", data, pos)
        pos += 4
        run_start = previous_end + gap
        starts.append(run_start)
        counts.append(count)
        values.append(value)
        previous_end = run_start + count
    if pos != len(data):
        raise TraceError(f"{len(data) - pos} trailing bytes in wire block")
    try:
        block = RunLengthSeries(
            np.array(starts, dtype=np.int64),
            np.array(counts, dtype=np.int64),
            np.array(values, dtype=np.float64),
            start,
            length,
            quantum,
        )
    except SeriesError as exc:
        # Corruption that survives the framing checks (flipped value bytes,
        # runs escaping the window) surfaces as the documented wire error.
        raise TraceError(f"corrupt wire block: {exc}") from exc
    if metrics is not None:
        _wire_metrics(metrics, "decoded", len(data), block.num_runs)
    return block


def _wire_metrics(
    metrics: "MetricsRegistry", direction: str, num_bytes: int, num_runs: int
) -> None:
    """Record one block's codec counters into a registry."""
    from repro.obs.instruments import DEFAULT_COUNT_BUCKETS

    metrics.counter(
        f"wire_blocks_{direction}_total", f"RLE blocks {direction}"
    ).inc()
    metrics.counter(
        f"wire_bytes_{direction}_total", f"Wire-format bytes {direction}"
    ).inc(num_bytes)
    metrics.histogram(
        "wire_runs_per_block",
        "RLE runs per block crossing the wire codec",
        buckets=DEFAULT_COUNT_BUCKETS,
    ).observe(num_runs)


def wire_sizes(series: RunLengthSeries, message_count: int = 0) -> dict:
    """Byte counts of the alternatives the paper compares.

    * ``raw_timestamps``: 8 bytes per captured message (the
      tcpdump-and-forward strawman); pass ``message_count``.
    * ``dense``: 4 bytes per quantum of the window.
    * ``sparse``: 12 bytes per non-zero sample (8 index + 4 value).
    * ``rle_wire``: the actual encoded block.
    """
    return {
        "raw_timestamps": 8 * message_count,
        "dense": 4 * series.length,
        "sparse": 12 * series.nnz,
        "rle_wire": len(encode_block(series)),
    }
