"""Trace file I/O.

Traces are persisted as JSON Lines (one record per line) or CSV. Both
formats round-trip exactly through the dataclasses in
:mod:`repro.tracing.records`, so a simulation run can be captured once and
re-analyzed many times (the paper analyzes a week-long Delta trace
offline the same way).

For high-volume captures there is additionally a **binary columnar**
format (``.rtb``, "repro timestamp binary"): one CRC-checked section per
``(edge, side)`` stream holding a packed little-endian float64 timestamp
array, read back with a single ``np.frombuffer`` per section instead of
per-record parsing. Layout::

    magic       4 bytes  b"RTB1"
    per section:
      crc32     4 bytes  uint32, CRC-32 of the section body
      body_len  4 bytes  uint32, byte length of the section body
      body:
        src     2-byte length + utf-8
        dst     2-byte length + utf-8
        side    1 byte   (1: observed at destination, 0: at source)
        count   8 bytes  uint64
        payload count * 8 bytes, little-endian float64

Truncated sections and flipped bytes raise
:class:`~repro.errors.TraceError` (CRC mismatch), mirroring the wire
frame codec's corruption contract.

Binary captures can be read **zero-copy**: ``read_capture_binary(path,
mmap=True)`` memory-maps the file and returns timestamp arrays that are
views straight into the page cache (``np.frombuffer`` over a
``memoryview`` of the mapping) instead of heap copies. Every decoded
value is bit-identical to the copying read path and the CRC check still
runs over every section; the arrays keep the mapping alive through
ordinary refcounting, so batches can outlive the reader.
"""

from __future__ import annotations

import csv
import json
import mmap as _mmap
import struct
import zlib
from pathlib import Path
from typing import Iterable, Iterator, List, Union

import numpy as np

from repro.errors import TraceError
from repro.tracing.records import AccessLogRecord, CaptureRecord, TimestampBatch

PathLike = Union[str, Path]

#: File magic of the binary columnar capture format, version 1.
BINARY_MAGIC = b"RTB1"

_SECTION_HEADER = struct.Struct("<II")  # crc32, body length
_STRING_LEN = struct.Struct("<H")
_COUNT = struct.Struct("<Q")


# -- capture records (packet traces) ------------------------------------------


def write_capture_jsonl(path: PathLike, records: Iterable[CaptureRecord]) -> int:
    """Write capture records as JSON Lines; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "ts": record.timestamp,
                        "src": record.src,
                        "dst": record.dst,
                        "obs": record.observer,
                        "req": record.request_id,
                        "cls": record.service_class,
                    },
                    separators=(",", ":"),
                )
            )
            handle.write("\n")
            count += 1
    return count


def read_capture_jsonl(path: PathLike) -> Iterator[CaptureRecord]:
    """Stream capture records from a JSON Lines file."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                yield CaptureRecord(
                    timestamp=float(data["ts"]),
                    src=data["src"],
                    dst=data["dst"],
                    observer=data["obs"],
                    request_id=data.get("req"),
                    service_class=data.get("cls"),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise TraceError(f"{path}:{lineno}: malformed record: {exc}") from exc


_CAPTURE_FIELDS = ["timestamp", "src", "dst", "observer", "request_id", "service_class"]


def write_capture_csv(path: PathLike, records: Iterable[CaptureRecord]) -> int:
    """Write capture records as CSV with a header row."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CAPTURE_FIELDS)
        for record in records:
            writer.writerow(
                [
                    repr(record.timestamp),
                    record.src,
                    record.dst,
                    record.observer,
                    "" if record.request_id is None else record.request_id,
                    record.service_class or "",
                ]
            )
            count += 1
    return count


def read_capture_csv(path: PathLike) -> Iterator[CaptureRecord]:
    """Stream capture records from a CSV file written by write_capture_csv."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CAPTURE_FIELDS:
            raise TraceError(f"{path}: unexpected CSV header {header}")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                yield CaptureRecord(
                    timestamp=float(row[0]),
                    src=row[1],
                    dst=row[2],
                    observer=row[3],
                    request_id=int(row[4]) if row[4] else None,
                    service_class=row[5] or None,
                )
            except (IndexError, ValueError) as exc:
                raise TraceError(f"{path}:{lineno}: malformed row: {exc}") from exc


# -- binary columnar captures ---------------------------------------------------


def _encode_section(batch: TimestampBatch) -> bytes:
    src = batch.src.encode("utf-8")
    dst = batch.dst.encode("utf-8")
    if len(src) > 0xFFFF or len(dst) > 0xFFFF:
        raise TraceError("node id longer than 65535 bytes in binary capture")
    body = bytearray()
    body += _STRING_LEN.pack(len(src))
    body += src
    body += _STRING_LEN.pack(len(dst))
    body += dst
    body.append(1 if batch.observed_at_destination else 0)
    body += _COUNT.pack(int(batch.timestamps.size))
    body += np.ascontiguousarray(batch.timestamps, dtype="<f8").tobytes()
    return _SECTION_HEADER.pack(zlib.crc32(body), len(body)) + bytes(body)


def _decode_section_body(
    body: "Union[bytes, memoryview]", path: PathLike, index: int
) -> TimestampBatch:
    def fail(why: str) -> TraceError:
        return TraceError(f"{path}: section {index}: {why}")

    pos = 0
    names: List[str] = []
    for _ in range(2):
        if pos + _STRING_LEN.size > len(body):
            raise fail("truncated node id length")
        (length,) = _STRING_LEN.unpack_from(body, pos)
        pos += _STRING_LEN.size
        if pos + length > len(body):
            raise fail("truncated node id")
        try:
            # bytes() is a no-op copy on bytes input and a tiny (node id
            # sized) copy when ``body`` is a memoryview over an mmap.
            names.append(bytes(body[pos : pos + length]).decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise fail(f"bad utf-8 node id ({exc})") from exc
        pos += length
    if pos >= len(body):
        raise fail("truncated side byte")
    side = body[pos]
    pos += 1
    if side not in (0, 1):
        raise fail(f"bad side byte {side}")
    if pos + _COUNT.size > len(body):
        raise fail("truncated timestamp count")
    (count,) = _COUNT.unpack_from(body, pos)
    pos += _COUNT.size
    if pos + 8 * count != len(body):
        raise fail(
            f"payload length mismatch: {len(body) - pos} bytes for {count} timestamps"
        )
    timestamps = np.frombuffer(body, dtype="<f8", count=count, offset=pos)
    if count and not np.isfinite(timestamps).all():
        raise fail("non-finite timestamp")
    try:
        return TimestampBatch(names[0], names[1], bool(side), timestamps)
    except TraceError as exc:
        raise fail(str(exc)) from exc


def encode_capture_section(batch: TimestampBatch) -> "tuple[bytes, int]":
    """One encoded ``.rtb`` section and its body CRC-32.

    The trace lake writes single-section segment files and catalogs the
    body CRC in its manifest, so corruption detected by the reader can be
    cross-checked against the catalog without re-reading the segment.
    """
    section = _encode_section(batch)
    crc, _ = _SECTION_HEADER.unpack_from(section)
    return section, int(crc)


def write_capture_binary(
    path: PathLike, batches: Iterable[TimestampBatch]
) -> int:
    """Write per-stream timestamp batches in the binary columnar format.

    ``batches`` typically comes from
    :meth:`~repro.tracing.collector.TraceCollector.export_batches`.
    Returns the total number of timestamps written.
    """
    count = 0
    with open(path, "wb") as handle:
        handle.write(BINARY_MAGIC)
        for batch in batches:
            handle.write(_encode_section(batch))
            count += len(batch)
    return count


def read_capture_binary(
    path: PathLike, mmap: bool = False
) -> Iterator[TimestampBatch]:
    """Stream per-stream timestamp batches from a binary capture file.

    Each section is CRC-checked before its payload is interpreted; any
    truncation or corruption raises :class:`~repro.errors.TraceError`.

    With ``mmap=True`` the file is memory-mapped read-only and every
    batch's timestamp array is a **zero-copy** ``np.frombuffer`` view
    into the mapping (read-only, bit-identical to the copying path).
    The views hold the mapping alive via refcounting: the mapping -- and
    its pages -- are released only once the last batch referencing it is
    garbage-collected, so replay can hand batches to ``capture_sink``
    and shard shared-memory shipment without ever materializing the
    payload on the heap.
    """
    if mmap:
        with open(path, "rb") as handle:
            try:
                mapping = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
            except ValueError:
                # Zero-length file: cannot be mapped, and cannot carry
                # the magic either.
                raise TraceError(
                    f"{path}: not a binary capture file (bad magic)"
                ) from None
        # The mapping keeps its own dup of the descriptor; the Python
        # handle can close immediately.
        data: "Union[bytes, memoryview]" = memoryview(mapping)
    else:
        with open(path, "rb") as handle:
            data = handle.read()
    if len(data) < len(BINARY_MAGIC) or bytes(data[: len(BINARY_MAGIC)]) != BINARY_MAGIC:
        raise TraceError(f"{path}: not a binary capture file (bad magic)")
    pos = len(BINARY_MAGIC)
    index = 0
    while pos < len(data):
        if pos + _SECTION_HEADER.size > len(data):
            raise TraceError(f"{path}: section {index}: truncated header")
        crc, body_len = _SECTION_HEADER.unpack_from(data, pos)
        pos += _SECTION_HEADER.size
        body = data[pos : pos + body_len]
        if len(body) != body_len:
            raise TraceError(f"{path}: section {index}: truncated body")
        if zlib.crc32(body) != crc:
            raise TraceError(f"{path}: section {index}: failed CRC-32 check")
        yield _decode_section_body(body, path, index)
        pos += body_len
        index += 1


def read_capture_binary_records(
    path: PathLike, mmap: bool = False
) -> Iterator[CaptureRecord]:
    """Binary capture file as per-record :class:`CaptureRecord` objects.

    The record-oriented view of :func:`read_capture_binary`, for callers
    (and the ``load_captures`` dispatch) that predate batches.
    """
    for batch in read_capture_binary(path, mmap=mmap):
        observer = batch.observer
        for t in batch.timestamps.tolist():
            yield CaptureRecord(t, batch.src, batch.dst, observer)


def load_capture_batches(path: PathLike, mmap: bool = False) -> List[TimestampBatch]:
    """Load a whole binary capture trace as timestamp batches.

    ``mmap=True`` returns zero-copy batches backed by the file mapping
    (see :func:`read_capture_binary`).
    """
    return list(read_capture_binary(path, mmap=mmap))


# -- access-log records (Delta-style traces) -----------------------------------


def write_access_log_jsonl(path: PathLike, records: Iterable[AccessLogRecord]) -> int:
    """Write access-log records as JSON Lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "ts": record.timestamp,
                        "srv": record.server,
                        "req": record.request_id,
                        "ev": record.event,
                        "peer": record.peer,
                    },
                    separators=(",", ":"),
                )
            )
            handle.write("\n")
            count += 1
    return count


def read_access_log_jsonl(path: PathLike) -> Iterator[AccessLogRecord]:
    """Stream access-log records from a JSON Lines file."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                yield AccessLogRecord(
                    timestamp=float(data["ts"]),
                    server=data["srv"],
                    request_id=int(data["req"]),
                    event=data.get("ev", "recv"),
                    peer=data.get("peer"),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise TraceError(f"{path}:{lineno}: malformed record: {exc}") from exc


def load_captures(path: PathLike) -> List[CaptureRecord]:
    """Load a whole capture trace, dispatching on the file extension."""
    path = Path(path)
    if path.suffix == ".csv":
        return list(read_capture_csv(path))
    if path.suffix == ".rtb":
        return list(read_capture_binary_records(path))
    return list(read_capture_jsonl(path))
