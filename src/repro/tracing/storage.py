"""Trace file I/O.

Traces are persisted as JSON Lines (one record per line) or CSV. Both
formats round-trip exactly through the dataclasses in
:mod:`repro.tracing.records`, so a simulation run can be captured once and
re-analyzed many times (the paper analyzes a week-long Delta trace
offline the same way).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.errors import TraceError
from repro.tracing.records import AccessLogRecord, CaptureRecord

PathLike = Union[str, Path]


# -- capture records (packet traces) ------------------------------------------


def write_capture_jsonl(path: PathLike, records: Iterable[CaptureRecord]) -> int:
    """Write capture records as JSON Lines; returns the record count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "ts": record.timestamp,
                        "src": record.src,
                        "dst": record.dst,
                        "obs": record.observer,
                        "req": record.request_id,
                        "cls": record.service_class,
                    },
                    separators=(",", ":"),
                )
            )
            handle.write("\n")
            count += 1
    return count


def read_capture_jsonl(path: PathLike) -> Iterator[CaptureRecord]:
    """Stream capture records from a JSON Lines file."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                yield CaptureRecord(
                    timestamp=float(data["ts"]),
                    src=data["src"],
                    dst=data["dst"],
                    observer=data["obs"],
                    request_id=data.get("req"),
                    service_class=data.get("cls"),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise TraceError(f"{path}:{lineno}: malformed record: {exc}") from exc


_CAPTURE_FIELDS = ["timestamp", "src", "dst", "observer", "request_id", "service_class"]


def write_capture_csv(path: PathLike, records: Iterable[CaptureRecord]) -> int:
    """Write capture records as CSV with a header row."""
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CAPTURE_FIELDS)
        for record in records:
            writer.writerow(
                [
                    repr(record.timestamp),
                    record.src,
                    record.dst,
                    record.observer,
                    "" if record.request_id is None else record.request_id,
                    record.service_class or "",
                ]
            )
            count += 1
    return count


def read_capture_csv(path: PathLike) -> Iterator[CaptureRecord]:
    """Stream capture records from a CSV file written by write_capture_csv."""
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CAPTURE_FIELDS:
            raise TraceError(f"{path}: unexpected CSV header {header}")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                yield CaptureRecord(
                    timestamp=float(row[0]),
                    src=row[1],
                    dst=row[2],
                    observer=row[3],
                    request_id=int(row[4]) if row[4] else None,
                    service_class=row[5] or None,
                )
            except (IndexError, ValueError) as exc:
                raise TraceError(f"{path}:{lineno}: malformed row: {exc}") from exc


# -- access-log records (Delta-style traces) -----------------------------------


def write_access_log_jsonl(path: PathLike, records: Iterable[AccessLogRecord]) -> int:
    """Write access-log records as JSON Lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                json.dumps(
                    {
                        "ts": record.timestamp,
                        "srv": record.server,
                        "req": record.request_id,
                        "ev": record.event,
                        "peer": record.peer,
                    },
                    separators=(",", ":"),
                )
            )
            handle.write("\n")
            count += 1
    return count


def read_access_log_jsonl(path: PathLike) -> Iterator[AccessLogRecord]:
    """Stream access-log records from a JSON Lines file."""
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                yield AccessLogRecord(
                    timestamp=float(data["ts"]),
                    server=data["srv"],
                    request_id=int(data["req"]),
                    event=data.get("ev", "recv"),
                    peer=data.get("peer"),
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise TraceError(f"{path}:{lineno}: malformed record: {exc}") from exc


def load_captures(path: PathLike) -> List[CaptureRecord]:
    """Load a whole capture trace, dispatching on the file extension."""
    path = Path(path)
    if path.suffix == ".csv":
        return list(read_capture_csv(path))
    return list(read_capture_jsonl(path))
