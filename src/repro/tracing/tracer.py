"""Per-node packet tracer (paper Section 3.6).

The paper implements a Linux kernel module (`tracer`) that hooks netfilter,
observes every packet entering or leaving its node, computes the density
time series locally, and streams **RLE-encoded** series to the central
analyzer -- offloading time-series computation from the analysis node and
shrinking network transmission.

:class:`Tracer` is the simulation-side equivalent. It is attached to one
service node, receives ``observe()`` callbacks for every packet the node
sends or receives (timestamped by the node's local clock, which may be
skewed), and can flush the accumulated window into per-edge
:class:`~repro.core.rle.RunLengthSeries` blocks exactly as the kernel
module would stream them.
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import PathmapConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
from repro.core.rle import RunLengthSeries, rle_encode
from repro.core.timeseries import build_density_series
from repro.errors import TraceError
from repro.tracing.records import CaptureRecord, NodeId

logger = logging.getLogger(__name__)

EdgeKey = Tuple[NodeId, NodeId]


class Tracer:
    """Passive packet observer for one service node.

    Parameters
    ----------
    node:
        Id of the node this tracer runs on.
    clock_skew:
        Constant offset (seconds) of this node's clock relative to true
        time; every observed timestamp is shifted by it (Section 3.8).
    """

    def __init__(self, node: NodeId, clock_skew: float = 0.0) -> None:
        self.node = node
        self.clock_skew = float(clock_skew)
        self._timestamps: Dict[EdgeKey, List[float]] = {}
        # Per-edge capture buffer for drain_batches(); None until batch
        # streaming is enabled, so observe() pays one attribute check.
        self._pending_batches: Optional[Dict[EdgeKey, List[float]]] = None
        self._count = 0
        #: How many times this tracer has been restarted (module reload /
        #: crash recovery). The transport layer bumps its stream epoch in
        #: lockstep so pre-restart blocks can never be resurrected.
        self.restarts = 0
        # Metrics stay unbound (zero cost on the per-packet path) until an
        # observer opts in via bind_metrics.
        self._m_packets = None
        self._m_flushes = None

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Report ``tracer_packets_observed_total`` and
        ``tracer_blocks_flushed_total`` into ``metrics`` from now on.

        The online engine binds its registry to every tracer on ``attach``
        when that registry is enabled; unbound tracers skip metric work
        entirely (``observe`` runs once per simulated packet).
        """
        self._m_packets = metrics.counter(
            "tracer_packets_observed_total", "Packets captured by per-node tracers"
        )
        self._m_flushes = metrics.counter(
            "tracer_blocks_flushed_total", "RLE blocks flushed by per-node tracers"
        )

    # -- capture ---------------------------------------------------------------

    def observe(self, timestamp: float, src: NodeId, dst: NodeId) -> CaptureRecord:
        """Record one packet on edge ``src -> dst`` passing this node.

        ``timestamp`` is true time; the stored value is by the local clock.
        """
        if self.node not in (src, dst):
            raise TraceError(
                f"tracer at {self.node!r} observed foreign packet {src!r}->{dst!r}"
            )
        local = timestamp + self.clock_skew
        self._timestamps.setdefault((src, dst), []).append(local)
        if self._pending_batches is not None:
            self._pending_batches.setdefault((src, dst), []).append(local)
        self._count += 1
        if self._m_packets is not None:
            self._m_packets.inc()
        return CaptureRecord(local, src, dst, self.node)

    def observe_batch(
        self, timestamps: Sequence[float], src: NodeId, dst: NodeId
    ) -> int:
        """Record many packets on edge ``src -> dst`` in one columnar write.

        ``timestamps`` are true times; the stored values are shifted by
        the local clock skew in one vectorized pass. Returns how many
        were recorded. No per-packet :class:`CaptureRecord` objects are
        materialized.
        """
        if self.node not in (src, dst):
            raise TraceError(
                f"tracer at {self.node!r} observed foreign packets {src!r}->{dst!r}"
            )
        local = np.asarray(timestamps, dtype=np.float64)
        if local.ndim != 1:
            raise TraceError(
                f"timestamp batch must be one-dimensional, got shape {local.shape}"
            )
        if local.size == 0:
            return 0
        if self.clock_skew:
            local = local + self.clock_skew
        values = local.tolist()
        self._timestamps.setdefault((src, dst), []).extend(values)
        if self._pending_batches is not None:
            self._pending_batches.setdefault((src, dst), []).extend(values)
        self._count += local.size
        if self._m_packets is not None:
            self._m_packets.inc(local.size)
        return int(local.size)

    def enable_batch_streaming(self) -> None:
        """Start buffering captures for :meth:`drain_batches`.

        Off by default: the per-packet ``observe`` path then pays only
        one attribute check. The engine enables it on ``attach`` when a
        capture sink is configured.
        """
        if self._pending_batches is None:
            self._pending_batches = {}

    def drain_batches(self) -> Dict[EdgeKey, np.ndarray]:
        """Per-edge timestamps captured since the last drain.

        Returns float64 arrays in capture order (unsorted -- the columnar
        collector sorts lazily). Empty until
        :meth:`enable_batch_streaming` is called.
        """
        if not self._pending_batches:
            return {}
        pending, self._pending_batches = self._pending_batches, {}
        return {
            edge: np.asarray(stamps, dtype=np.float64)
            for edge, stamps in pending.items()
        }

    @property
    def packet_count(self) -> int:
        return self._count

    def edges(self) -> List[EdgeKey]:
        """Edges with at least one captured packet."""
        return list(self._timestamps)

    def timestamps(self, src: NodeId, dst: NodeId) -> List[float]:
        """Raw local-clock capture times for one edge (sorted copy)."""
        return sorted(self._timestamps.get((src, dst), []))

    # -- streaming -----------------------------------------------------------------

    def flush_block(
        self, config: PathmapConfig, window_start_quantum: int, block_quanta: int
    ) -> Dict[EdgeKey, RunLengthSeries]:
        """Compute and return the RLE series of every edge for one block.

        Mirrors the kernel module's periodic stream: each refresh interval,
        one RLE block per active edge is emitted to the analyzer. The
        tracer keeps raw timestamps only as far back as the analysis can
        need them (older entries are dropped).
        """
        blocks: Dict[EdgeKey, RunLengthSeries] = {}
        tau = config.quantum
        for edge, stamps in self._timestamps.items():
            series = build_density_series(
                stamps,
                quantum=tau,
                sampling_quanta=config.sampling_quanta,
                window_start=window_start_quantum,
                window_length=block_quanta,
            )
            blocks[edge] = rle_encode(series)
        self._drop_before((window_start_quantum + block_quanta) * tau - config.sampling_window)
        if self._m_flushes is not None:
            self._m_flushes.inc(len(blocks))
        return blocks

    def _drop_before(self, cutoff: float) -> None:
        """Discard timestamps older than ``cutoff`` (no longer needed)."""
        dropped = 0
        for edge, stamps in self._timestamps.items():
            kept = [t for t in stamps if t >= cutoff]
            dropped += len(stamps) - len(kept)
            self._timestamps[edge] = kept
        if dropped and logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "tracer %s dropped %d stale timestamps before t=%.3f",
                self.node,
                dropped,
                cutoff,
            )

    def reset(self) -> None:
        """Discard all captured state (e.g. module reload)."""
        self._timestamps.clear()
        if self._pending_batches is not None:
            self._pending_batches.clear()
        self._count = 0

    def restart(self) -> None:
        """Simulate a tracer crash/restart: captured state is lost and
        the restart counter (the transport epoch source) advances."""
        self.reset()
        self.restarts += 1
