"""Central trace collector / analyzer-side trace assembly (Section 3.6).

The collector is the analysis node: it receives capture records (or
streamed RLE blocks) from every per-node tracer, and can materialize
:class:`~repro.core.pathmap.TraceWindow` views over any time range for the
pathmap algorithm.

Edge signal selection: for an edge ``x -> y``, the analysis wants the
series timestamped at the **destination** (``T^y_{x->y}``, Algorithm 1).
Client nodes are never traced ("those are usually beyond the reach of
enterprises"), so edges touching a client fall back to the server-side
capture: ``client -> frontend`` uses the front end's receive timestamps,
``frontend -> client`` uses the front end's send timestamps.

Ingest path
-----------

Online black-box tracing lives or dies on ingest throughput and trace
volume, so the collector stores each ``(edge, side)`` stream columnar:
a list of **sorted float64 chunks** plus a small unsorted pending tail.
New captures (single timestamps or whole batches) land in the tail in
O(1); the first query sorts the tail once with ``np.sort`` and merges it
with only the sorted chunks it overlaps, so roughly-ordered arrivals --
the steady state of a live capture stream -- never trigger a global
re-sort. Window materialization and :meth:`TraceCollector.edge_timestamps`
are then array concatenations and ``np.searchsorted`` slices.

The legacy pure-Python store survives as ``columnar=False`` for A/B
benchmarking; it keeps a per-edge dirty flag so one new record re-sorts
only the edge it touched, never every edge's full history.

Retention: pass ``retention=<seconds>`` (for example
``config.retention_horizon``) and the collector evicts whole chunks older
than ``newest seen - retention`` in O(chunks), keeping resident memory
flat under sustained load (``collector_records_evicted_total`` counter,
``collector_resident_records`` gauge).
"""

from __future__ import annotations

import logging
from functools import partial
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.config import PathmapConfig
from repro.core.pathmap import TraceWindow
from repro.core.rle import rle_encode
from repro.core.timeseries import build_density_series
from repro.errors import TraceError
from repro.tracing.records import CaptureRecord, NodeId, TimestampBatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lake import TraceLake
    from repro.obs.registry import MetricsRegistry

logger = logging.getLogger(__name__)

EdgeKey = Tuple[NodeId, NodeId]

#: Shared empty-stream sentinel; ``edge_timestamps`` on a never-captured
#: edge returns this exact array from both sides, preserving the
#: ``source is dest`` one-sided-capture check in clock-skew estimation.
_EMPTY = np.empty(0, dtype=np.float64)
_EMPTY.setflags(write=False)

#: How many per-record ingests may pass between retention sweeps.
_EVICT_STRIDE = 4096


class _ColumnarStore:
    """Columnar timestamp store for one ``(edge, side)`` stream.

    ``chunks`` is a list of sorted float64 arrays whose concatenation is
    globally sorted (chunk maxima non-decreasing, ranges non-overlapping).
    Appends and batch extends go to an unsorted pending tail;
    :meth:`consolidate` sorts the tail once and merges it with only the
    trailing chunks it overlaps, so a mostly-ordered stream costs one
    bounded ``np.sort`` per consolidation instead of a global re-sort.
    """

    __slots__ = (
        "chunks", "_tail_scalars", "_tail_arrays", "count", "_cache", "sorts",
    )

    def __init__(self) -> None:
        self.chunks: List[np.ndarray] = []
        self._tail_scalars: List[float] = []
        self._tail_arrays: List[np.ndarray] = []
        self.count = 0
        self._cache: Optional[np.ndarray] = None
        self.sorts = 0

    def append(self, timestamp: float) -> None:
        self._tail_scalars.append(timestamp)
        self.count += 1
        self._cache = None

    def extend(self, values: np.ndarray) -> None:
        if values.size:
            self._tail_arrays.append(values)
            self.count += values.size
            self._cache = None

    @property
    def pending(self) -> int:
        return len(self._tail_scalars) + sum(a.size for a in self._tail_arrays)

    def consolidate(self) -> None:
        """Fold the pending tail into the sorted chunk list."""
        if not self._tail_scalars and not self._tail_arrays:
            return
        parts: List[np.ndarray] = []
        if self._tail_scalars:
            parts.append(np.asarray(self._tail_scalars, dtype=np.float64))
        parts.extend(self._tail_arrays)
        fresh = parts[0] if len(parts) == 1 else np.concatenate(parts)
        fresh = np.sort(fresh)
        self.sorts += 1
        self._tail_scalars = []
        self._tail_arrays = []
        # Merge only the sorted chunks the fresh batch overlaps; an
        # in-order stream appends a new chunk without touching history.
        overlap: List[np.ndarray] = []
        while self.chunks and self.chunks[-1][-1] > fresh[0]:
            overlap.append(self.chunks.pop())
        if overlap:
            overlap.reverse()
            fresh = np.sort(np.concatenate(overlap + [fresh]))
            self.sorts += 1
        self.chunks.append(fresh)

    def array(self) -> np.ndarray:
        """The stream as one sorted array (cached until the next write)."""
        if self._cache is None:
            self.consolidate()
            if not self.chunks:
                self._cache = _EMPTY
            elif len(self.chunks) == 1:
                self._cache = self.chunks[0]
            else:
                self._cache = np.concatenate(self.chunks)
        return self._cache

    def evict_before(self, cutoff: float, sink=None) -> int:
        """Drop timestamps ``< cutoff``; whole stale chunks in O(chunks),
        plus one boundary-chunk slice. Returns how many were dropped.

        ``sink`` optionally receives every dropped array (whole chunks,
        then the boundary prefix) before it leaves the store -- the trace
        lake's write-behind hook. Dropped arrays are sorted and, across
        successive evictions, non-overlapping: a value is handed to the
        sink exactly once, which is what makes stitched lake + resident
        reads bit-identical to an unbounded store.
        """
        self.consolidate()
        dropped = 0
        keep = 0
        for chunk in self.chunks:
            if chunk[-1] >= cutoff:
                break
            dropped += chunk.size
            keep += 1
        if keep:
            if sink is not None:
                for chunk in self.chunks[:keep]:
                    sink(chunk)
            del self.chunks[:keep]
        if self.chunks:
            first = self.chunks[0]
            idx = int(np.searchsorted(first, cutoff, side="left"))
            if idx:
                if sink is not None:
                    sink(first[:idx].copy())
                # Copy, not a view: a view pins the stale prefix in memory.
                self.chunks[0] = first[idx:].copy()
                dropped += idx
        if dropped:
            self.count -= dropped
            self._cache = None
        return dropped


class _ListStore:
    """Legacy per-edge Python-list store (``columnar=False``).

    Kept as the A/B baseline for the ingest benchmarks. The dirty flag is
    per-store, so one new record re-sorts only its own edge's history --
    never every edge, as the old collector-global flag did.
    """

    __slots__ = ("stamps", "_dirty", "_cache", "sorts")

    def __init__(self) -> None:
        self.stamps: List[float] = []
        self._dirty = False
        self._cache: Optional[np.ndarray] = None
        self.sorts = 0

    def append(self, timestamp: float) -> None:
        self.stamps.append(timestamp)
        self._dirty = True
        self._cache = None

    def extend(self, values: np.ndarray) -> None:
        if values.size:
            self.stamps.extend(values.tolist())
            self._dirty = True
            self._cache = None

    @property
    def count(self) -> int:
        return len(self.stamps)

    @property
    def pending(self) -> int:
        return 0

    def consolidate(self) -> None:
        if self._dirty:
            self.stamps.sort()
            self.sorts += 1
            self._dirty = False

    def array(self) -> np.ndarray:
        if self._cache is None:
            self.consolidate()
            self._cache = (
                np.asarray(self.stamps, dtype=np.float64) if self.stamps else _EMPTY
            )
        return self._cache

    def evict_before(self, cutoff: float, sink=None) -> int:
        self.consolidate()
        arr = self.array()
        idx = int(np.searchsorted(arr, cutoff, side="left"))
        if idx:
            if sink is not None:
                sink(arr[:idx].copy())
            del self.stamps[:idx]
            self._cache = None
        return idx


_Store = Union[_ColumnarStore, _ListStore]


class TraceCollector:
    """Accumulates capture records and serves analysis windows.

    Parameters
    ----------
    client_nodes:
        Ids of client nodes. Per the paper's first assumption, the front
        end knows which clients map to which service classes, so the
        analyzer is configured with the client set (it is the only
        non-black-box input).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        ``collector_records_ingested_total``,
        ``collector_batches_ingested_total``,
        ``collector_records_evicted_total``, the
        ``collector_resident_records`` gauge and
        ``collector_windows_total``.
    columnar:
        True (default) stores each stream as sorted numpy chunks plus an
        unsorted tail; False keeps the legacy per-edge Python lists (the
        ingest benchmark's baseline). Analysis results are identical.
    retention:
        Optional horizon in seconds. When set, timestamps older than
        ``newest seen - retention`` are evicted (whole chunks at a time),
        so resident memory stays flat under sustained load. None (the
        default) retains everything. See
        :attr:`~repro.config.PathmapConfig.retention_horizon` for the
        analysis-safe default horizon.
    lake:
        Optional :class:`~repro.lake.TraceLake`. When attached alongside
        ``retention``, evicted arrays are spilled to the lake instead of
        discarded, and historical reads (:meth:`window` with a start
        before the resident horizon, :meth:`edge_timestamps_range`)
        transparently stitch lake segments with resident chunks.
    """

    def __init__(
        self,
        client_nodes: Iterable[NodeId] = (),
        metrics: Optional["MetricsRegistry"] = None,
        columnar: bool = True,
        retention: Optional[float] = None,
        lake: Optional["TraceLake"] = None,
    ) -> None:
        self._clients: Set[NodeId] = set(client_nodes)
        self.columnar = bool(columnar)
        self._store_factory = _ColumnarStore if columnar else _ListStore
        if retention is not None and not retention > 0:
            raise TraceError(f"retention must be positive, got {retention}")
        self.retention = retention
        self.lake = lake
        # (src, dst) -> timestamp store, per observing side.
        self._at_src: Dict[EdgeKey, _Store] = {}
        self._at_dst: Dict[EdgeKey, _Store] = {}
        self._max_seen = float("-inf")
        self._records_ingested = 0
        self._batches_ingested = 0
        self._records_evicted = 0
        self._since_evict = 0
        if metrics is not None:
            self._m_records = metrics.counter(
                "collector_records_ingested_total",
                "Capture records ingested by the trace collector",
            )
            self._m_batches = metrics.counter(
                "collector_batches_ingested_total",
                "Timestamp batches ingested by the trace collector",
            )
            self._m_evicted = metrics.counter(
                "collector_records_evicted_total",
                "Capture records evicted past the retention horizon",
            )
            self._m_resident = metrics.gauge(
                "collector_resident_records",
                "Capture records currently resident in the trace collector",
            )
            self._m_windows = metrics.counter(
                "collector_windows_total",
                "Analysis windows materialized by the trace collector",
            )
        else:
            self._m_records = None
            self._m_batches = None
            self._m_evicted = None
            self._m_resident = None
            self._m_windows = None

    # -- ingestion -------------------------------------------------------------

    def add_client(self, node: NodeId) -> None:
        self._clients.add(node)

    @property
    def clients(self) -> Set[NodeId]:
        return set(self._clients)

    def _store(self, key: EdgeKey, at_destination: bool) -> _Store:
        stores = self._at_dst if at_destination else self._at_src
        store = stores.get(key)
        if store is None:
            store = self._store_factory()
            stores[key] = store
        return store

    def ingest(self, record: CaptureRecord) -> None:
        """Add one capture record."""
        self.ingest_point(
            record.timestamp, record.src, record.dst, record.observed_at_destination
        )

    def ingest_point(
        self,
        timestamp: float,
        src: NodeId,
        dst: NodeId,
        observed_at_destination: bool = True,
    ) -> None:
        """Add one capture without materializing a :class:`CaptureRecord`.

        The record-object path (:meth:`ingest`) funnels here; hot callers
        (the simulation fabric's capture hook) skip the object entirely.
        """
        if src == dst:
            raise TraceError(f"self-loop packet at {src!r}")
        self._store((src, dst), observed_at_destination).append(timestamp)
        self._records_ingested += 1
        if timestamp > self._max_seen:
            self._max_seen = timestamp
        if self._m_records is not None:
            self._m_records.inc()
        if self.retention is not None:
            self._since_evict += 1
            if self._since_evict >= _EVICT_STRIDE:
                self.evict_expired()

    def ingest_many(self, records: Iterable[CaptureRecord]) -> int:
        """Add many capture records; returns how many were ingested.

        Metrics are updated once per call, not once per record.
        """
        count = 0
        max_seen = self._max_seen
        for record in records:
            ts = record.timestamp
            self._store(record.edge, record.observed_at_destination).append(ts)
            if ts > max_seen:
                max_seen = ts
            count += 1
        self._max_seen = max_seen
        self._records_ingested += count
        if self._m_records is not None and count:
            self._m_records.inc(count)
        if self.retention is not None and count:
            self._since_evict += count
            if self._since_evict >= _EVICT_STRIDE:
                self.evict_expired()
        return count

    def ingest_batch(
        self,
        src: NodeId,
        dst: NodeId,
        timestamps: Sequence[float],
        observed_at_destination: bool = True,
    ) -> int:
        """Add one edge's timestamp batch as a single columnar write.

        ``timestamps`` may arrive in any order (the store sorts on the
        next query); returns how many were ingested. This is the
        batch-frame / binary-storage fast path: no per-record objects, no
        per-record metric dispatch.
        """
        if src == dst:
            raise TraceError(f"self-loop packet at {src!r}")
        values = np.asarray(timestamps, dtype=np.float64)
        if values.ndim != 1:
            raise TraceError(
                f"timestamp batch must be one-dimensional, got shape {values.shape}"
            )
        if values.size == 0:
            return 0
        if not np.isfinite(values).all():
            raise TraceError(f"non-finite timestamp in batch for {src!r}->{dst!r}")
        self._store((src, dst), observed_at_destination).extend(values)
        size = int(values.size)
        self._records_ingested += size
        self._batches_ingested += 1
        newest = float(values.max())
        if newest > self._max_seen:
            self._max_seen = newest
        if self._m_records is not None:
            self._m_records.inc(size)
            self._m_batches.inc()
        if self.retention is not None:
            self._since_evict += size
            if self._since_evict >= _EVICT_STRIDE:
                self.evict_expired()
        return size

    # -- retention -------------------------------------------------------------

    def evict_expired(self) -> int:
        """Evict everything older than ``newest seen - retention``.

        Called automatically every :data:`_EVICT_STRIDE` ingested records
        and on every :meth:`window`; harmless no-op without a retention
        horizon. Returns how many records were evicted.
        """
        self._since_evict = 0
        if self.retention is None or self._max_seen == float("-inf"):
            return 0
        cutoff = self._max_seen - self.retention
        dropped = 0
        lake = self.lake
        for stores, at_dst in ((self._at_src, False), (self._at_dst, True)):
            for key, store in stores.items():
                if lake is not None:
                    src, dst = key
                    sink = partial(lake.spill, src, dst, at_dst)
                else:
                    sink = None
                dropped += store.evict_before(cutoff, sink)
        if dropped:
            self._records_evicted += dropped
            if self._m_evicted is not None:
                self._m_evicted.inc(dropped)
        if self._m_resident is not None:
            self._m_resident.set(self.record_count())
        return dropped

    # -- inspection ---------------------------------------------------------------

    def edges(self) -> List[EdgeKey]:
        """All edges with at least one capture, from either side."""
        return sorted(set(self._at_src) | set(self._at_dst))

    def record_count(self) -> int:
        return sum(s.count for s in self._at_src.values()) + sum(
            s.count for s in self._at_dst.values()
        )

    def ingest_stats(self) -> dict:
        """JSON-able ingest/retention health snapshot."""
        chunks = 0
        pending = 0
        sorts = 0
        for stores in (self._at_src, self._at_dst):
            for store in stores.values():
                chunks += len(getattr(store, "chunks", ()))
                pending += store.pending
                sorts += store.sorts
        return {
            "columnar": self.columnar,
            "retention": self.retention,
            "resident_records": self.record_count(),
            "records_ingested": self._records_ingested,
            "batches_ingested": self._batches_ingested,
            "records_evicted": self._records_evicted,
            "chunks": chunks,
            "pending": pending,
            "sort_operations": sorts,
            "lake": self.lake.stats() if self.lake is not None else {"enabled": False},
        }

    def export_records(self) -> List[CaptureRecord]:
        """Reconstruct all captures as records (for persisting a trace).

        The round trip ``collector -> export_records -> write ->
        load -> ingest_many`` reproduces an identical collector. Ordering
        is fully deterministic: records sort by ``(timestamp, src, dst,
        observer)``, so equal timestamps tie-break on edge then observing
        side regardless of ingestion order.
        """
        out: List[CaptureRecord] = []
        for stores, at_destination in ((self._at_src, False), (self._at_dst, True)):
            for src, dst in sorted(stores):
                observer = dst if at_destination else src
                out.extend(
                    CaptureRecord(t, src, dst, observer)
                    for t in stores[(src, dst)].array().tolist()
                )
        out.sort(key=lambda r: (r.timestamp, r.src, r.dst, r.observer))
        return out

    def export_batches(self) -> List[TimestampBatch]:
        """All captures as per-``(edge, side)`` sorted timestamp batches.

        The columnar counterpart of :meth:`export_records` -- one
        :class:`~repro.tracing.records.TimestampBatch` per stream in
        deterministic ``(src, dst, side)`` order, for the binary trace
        format (:func:`repro.tracing.storage.write_capture_binary`).
        """
        out: List[TimestampBatch] = []
        for stores, at_destination in ((self._at_src, False), (self._at_dst, True)):
            for src, dst in sorted(stores):
                arr = stores[(src, dst)].array()
                if arr.size:
                    out.append(TimestampBatch(src, dst, at_destination, arr))
        out.sort(key=lambda b: (b.src, b.dst, b.observed_at_destination))
        return out

    def edge_timestamps(
        self, src: NodeId, dst: NodeId, prefer_destination: bool = True
    ) -> np.ndarray:
        """The observation timestamps used for an edge's signal, sorted.

        Destination-side captures are preferred (Algorithm 1); source-side
        captures are the fallback for edges into untraced (client) nodes.
        An edge never captured from either side yields an empty array --
        consistent with :meth:`window` over an empty time range, which
        yields a window with no active edges.

        Returns the store's cached array: both preferences return the
        *same object* when only one side was captured (clock-skew
        estimation relies on that identity to detect one-sided capture).
        """
        key = (src, dst)
        primary, fallback = (self._at_dst, self._at_src)
        if not prefer_destination or dst in self._clients:
            primary, fallback = fallback, primary
        store = primary.get(key)
        if store is None:
            store = fallback.get(key)
        if store is None:
            return _EMPTY
        return store.array()

    def _side_present(self, key: EdgeKey, at_destination: bool) -> bool:
        """True when the stream was ever captured on that side, counting
        spilled lake segments (resident stores are never deleted, so this
        matches an unbounded collector's store-existence test)."""
        stores = self._at_dst if at_destination else self._at_src
        if key in stores:
            return True
        if self.lake is not None:
            return (key[0], key[1], at_destination) in self.lake.streams()
        return False

    def edge_timestamps_range(
        self,
        src: NodeId,
        dst: NodeId,
        start: float,
        end: float,
        prefer_destination: bool = True,
    ) -> np.ndarray:
        """Sorted observation timestamps for an edge within ``[start, end)``.

        Unlike :meth:`edge_timestamps`, this stitches spilled lake
        segments with resident chunks, so the range may reach arbitrarily
        far behind the retention horizon. Eviction drops strictly below
        the cutoff and spills every dropped value exactly once, so the
        stitched result is bit-identical to the same slice of an
        unbounded collector.
        """
        if start > end:
            raise TraceError(f"inverted range: start {start} > end {end}")
        key = (src, dst)
        order = (True, False)
        if not prefer_destination or dst in self._clients:
            order = (False, True)
        at_dst = next((s for s in order if self._side_present(key, s)), None)
        if at_dst is None:
            return _EMPTY
        stores = self._at_dst if at_dst else self._at_src
        store = stores.get(key)
        arr = store.array() if store is not None else _EMPTY
        lo = int(np.searchsorted(arr, start, side="left"))
        hi = int(np.searchsorted(arr, end, side="left"))
        resident = arr[lo:hi]
        if self.lake is None:
            return resident
        spilled = self.lake.query(src, dst, at_dst, start=start, end=end)
        if spilled.size == 0:
            return resident
        if resident.size == 0:
            return np.sort(spilled)
        return np.sort(np.concatenate((spilled, resident)))

    # -- window materialization ------------------------------------------------------

    def window(
        self,
        config: PathmapConfig,
        end_time: float,
        start_time: Optional[float] = None,
        use_rle: bool = True,
    ) -> "CollectedTraceWindow":
        """Build the analysis window ending at ``end_time``.

        ``start_time`` defaults to ``end_time - config.window``. An empty
        time range (``start_time == end_time``) yields a window with no
        active edges -- consistent with :meth:`edge_timestamps` on an
        unseen edge, which yields an empty array. An inverted range still
        raises :class:`~repro.errors.TraceError`.
        """
        if start_time is None:
            start_time = end_time - config.window
        if start_time > end_time:
            raise TraceError(
                f"inverted window: start {start_time} > end {end_time}"
            )
        if self.retention is not None:
            self.evict_expired()
        if self._m_windows is not None:
            self._m_windows.inc()
        source: "TraceCollector" = self
        if (
            self.lake is not None
            and self.retention is not None
            and self._max_seen != float("-inf")
            and start_time < self._max_seen - self.retention
        ):
            # Historical range: part of it was evicted past the horizon.
            # Stitch lake segments with resident chunks (cache-aside);
            # the view is bit-identical to an unbounded collector. The
            # lake query carries a sampling-window margin because the
            # density boxcar at a boundary quantum reaches up to half a
            # sampling window outside the range (see build_density_series).
            margin = config.sampling_window + config.quantum
            source = _StitchedTraceView(self, start_time - margin, end_time + margin)
        window = CollectedTraceWindow(source, config, start_time, end_time, use_rle)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "materialized window [%.3f, %.3f) with %d active edges",
                window.start_time,
                window.end_time,
                len(window.active_edges()),
            )
        return window


class _StitchedTraceView:
    """Duck-typed collector stitching lake segments with resident chunks.

    Materialized by :meth:`TraceCollector.window` when the requested
    range reaches behind the retention horizon. Exposes exactly the
    surface :class:`CollectedTraceWindow` consumes (``clients``,
    :meth:`edges`, :meth:`edge_timestamps`); each stream answers with
    ``sort(spilled in [start, end) ++ resident)`` -- the bounds here are
    the window range padded by a sampling-window margin, so boundary
    quanta see the same out-of-range neighbours an unbounded collector
    would feed the density boxcar. The result is bit-identical to an
    unbounded collector's view of the window because eviction drops
    strictly below the cutoff and hands every dropped value to the lake
    exactly once. Side preference follows the collector's store-existence
    rule (stores are never deleted by eviction), extended with the lake's
    stream catalog; per-``(edge, side)`` results are cached so both
    preference orders return the *same object* when only one side was
    ever captured -- the identity contract clock-skew detection relies
    on.
    """

    def __init__(
        self, collector: TraceCollector, start_time: float, end_time: float
    ) -> None:
        self._collector = collector
        self._lake = collector.lake
        self._start = float(start_time)
        self._end = float(end_time)
        self._lake_sides: Dict[EdgeKey, Set[bool]] = {}
        for src, dst, at_dst in self._lake.streams():
            self._lake_sides.setdefault((src, dst), set()).add(at_dst)
        self._cache: Dict[Tuple[EdgeKey, bool], np.ndarray] = {}

    @property
    def clients(self) -> Set[NodeId]:
        return self._collector.clients

    def edges(self) -> List[EdgeKey]:
        return sorted(set(self._collector.edges()) | set(self._lake_sides))

    def _has_side(self, key: EdgeKey, at_dst: bool) -> bool:
        stores = self._collector._at_dst if at_dst else self._collector._at_src
        return key in stores or at_dst in self._lake_sides.get(key, ())

    def _stitched(self, key: EdgeKey, at_dst: bool) -> np.ndarray:
        cache_key = (key, at_dst)
        cached = self._cache.get(cache_key)
        if cached is None:
            src, dst = key
            spilled = self._lake.query(
                src, dst, at_dst, start=self._start, end=self._end
            )
            stores = self._collector._at_dst if at_dst else self._collector._at_src
            store = stores.get(key)
            resident = store.array() if store is not None else _EMPTY
            if spilled.size == 0:
                cached = resident
            elif resident.size == 0:
                cached = np.sort(spilled)
            else:
                cached = np.sort(np.concatenate((spilled, resident)))
            self._cache[cache_key] = cached
        return cached

    def edge_timestamps(
        self, src: NodeId, dst: NodeId, prefer_destination: bool = True
    ) -> np.ndarray:
        key = (src, dst)
        order = (True, False)
        if not prefer_destination or dst in self._collector.clients:
            order = (False, True)
        for at_dst in order:
            if self._has_side(key, at_dst):
                return self._stitched(key, at_dst)
        return _EMPTY


class CollectedTraceWindow(TraceWindow):
    """A :class:`TraceWindow` view over a collector's captures."""

    def __init__(
        self,
        collector: TraceCollector,
        config: PathmapConfig,
        start_time: float,
        end_time: float,
        use_rle: bool = True,
    ) -> None:
        self._collector = collector
        self._config = config
        self.start_time = float(start_time)
        self.end_time = float(end_time)
        self._use_rle = use_rle
        tau = config.quantum
        self._start_quantum = int(np.floor(self.start_time / tau))
        self._length_quanta = max(1, int(round((self.end_time - self.start_time) / tau)))
        self._series_cache: Dict[EdgeKey, object] = {}
        # Pre-compute per-edge in-window activity once (one searchsorted
        # pair per edge over the store's sorted array).
        self._active_edges: Set[EdgeKey] = set()
        for src, dst in collector.edges():
            stamps = collector.edge_timestamps(src, dst)
            lo = int(np.searchsorted(stamps, self.start_time, side="left"))
            hi = int(np.searchsorted(stamps, self.end_time, side="left"))
            if hi > lo:
                self._active_edges.add((src, dst))

    # -- TraceWindow protocol ----------------------------------------------------

    def front_end_nodes(self) -> List[NodeId]:
        clients = self._collector.clients
        fronts = {
            dst
            for (src, dst) in self._active_edges
            if src in clients and dst not in clients
        }
        return sorted(fronts)

    def clients_of(self, node: NodeId) -> List[NodeId]:
        clients = self._collector.clients
        return sorted(
            src for (src, dst) in self._active_edges if dst == node and src in clients
        )

    def destinations_of(self, node: NodeId) -> List[NodeId]:
        return sorted(dst for (src, dst) in self._active_edges if src == node)

    def is_client(self, node: NodeId) -> bool:
        return node in self._collector.clients

    def edge_series(self, src: NodeId, dst: NodeId):
        key = (src, dst)
        cached = self._series_cache.get(key)
        if cached is not None:
            return cached
        stamps = self._collector.edge_timestamps(src, dst)
        series: object = build_density_series(
            stamps,
            quantum=self._config.quantum,
            sampling_quanta=self._config.sampling_quanta,
            window_start=self._start_quantum,
            window_length=self._length_quanta,
        )
        if self._use_rle:
            series = rle_encode(series)
        self._series_cache[key] = series
        return series

    # -- extras -----------------------------------------------------------------------

    def active_edges(self) -> List[EdgeKey]:
        return sorted(self._active_edges)

    def __repr__(self) -> str:
        return (
            f"CollectedTraceWindow([{self.start_time:.3f}, {self.end_time:.3f}), "
            f"edges={len(self._active_edges)})"
        )
