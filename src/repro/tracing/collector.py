"""Central trace collector / analyzer-side trace assembly (Section 3.6).

The collector is the analysis node: it receives capture records (or
streamed RLE blocks) from every per-node tracer, and can materialize
:class:`~repro.core.pathmap.TraceWindow` views over any time range for the
pathmap algorithm.

Edge signal selection: for an edge ``x -> y``, the analysis wants the
series timestamped at the **destination** (``T^y_{x->y}``, Algorithm 1).
Client nodes are never traced ("those are usually beyond the reach of
enterprises"), so edges touching a client fall back to the server-side
capture: ``client -> frontend`` uses the front end's receive timestamps,
``frontend -> client`` uses the front end's send timestamps.
"""

from __future__ import annotations

import bisect
import logging
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.config import PathmapConfig
from repro.core.pathmap import TraceWindow
from repro.core.rle import rle_encode
from repro.core.timeseries import build_density_series
from repro.errors import TraceError
from repro.tracing.records import CaptureRecord, NodeId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

logger = logging.getLogger(__name__)

EdgeKey = Tuple[NodeId, NodeId]


class TraceCollector:
    """Accumulates capture records and serves analysis windows.

    Parameters
    ----------
    client_nodes:
        Ids of client nodes. Per the paper's first assumption, the front
        end knows which clients map to which service classes, so the
        analyzer is configured with the client set (it is the only
        non-black-box input).
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        ``collector_records_ingested_total`` and
        ``collector_windows_total``.
    """

    def __init__(
        self,
        client_nodes: Iterable[NodeId] = (),
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self._clients: Set[NodeId] = set(client_nodes)
        # (src, dst) -> sorted capture timestamps, per observing side.
        self._at_src: Dict[EdgeKey, List[float]] = {}
        self._at_dst: Dict[EdgeKey, List[float]] = {}
        self._sorted = True
        if metrics is not None:
            self._m_records = metrics.counter(
                "collector_records_ingested_total",
                "Capture records ingested by the trace collector",
            )
            self._m_windows = metrics.counter(
                "collector_windows_total",
                "Analysis windows materialized by the trace collector",
            )
        else:
            self._m_records = None
            self._m_windows = None

    # -- ingestion -------------------------------------------------------------

    def add_client(self, node: NodeId) -> None:
        self._clients.add(node)

    @property
    def clients(self) -> Set[NodeId]:
        return set(self._clients)

    def ingest(self, record: CaptureRecord) -> None:
        """Add one capture record."""
        store = self._at_dst if record.observed_at_destination else self._at_src
        store.setdefault(record.edge, []).append(record.timestamp)
        self._sorted = False
        if self._m_records is not None:
            self._m_records.inc()

    def ingest_many(self, records: Iterable[CaptureRecord]) -> int:
        """Add many capture records; returns how many were ingested."""
        count = 0
        for record in records:
            self.ingest(record)
            count += 1
        return count

    def _ensure_sorted(self) -> None:
        if self._sorted:
            return
        for store in (self._at_src, self._at_dst):
            for key in store:
                store[key].sort()
        self._sorted = True

    # -- inspection ---------------------------------------------------------------

    def edges(self) -> List[EdgeKey]:
        """All edges with at least one capture, from either side."""
        return sorted(set(self._at_src) | set(self._at_dst))

    def record_count(self) -> int:
        return sum(len(v) for v in self._at_src.values()) + sum(
            len(v) for v in self._at_dst.values()
        )

    def export_records(self) -> List[CaptureRecord]:
        """Reconstruct all captures as records (for persisting a trace).

        The round trip ``collector -> export_records -> write ->
        load -> ingest_many`` reproduces an identical collector.
        """
        self._ensure_sorted()
        out: List[CaptureRecord] = []
        for (src, dst), stamps in self._at_src.items():
            out.extend(CaptureRecord(t, src, dst, src) for t in stamps)
        for (src, dst), stamps in self._at_dst.items():
            out.extend(CaptureRecord(t, src, dst, dst) for t in stamps)
        out.sort()
        return out

    def edge_timestamps(
        self, src: NodeId, dst: NodeId, prefer_destination: bool = True
    ) -> List[float]:
        """The observation timestamps used for an edge's signal.

        Destination-side captures are preferred (Algorithm 1); source-side
        captures are the fallback for edges into untraced (client) nodes.
        An edge never captured from either side yields an empty list --
        consistent with :meth:`window` over an empty time range, which
        yields a window with no active edges.
        """
        self._ensure_sorted()
        key = (src, dst)
        primary, fallback = (self._at_dst, self._at_src)
        if not prefer_destination or dst in self._clients:
            primary, fallback = fallback, primary
        stamps = primary.get(key)
        if stamps is None:
            stamps = fallback.get(key)
        if stamps is None:
            return []
        return stamps

    # -- window materialization ------------------------------------------------------

    def window(
        self,
        config: PathmapConfig,
        end_time: float,
        start_time: Optional[float] = None,
        use_rle: bool = True,
    ) -> "CollectedTraceWindow":
        """Build the analysis window ending at ``end_time``.

        ``start_time`` defaults to ``end_time - config.window``. An empty
        time range (``start_time == end_time``) yields a window with no
        active edges -- consistent with :meth:`edge_timestamps` on an
        unseen edge, which yields an empty list. An inverted range still
        raises :class:`~repro.errors.TraceError`.
        """
        self._ensure_sorted()
        if start_time is None:
            start_time = end_time - config.window
        if start_time > end_time:
            raise TraceError(
                f"inverted window: start {start_time} > end {end_time}"
            )
        if self._m_windows is not None:
            self._m_windows.inc()
        window = CollectedTraceWindow(self, config, start_time, end_time, use_rle)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "materialized window [%.3f, %.3f) with %d active edges",
                window.start_time,
                window.end_time,
                len(window.active_edges()),
            )
        return window


class CollectedTraceWindow(TraceWindow):
    """A :class:`TraceWindow` view over a collector's captures."""

    def __init__(
        self,
        collector: TraceCollector,
        config: PathmapConfig,
        start_time: float,
        end_time: float,
        use_rle: bool = True,
    ) -> None:
        self._collector = collector
        self._config = config
        self.start_time = float(start_time)
        self.end_time = float(end_time)
        self._use_rle = use_rle
        tau = config.quantum
        self._start_quantum = int(np.floor(self.start_time / tau))
        self._length_quanta = max(1, int(round((self.end_time - self.start_time) / tau)))
        self._series_cache: Dict[EdgeKey, object] = {}
        # Pre-compute per-edge in-window activity once.
        self._active_edges: Set[EdgeKey] = set()
        for src, dst in collector.edges():
            stamps = collector.edge_timestamps(src, dst)
            lo = bisect.bisect_left(stamps, self.start_time)
            hi = bisect.bisect_left(stamps, self.end_time)
            if hi > lo:
                self._active_edges.add((src, dst))

    # -- TraceWindow protocol ----------------------------------------------------

    def front_end_nodes(self) -> List[NodeId]:
        clients = self._collector.clients
        fronts = {
            dst
            for (src, dst) in self._active_edges
            if src in clients and dst not in clients
        }
        return sorted(fronts)

    def clients_of(self, node: NodeId) -> List[NodeId]:
        clients = self._collector.clients
        return sorted(
            src for (src, dst) in self._active_edges if dst == node and src in clients
        )

    def destinations_of(self, node: NodeId) -> List[NodeId]:
        return sorted(dst for (src, dst) in self._active_edges if src == node)

    def is_client(self, node: NodeId) -> bool:
        return node in self._collector.clients

    def edge_series(self, src: NodeId, dst: NodeId):
        key = (src, dst)
        cached = self._series_cache.get(key)
        if cached is not None:
            return cached
        stamps = self._collector.edge_timestamps(src, dst)
        series: object = build_density_series(
            stamps,
            quantum=self._config.quantum,
            sampling_quanta=self._config.sampling_quanta,
            window_start=self._start_quantum,
            window_length=self._length_quanta,
        )
        if self._use_rle:
            series = rle_encode(series)
        self._series_cache[key] = series
        return series

    # -- extras -----------------------------------------------------------------------

    def active_edges(self) -> List[EdgeKey]:
        return sorted(self._active_edges)

    def __repr__(self) -> str:
        return (
            f"CollectedTraceWindow([{self.start_time:.3f}, {self.end_time:.3f}), "
            f"edges={len(self._active_edges)})"
        )
