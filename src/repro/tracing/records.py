"""Trace record types.

Two record shapes exist in the paper's case studies:

* **Packet captures** (RUBiS, Section 4.1): the `tracer` kernel module
  observes network packets at each service node; a packet on the wire from
  ``src`` to ``dst`` is captured twice -- once at each traced endpoint,
  each with that endpoint's local clock.
* **Access logs** (Delta Revenue Pipeline, Section 4.3): application-level
  transactional events with timestamps, server ids and request ids.

Pathmap only ever consumes ``(timestamp, src, dst, observer)``; the
request/class ids carried here exist solely for ground-truth validation
and are never shown to the analysis (it stays black-box).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import TraceError

NodeId = str


@dataclasses.dataclass(frozen=True, order=True)
class CaptureRecord:
    """One observation of one packet at one traced endpoint.

    Attributes
    ----------
    timestamp:
        Capture time in seconds, by the **observer's local clock**.
    src, dst:
        The packet's source and destination node ids (the logical edge).
    observer:
        The node at which the packet was captured (``src`` or ``dst``).
    request_id:
        Ground-truth request identity; not visible to pathmap.
    service_class:
        Ground-truth service class; not visible to pathmap.
    """

    timestamp: float
    src: NodeId
    dst: NodeId
    observer: NodeId
    request_id: Optional[int] = dataclasses.field(default=None, compare=False)
    service_class: Optional[str] = dataclasses.field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.observer not in (self.src, self.dst):
            raise TraceError(
                f"observer {self.observer!r} is neither src {self.src!r} "
                f"nor dst {self.dst!r}"
            )
        if self.src == self.dst:
            raise TraceError(f"self-loop packet at {self.src!r}")

    @property
    def edge(self) -> tuple:
        return (self.src, self.dst)

    @property
    def observed_at_destination(self) -> bool:
        return self.observer == self.dst


@dataclasses.dataclass(frozen=True, eq=False)
class TimestampBatch:
    """Many observations of one ``(edge, side)`` stream, columnar.

    The batch-first counterpart of :class:`CaptureRecord`: one float64
    timestamp array for edge ``src -> dst`` as captured at one endpoint
    (``observed_at_destination`` selects which). Batches carry no
    request/class ground truth -- they exist purely on the high-throughput
    ingest path (batch wire frames, binary trace files, columnar
    collector writes), where pathmap's black-box inputs are all that is
    needed.
    """

    src: NodeId
    dst: NodeId
    observed_at_destination: bool
    timestamps: np.ndarray

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TraceError(f"self-loop batch at {self.src!r}")
        arr = np.asarray(self.timestamps, dtype=np.float64)
        if arr.ndim != 1:
            raise TraceError(
                f"timestamp batch must be one-dimensional, got shape {arr.shape}"
            )
        object.__setattr__(self, "timestamps", arr)

    @property
    def edge(self) -> tuple:
        return (self.src, self.dst)

    @property
    def observer(self) -> NodeId:
        return self.dst if self.observed_at_destination else self.src

    def __len__(self) -> int:
        return int(self.timestamps.size)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TimestampBatch):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.observed_at_destination == other.observed_at_destination
            and np.array_equal(self.timestamps, other.timestamps)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable array payload


@dataclasses.dataclass(frozen=True, order=True)
class AccessLogRecord:
    """One application-level transactional event (Delta-style trace).

    ``event`` is ``"recv"`` when the server accepted the request/event and
    ``"send"`` when it forwarded it to ``peer``.
    """

    timestamp: float
    server: NodeId
    request_id: int
    event: str = "recv"
    peer: Optional[NodeId] = None

    def __post_init__(self) -> None:
        if self.event not in ("recv", "send"):
            raise TraceError(f"unknown access-log event {self.event!r}")
        if self.event == "send" and self.peer is None:
            raise TraceError("send events must name a peer")
