"""Trace record types.

Two record shapes exist in the paper's case studies:

* **Packet captures** (RUBiS, Section 4.1): the `tracer` kernel module
  observes network packets at each service node; a packet on the wire from
  ``src`` to ``dst`` is captured twice -- once at each traced endpoint,
  each with that endpoint's local clock.
* **Access logs** (Delta Revenue Pipeline, Section 4.3): application-level
  transactional events with timestamps, server ids and request ids.

Pathmap only ever consumes ``(timestamp, src, dst, observer)``; the
request/class ids carried here exist solely for ground-truth validation
and are never shown to the analysis (it stays black-box).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import TraceError

NodeId = str


@dataclasses.dataclass(frozen=True, order=True)
class CaptureRecord:
    """One observation of one packet at one traced endpoint.

    Attributes
    ----------
    timestamp:
        Capture time in seconds, by the **observer's local clock**.
    src, dst:
        The packet's source and destination node ids (the logical edge).
    observer:
        The node at which the packet was captured (``src`` or ``dst``).
    request_id:
        Ground-truth request identity; not visible to pathmap.
    service_class:
        Ground-truth service class; not visible to pathmap.
    """

    timestamp: float
    src: NodeId
    dst: NodeId
    observer: NodeId
    request_id: Optional[int] = dataclasses.field(default=None, compare=False)
    service_class: Optional[str] = dataclasses.field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.observer not in (self.src, self.dst):
            raise TraceError(
                f"observer {self.observer!r} is neither src {self.src!r} "
                f"nor dst {self.dst!r}"
            )
        if self.src == self.dst:
            raise TraceError(f"self-loop packet at {self.src!r}")

    @property
    def edge(self) -> tuple:
        return (self.src, self.dst)

    @property
    def observed_at_destination(self) -> bool:
        return self.observer == self.dst


@dataclasses.dataclass(frozen=True, order=True)
class AccessLogRecord:
    """One application-level transactional event (Delta-style trace).

    ``event`` is ``"recv"`` when the server accepted the request/event and
    ``"send"`` when it forwarded it to ``peer``.
    """

    timestamp: float
    server: NodeId
    request_id: int
    event: str = "recv"
    peer: Optional[NodeId] = None

    def __post_init__(self) -> None:
        if self.event not in ("recv", "send"):
            raise TraceError(f"unknown access-log event {self.event!r}")
        if self.event == "send" and self.peer is None:
            raise TraceError("send events must name a peer")
