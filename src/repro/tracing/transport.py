"""Fault-tolerant streaming transport between tracers and the analyzer.

The paper pitches pathmap as an *online, non-intrusive* service: per-node
tracers stream RLE blocks to a central analyzer over a real network
(Section 3.6). Real links drop, duplicate, reorder and corrupt frames,
and real tracers lag, die and restart -- so this module gives the
tracer -> analyzer path the machinery to degrade gracefully instead of
silently mis-computing service paths:

* :class:`TransportLink` -- the sender side of one tracer's stream. It
  wraps each flushed block in a :class:`~repro.tracing.wire.BlockFrame`
  carrying the tracer's **epoch** (bumped on restart) and a per-edge
  **sequence number**, and emits one heartbeat frame per flush round so
  the receiver can tell "quiet" from "dead".
* :class:`FaultyChannel` -- a seeded, deterministic fault injector
  (drop / duplicate / reorder / corrupt / delay / total outage) standing
  in for the lossy link. Tests and benchmarks drive every failure mode
  through it; a default-constructed channel is a perfect pass-through.
* :class:`ReorderBuffer` -- the receiver-side re-sequencer for one
  ``(node, src, dst)`` stream: buffers out-of-order frames up to a
  configurable lateness tolerance, detects and declares gaps, drops
  duplicates and pre-restart (stale-epoch) frames, and hands frames that
  arrive after their gap was declared back as *late recoveries*.
* :class:`LivenessWatchdog` -- per-tracer heartbeat ageing: a tracer that
  has not been heard from within the staleness threshold is flagged
  ``lagging``, then ``dead``.
* :class:`TransportReceiver` -- the analyzer-side endpoint tying the
  above together: decodes frames (corrupt ones are counted, never
  raised), routes them to per-stream reorder buffers, tracks liveness,
  and surfaces ordered frames plus :class:`GapNotice` records to the
  engine.
* :class:`DataQuality` -- the per-edge verdict the engine derives from
  transport health (``fresh`` / ``degraded`` / ``stale`` plus the gap
  ratio), which :class:`~repro.core.pathmap.PathmapResult` carries so
  downstream consumers see paths built on degraded data annotated rather
  than silently dropped.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.config import TransportConfig
from repro.core.rle import RunLengthSeries
from repro.errors import TraceError
from repro.tracing.records import NodeId
from repro.tracing.wire import (
    BlockFrame,
    TimestampFrame,
    decode_frame,
    encode_frame,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import EventBus
    from repro.obs.registry import MetricsRegistry

logger = logging.getLogger(__name__)

EdgeKey = Tuple[NodeId, NodeId]
StreamKey = Tuple[NodeId, NodeId, NodeId]

#: Edge data states carried by :class:`DataQuality`.
QUALITY_FRESH = "fresh"
QUALITY_DEGRADED = "degraded"
QUALITY_STALE = "stale"

#: Tracer liveness states reported by :class:`LivenessWatchdog`.
TRACER_LIVE = "live"
TRACER_LAGGING = "lagging"
TRACER_DEAD = "dead"


@dataclasses.dataclass(frozen=True)
class DataQuality:
    """Transport-health verdict for one edge's signal.

    ``state`` is ``fresh`` (complete, live tracer), ``degraded`` (some
    blocks in the current window were lost or late) or ``stale`` (the
    owning tracer is dead, or most of the window is gaps). ``gap_ratio``
    is the fraction of the current window's blocks that are missing.
    """

    state: str
    gap_ratio: float = 0.0

    @property
    def ok(self) -> bool:
        return self.state == QUALITY_FRESH

    @property
    def penalty(self) -> float:
        """Contribution to the overall quality deficit: the gap ratio,
        saturated to 1 for stale edges."""
        return 1.0 if self.state == QUALITY_STALE else self.gap_ratio

    def to_dict(self) -> dict:
        return {"state": self.state, "gap_ratio": self.gap_ratio}


FRESH_QUALITY = DataQuality(QUALITY_FRESH, 0.0)


@dataclasses.dataclass(frozen=True)
class GapNotice:
    """One block declared lost on a stream (sequence skipped for good).

    ``block_start`` is the absolute quantum index the lost block covered
    (derived from the stream's seq -> start anchor), or None when no
    anchor frame has been seen yet.
    """

    node: NodeId
    src: NodeId
    dst: NodeId
    epoch: int
    seq: int
    block_start: Optional[int] = None

    @property
    def edge(self) -> EdgeKey:
        return (self.src, self.dst)


# -- fault injection ------------------------------------------------------------


class FaultyChannel:
    """Seeded, deterministic lossy link for one tracer's frame stream.

    Every fault is an independent Bernoulli draw from the channel's own
    ``numpy`` generator, so a given seed and call sequence always
    produces the same fault pattern -- chaos tests and benchmarks are
    exactly reproducible.

    Parameters
    ----------
    seed:
        Seed of the channel's private random generator.
    drop, duplicate, reorder, corrupt, delay:
        Per-frame fault probabilities in ``[0, 1]``. ``reorder`` holds a
        frame for exactly one flush round (delivering it behind newer
        frames); ``delay`` holds it for 1..``max_delay_rounds`` rounds.
    max_delay_rounds:
        Upper bound on how many rounds a delayed frame is held.
    down:
        While True the link is black-holed: every frame sent is lost
        (simulates a dead tracer or a partitioned link).

    ``send`` returns the frames delivered immediately; the engine calls
    ``advance`` once per refresh to collect held (reordered / delayed)
    frames that have come due.
    """

    def __init__(
        self,
        seed: int = 0,
        drop: float = 0.0,
        duplicate: float = 0.0,
        reorder: float = 0.0,
        corrupt: float = 0.0,
        delay: float = 0.0,
        max_delay_rounds: int = 3,
        down: bool = False,
    ) -> None:
        for name, rate in (
            ("drop", drop), ("duplicate", duplicate), ("reorder", reorder),
            ("corrupt", corrupt), ("delay", delay),
        ):
            if not 0.0 <= rate <= 1.0:
                raise TraceError(f"{name} rate must be in [0, 1], got {rate}")
        if max_delay_rounds < 1:
            raise TraceError(
                f"max_delay_rounds must be >= 1, got {max_delay_rounds}"
            )
        self._rng = np.random.default_rng(seed)
        self.drop = drop
        self.duplicate = duplicate
        self.reorder = reorder
        self.corrupt = corrupt
        self.delay = delay
        self.max_delay_rounds = max_delay_rounds
        self.down = down
        self._round = 0
        self._held: List[Tuple[int, bytes]] = []
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_duplicated = 0
        self.frames_corrupted = 0
        self.frames_held = 0

    def set_faults(
        self,
        drop: Optional[float] = None,
        duplicate: Optional[float] = None,
        reorder: Optional[float] = None,
        corrupt: Optional[float] = None,
        delay: Optional[float] = None,
        down: Optional[bool] = None,
    ) -> None:
        """Adjust fault rates mid-run (pass only what should change)."""
        if drop is not None:
            self.drop = drop
        if duplicate is not None:
            self.duplicate = duplicate
        if reorder is not None:
            self.reorder = reorder
        if corrupt is not None:
            self.corrupt = corrupt
        if delay is not None:
            self.delay = delay
        if down is not None:
            self.down = down

    @property
    def faultless(self) -> bool:
        """True when every fault rate is zero and the link is up."""
        return not (
            self.down or self.drop or self.duplicate or self.reorder
            or self.corrupt or self.delay
        )

    def send(self, payload: bytes) -> List[bytes]:
        """Push one frame through the link; returns immediate deliveries."""
        self.frames_sent += 1
        if self.down or (self.drop and self._rng.random() < self.drop):
            self.frames_dropped += 1
            return []
        if self.corrupt and self._rng.random() < self.corrupt:
            payload = self._flip_bytes(payload)
            self.frames_corrupted += 1
        copies = 1
        if self.duplicate and self._rng.random() < self.duplicate:
            copies = 2
            self.frames_duplicated += 1
        out: List[bytes] = []
        for _ in range(copies):
            held_for = 0
            if self.delay and self._rng.random() < self.delay:
                held_for = int(self._rng.integers(1, self.max_delay_rounds + 1))
            elif self.reorder and self._rng.random() < self.reorder:
                held_for = 1
            if held_for:
                self._held.append((self._round + held_for, payload))
                self.frames_held += 1
            else:
                out.append(payload)
                self.frames_delivered += 1
        return out

    def advance(self) -> List[bytes]:
        """End the current flush round; returns held frames now due."""
        self._round += 1
        due = [p for r, p in self._held if r <= self._round]
        self._held = [(r, p) for r, p in self._held if r > self._round]
        self.frames_delivered += len(due)
        return due

    def drain(self) -> List[bytes]:
        """Deliver everything still held (e.g. end of a test run)."""
        due = [p for _, p in self._held]
        self._held = []
        self.frames_delivered += len(due)
        return due

    def _flip_bytes(self, payload: bytes) -> bytes:
        corrupted = bytearray(payload)
        for _ in range(int(self._rng.integers(1, 4))):
            pos = int(self._rng.integers(0, len(corrupted)))
            corrupted[pos] ^= int(self._rng.integers(1, 256))
        return bytes(corrupted)

    def stats(self) -> dict:
        return {
            "sent": self.frames_sent,
            "delivered": self.frames_delivered,
            "dropped": self.frames_dropped,
            "duplicated": self.frames_duplicated,
            "corrupted": self.frames_corrupted,
            "held": self.frames_held,
            "in_flight": len(self._held),
        }


# -- sender side ------------------------------------------------------------------


class TransportLink:
    """Sender-side stream state for one tracer.

    Assigns the per-tracer epoch and per-edge sequence numbers, frames
    flushed blocks, and emits one heartbeat per flush round. Sequence
    numbers advance exactly once per flush round per edge stream, so the
    receiver can map ``seq`` linearly onto block start positions.
    """

    def __init__(self, node: NodeId, epoch: int = 0) -> None:
        self.node = node
        self.epoch = epoch
        self.restarts = 0
        self.frames_sent = 0
        self._seqs: Dict[EdgeKey, int] = {}
        # Timestamp-batch streams sequence independently of block streams
        # (they are not re-sequenced -- batches carry absolute times).
        self._batch_seqs: Dict[EdgeKey, int] = {}
        self._heartbeat_seq = 0

    def restart(self) -> None:
        """Bump the epoch (tracer restart): all streams reset to seq 0."""
        self.epoch += 1
        self.restarts += 1
        self._seqs.clear()
        self._batch_seqs.clear()
        self._heartbeat_seq = 0

    def encode_blocks(
        self, blocks: Dict[EdgeKey, RunLengthSeries], heartbeat: bool = True
    ) -> List[bytes]:
        """Frame one flush round's blocks (plus the round's heartbeat)."""
        payloads: List[bytes] = []
        for (src, dst), block in blocks.items():
            seq = self._seqs.get((src, dst), 0)
            self._seqs[(src, dst)] = seq + 1
            payloads.append(
                encode_frame(
                    BlockFrame(self.node, self.epoch, seq, src, dst, block)
                )
            )
        if heartbeat:
            payloads.append(
                encode_frame(
                    BlockFrame(self.node, self.epoch, self._heartbeat_seq, "", "")
                )
            )
            self._heartbeat_seq += 1
        self.frames_sent += len(payloads)
        return payloads

    def encode_timestamp_batches(
        self, batches: Dict[EdgeKey, "np.ndarray"]
    ) -> List[bytes]:
        """Frame one round of raw per-edge timestamp batches.

        One packed :class:`~repro.tracing.wire.TimestampFrame` per
        non-empty edge batch, sequenced on a per-edge stream separate
        from the block streams. The observing side is derived from the
        link's node: a batch for ``src -> dst`` captured here was
        observed at the destination exactly when this node *is* ``dst``.
        Empty batches are skipped (no frame, no sequence advance).
        """
        payloads: List[bytes] = []
        for (src, dst), timestamps in batches.items():
            arr = np.asarray(timestamps, dtype=np.float64)
            if arr.size == 0:
                continue
            seq = self._batch_seqs.get((src, dst), 0)
            self._batch_seqs[(src, dst)] = seq + 1
            payloads.append(
                encode_frame(
                    TimestampFrame(
                        self.node, self.epoch, seq, src, dst, arr,
                        observed_at_destination=(self.node == dst),
                    )
                )
            )
        self.frames_sent += len(payloads)
        return payloads


# -- receiver side -----------------------------------------------------------------


class ReorderBuffer:
    """Re-sequencer for one ``(node, src, dst)`` block stream.

    Frames are delivered in sequence order. A hole older than
    ``lateness`` blocks (measured against the newest sequence seen) is
    declared lost -- a :class:`GapNotice` is recorded and the stream
    skips ahead. A frame arriving *after* its gap was declared is still
    delivered (a *late recovery*; blocks carry their own window position,
    so the engine can patch history), but within an epoch no sequence is
    ever delivered twice, and once a newer epoch has been seen, frames
    from older epochs are dropped for good.
    """

    def __init__(self, key: StreamKey, lateness: int = 2) -> None:
        if lateness < 0:
            raise TraceError(f"lateness must be >= 0, got {lateness}")
        self.key = key
        self.lateness = lateness
        self.epoch: Optional[int] = None
        self.next_seq = 0
        self.max_seen = -1
        self._pending: Dict[int, BlockFrame] = {}
        self._lost: set = set()
        self._anchor: Optional[int] = None  # block start of seq 0
        self._block_quanta: Optional[int] = None
        self.gap_notices: List[GapNotice] = []
        self.duplicates = 0
        self.reordered = 0
        self.gaps = 0
        self.late_recovered = 0
        self.stale_epoch_drops = 0
        self.delivered = 0

    def push(self, frame: BlockFrame) -> List[BlockFrame]:
        """Ingest one frame; returns the frames now deliverable in order."""
        if self.epoch is None:
            self.epoch = frame.epoch
        if frame.epoch < self.epoch:
            # Pre-restart block: never resurrected.
            self.stale_epoch_drops += 1
            return []
        out: List[BlockFrame] = []
        if frame.epoch > self.epoch:
            # Tracer restarted: drain what the old epoch buffered (in
            # order, declaring unfilled holes), then reset the stream.
            out.extend(self._drain_pending())
            self.epoch = frame.epoch
            self.next_seq = 0
            self.max_seen = -1
            self._lost.clear()
            self._anchor = None
            self._block_quanta = None
        if frame.block is not None and self._anchor is None:
            self._block_quanta = frame.block.length
            self._anchor = frame.block.start - frame.seq * frame.block.length
        if frame.seq < self.next_seq:
            if frame.seq in self._lost:
                # The gap this frame would have filled was already
                # declared; hand it over anyway so history can be patched.
                self._lost.discard(frame.seq)
                self.late_recovered += 1
                self.delivered += 1
                out.append(frame)
            else:
                self.duplicates += 1
            return out
        if frame.seq in self._pending:
            self.duplicates += 1
            return out
        if frame.seq < self.max_seen:
            self.reordered += 1
        self._pending[frame.seq] = frame
        self.max_seen = max(self.max_seen, frame.seq)
        out.extend(self._pop_consecutive())
        # Lateness exceeded: declare the head-of-line holes lost and skip.
        while self._pending and self.max_seen - self.next_seq > self.lateness:
            skip_to = min(self._pending)
            for seq in range(self.next_seq, skip_to):
                self._declare_gap(seq)
            self.next_seq = skip_to
            out.extend(self._pop_consecutive())
        return out

    def flush(self) -> List[BlockFrame]:
        """Deliver everything still buffered, declaring unfilled holes."""
        return self._drain_pending()

    def drain_gap_notices(self) -> List[GapNotice]:
        notices, self.gap_notices = self.gap_notices, []
        return notices

    def outstanding(self) -> int:
        """Frames buffered waiting for a hole to fill."""
        return len(self._pending)

    def _pop_consecutive(self) -> List[BlockFrame]:
        out: List[BlockFrame] = []
        while self.next_seq in self._pending:
            out.append(self._pending.pop(self.next_seq))
            self.next_seq += 1
            self.delivered += 1
        return out

    def _drain_pending(self) -> List[BlockFrame]:
        out: List[BlockFrame] = []
        for seq in sorted(self._pending):
            for missing in range(self.next_seq, seq):
                self._declare_gap(missing)
            out.append(self._pending.pop(seq))
            self.next_seq = seq + 1
            self.delivered += 1
        return out

    def _declare_gap(self, seq: int) -> None:
        self._lost.add(seq)
        self.gaps += 1
        node, src, dst = self.key
        start = (
            self._anchor + seq * self._block_quanta
            if self._anchor is not None and self._block_quanta
            else None
        )
        self.gap_notices.append(
            GapNotice(node, src, dst, self.epoch or 0, seq, start)
        )


@dataclasses.dataclass
class TracerStatus:
    """Liveness verdict for one tracer."""

    node: NodeId
    state: str
    last_heard: float
    epoch: int = 0

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "state": self.state,
            "last_heard": self.last_heard,
            "epoch": self.epoch,
        }


class LivenessWatchdog:
    """Heartbeat-age watchdog over the registered tracer population.

    A tracer unheard for more than ``stale_after`` seconds is
    ``lagging``; beyond ``dead_after`` it is ``dead``.
    """

    def __init__(self, stale_after: float, dead_after: float) -> None:
        if stale_after <= 0 or dead_after < stale_after:
            raise TraceError(
                "watchdog thresholds must satisfy 0 < stale_after <= "
                f"dead_after (got {stale_after}, {dead_after})"
            )
        self.stale_after = stale_after
        self.dead_after = dead_after
        self._last_heard: Dict[NodeId, float] = {}
        self._epochs: Dict[NodeId, int] = {}

    def register(self, node: NodeId, now: float) -> None:
        """Start the clock for a tracer that has not spoken yet."""
        self._last_heard.setdefault(node, now)

    def heartbeat(self, node: NodeId, now: float, epoch: int = 0) -> None:
        self._last_heard[node] = max(now, self._last_heard.get(node, now))
        self._epochs[node] = max(epoch, self._epochs.get(node, 0))

    def status(self, node: NodeId, now: float) -> TracerStatus:
        last = self._last_heard.get(node)
        if last is None:
            return TracerStatus(node, TRACER_DEAD, float("-inf"))
        age = now - last
        if age > self.dead_after:
            state = TRACER_DEAD
        elif age > self.stale_after:
            state = TRACER_LAGGING
        else:
            state = TRACER_LIVE
        return TracerStatus(node, state, last, self._epochs.get(node, 0))

    def statuses(self, now: float) -> Dict[NodeId, TracerStatus]:
        return {node: self.status(node, now) for node in self._last_heard}

    def nodes(self) -> List[NodeId]:
        return sorted(self._last_heard)


class TransportReceiver:
    """Analyzer-side ingest endpoint for framed block streams.

    Decodes incoming payloads (corrupt frames are counted and dropped,
    never raised), re-sequences each ``(node, edge)`` stream through a
    :class:`ReorderBuffer`, feeds heartbeats to the liveness watchdog,
    and accumulates ordered frames until the engine ``poll``\\ s.
    """

    def __init__(
        self,
        config: Optional[TransportConfig] = None,
        refresh_interval: float = 60.0,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.config = config if config is not None else TransportConfig()
        self.watchdog = LivenessWatchdog(
            stale_after=self.config.stale_after_refreshes * refresh_interval,
            dead_after=self.config.dead_after_refreshes * refresh_interval,
        )
        self._buffers: Dict[StreamKey, ReorderBuffer] = {}
        self._ready: List[BlockFrame] = []
        self._edge_owner: Dict[EdgeKey, NodeId] = {}
        # Timestamp-batch streams bypass the reorder buffers (batches
        # carry absolute times, so arrival order is irrelevant); per
        # stream we keep only the current epoch and the seqs delivered
        # in it, to drop duplicates and pre-restart frames.
        self._ready_batches: List[TimestampFrame] = []
        self._batch_streams: Dict[StreamKey, Tuple[int, set]] = {}
        self.frames_received = 0
        self.corrupt_blocks = 0
        self.heartbeats = 0
        self.timestamp_batches = 0
        self.timestamp_duplicates = 0
        self.timestamp_stale_epoch = 0
        if metrics is not None:
            self._m_received = metrics.counter(
                "transport_frames_received_total",
                "Transport frames received (before validation)",
            )
            self._m_corrupt = metrics.counter(
                "transport_corrupt_blocks_total",
                "Transport frames dropped as corrupt (CRC/decode failure)",
            )
            self._m_heartbeats = metrics.counter(
                "transport_heartbeats_total", "Heartbeat frames received"
            )
            self._m_batches = metrics.counter(
                "transport_timestamp_batches_total",
                "Packed timestamp-batch frames accepted",
            )
        else:
            self._m_received = None
            self._m_corrupt = None
            self._m_heartbeats = None
            self._m_batches = None

    def register_tracer(self, node: NodeId, now: float) -> None:
        """Make the watchdog expect ``node`` even before its first frame."""
        self.watchdog.register(node, now)

    def receive(self, payload: bytes, now: float) -> None:
        """Ingest one raw frame payload from some channel."""
        self.frames_received += 1
        if self._m_received is not None:
            self._m_received.inc()
        try:
            frame = decode_frame(payload)
        except TraceError as exc:
            self.corrupt_blocks += 1
            if self._m_corrupt is not None:
                self._m_corrupt.inc()
            if logger.isEnabledFor(logging.DEBUG):
                logger.debug("dropped corrupt transport frame: %s", exc)
            return
        self.watchdog.heartbeat(frame.node, now, frame.epoch)
        if isinstance(frame, TimestampFrame):
            self._receive_batch(frame)
            return
        if frame.is_heartbeat:
            self.heartbeats += 1
            if self._m_heartbeats is not None:
                self._m_heartbeats.inc()
            return
        self._edge_owner[frame.edge] = frame.node
        key: StreamKey = (frame.node, frame.src, frame.dst)
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = ReorderBuffer(key, lateness=self.config.lateness_blocks)
            self._buffers[key] = buffer
        self._ready.extend(buffer.push(frame))

    def _receive_batch(self, frame: TimestampFrame) -> None:
        """File one timestamp-batch frame: dedup within the stream's
        current epoch, drop pre-restart epochs, deliver the rest.

        No reorder buffering: batches carry absolute capture times, so
        the collector can ingest them in any arrival order."""
        key: StreamKey = (frame.node, frame.src, frame.dst)
        stream = self._batch_streams.get(key)
        if stream is None or frame.epoch > stream[0]:
            stream = (frame.epoch, set())
            self._batch_streams[key] = stream
        epoch, seen = stream
        if frame.epoch < epoch:
            self.timestamp_stale_epoch += 1
            return
        if frame.seq in seen:
            self.timestamp_duplicates += 1
            return
        seen.add(frame.seq)
        self.timestamp_batches += 1
        if self._m_batches is not None:
            self._m_batches.inc()
        self._ready_batches.append(frame)

    def poll(self) -> List[BlockFrame]:
        """Ordered frames accumulated since the last poll."""
        ready, self._ready = self._ready, []
        return ready

    def poll_timestamp_batches(self) -> List[TimestampFrame]:
        """Timestamp-batch frames accepted since the last poll."""
        ready, self._ready_batches = self._ready_batches, []
        return ready

    def drain_gap_notices(self) -> List[GapNotice]:
        """All gap declarations since the last drain, across streams."""
        notices: List[GapNotice] = []
        for buffer in self._buffers.values():
            notices.extend(buffer.drain_gap_notices())
        return notices

    def edge_owner(self, edge: EdgeKey) -> Optional[NodeId]:
        """The tracer observed feeding an edge's stream, if known."""
        return self._edge_owner.get(edge)

    def known_edges(self) -> List[EdgeKey]:
        return sorted(self._edge_owner)

    def statuses(self, now: float) -> Dict[NodeId, TracerStatus]:
        return self.watchdog.statuses(now)

    def totals(self) -> dict:
        """Aggregate stream counters across all reorder buffers."""
        totals = {
            "frames_received": self.frames_received,
            "corrupt_blocks": self.corrupt_blocks,
            "heartbeats": self.heartbeats,
            "timestamp_batches": self.timestamp_batches,
            "timestamp_duplicates": self.timestamp_duplicates,
            "timestamp_stale_epoch": self.timestamp_stale_epoch,
            "delivered": 0,
            "duplicates": 0,
            "reordered": 0,
            "gaps": 0,
            "late_recovered": 0,
            "stale_epoch_drops": 0,
            "outstanding": 0,
        }
        for buffer in self._buffers.values():
            totals["delivered"] += buffer.delivered
            totals["duplicates"] += buffer.duplicates
            totals["reordered"] += buffer.reordered
            totals["gaps"] += buffer.gaps
            totals["late_recovered"] += buffer.late_recovered
            totals["stale_epoch_drops"] += buffer.stale_epoch_drops
            totals["outstanding"] += buffer.outstanding()
        return totals


def overall_quality(qualities: Iterable[DataQuality]) -> float:
    """Overall window quality score in ``[0, 1]``: 1 minus the mean
    per-edge penalty (1.0 when there are no edges to judge)."""
    penalties = [q.penalty for q in qualities]
    if not penalties:
        return 1.0
    return max(0.0, 1.0 - sum(penalties) / len(penalties))
