"""Non-intrusive tracing substrate: tracers, collector, log adapters."""

from repro.tracing.access_log import access_log_to_captures, merge_server_logs, split_by_server
from repro.tracing.collector import CollectedTraceWindow, TraceCollector
from repro.tracing.records import AccessLogRecord, CaptureRecord, TimestampBatch
from repro.tracing.storage import (
    load_capture_batches,
    load_captures,
    read_capture_binary,
    read_capture_binary_records,
    write_capture_binary,
    read_access_log_jsonl,
    read_capture_csv,
    read_capture_jsonl,
    write_access_log_jsonl,
    write_capture_csv,
    write_capture_jsonl,
)
from repro.tracing.tracer import Tracer
from repro.tracing.transport import (
    DataQuality,
    FaultyChannel,
    GapNotice,
    LivenessWatchdog,
    ReorderBuffer,
    TracerStatus,
    TransportLink,
    TransportReceiver,
    overall_quality,
)
from repro.tracing.wire import (
    BlockFrame,
    TimestampFrame,
    decode_block,
    decode_frame,
    encode_block,
    encode_frame,
    wire_sizes,
)
