"""Access-log adapter (paper Section 4.3).

The Delta Revenue Pipeline trace is *not* a packet capture: it consists of
application-level transactional events -- "timestamps, server IDs, and
request IDs for every application-level transactional event processed by
the system". This adapter converts such logs into the capture-record form
the collector understands, so the identical pathmap code analyzes both
kinds of traces (which is exactly what the paper did).

Mapping:

* a ``send`` event at server ``A`` naming peer ``B`` becomes a capture of
  a message on edge ``A -> B`` observed at ``A``;
* a ``recv`` event at server ``B`` becomes an observation at the
  destination. Its source edge is resolved from the most recent ``send``
  of the same request id (logs record per-server events, not wire pairs);
  a ``recv`` with no matching send is treated as external ingress from a
  configured source (e.g. the feed that fills the front-end queues).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import TraceError
from repro.tracing.records import AccessLogRecord, CaptureRecord, NodeId


def access_log_to_captures(
    records: Iterable[AccessLogRecord],
    ingress_source: NodeId = "external",
) -> Iterator[CaptureRecord]:
    """Convert an access log into capture records.

    ``records`` must be sorted by timestamp (logs naturally are). The
    converter keeps, per request id, the server that last emitted a
    ``send`` for it, so each ``recv`` can be attributed to its upstream
    edge.

    Parameters
    ----------
    ingress_source:
        Edge source used for ``recv`` events with no prior ``send`` --
        i.e. requests entering the system from the outside world.
    """
    last_sender: Dict[int, NodeId] = {}
    previous_ts: Optional[float] = None
    for record in records:
        if previous_ts is not None and record.timestamp < previous_ts:
            raise TraceError(
                "access log records must be sorted by timestamp "
                f"({record.timestamp} after {previous_ts})"
            )
        previous_ts = record.timestamp
        if record.event == "send":
            if record.peer is None:
                raise TraceError("send event without peer")
            yield CaptureRecord(
                timestamp=record.timestamp,
                src=record.server,
                dst=record.peer,
                observer=record.server,
                request_id=record.request_id,
            )
            last_sender[record.request_id] = record.server
        else:  # recv
            src = last_sender.get(record.request_id, ingress_source)
            if src == record.server:
                # A server re-receiving its own send (e.g. local queue
                # hand-off) -- model the hop from the original upstream.
                src = ingress_source
            yield CaptureRecord(
                timestamp=record.timestamp,
                src=src,
                dst=record.server,
                observer=record.server,
                request_id=record.request_id,
            )


def split_by_server(
    records: Iterable[AccessLogRecord],
) -> Dict[NodeId, List[AccessLogRecord]]:
    """Group an access log by server id (each server logs independently)."""
    out: Dict[NodeId, List[AccessLogRecord]] = {}
    for record in records:
        out.setdefault(record.server, []).append(record)
    return out


def merge_server_logs(
    logs: Iterable[Iterable[AccessLogRecord]],
) -> List[AccessLogRecord]:
    """Merge per-server logs into one timestamp-ordered log."""
    merged: List[AccessLogRecord] = []
    for log in logs:
        merged.extend(log)
    merged.sort(key=lambda r: (r.timestamp, r.server, r.request_id))
    return merged
