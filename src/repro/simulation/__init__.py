"""Deterministic discrete-event simulation of enterprise systems."""

from repro.simulation.des import PeriodicTask, Simulator
from repro.simulation.distributions import (
    Constant,
    Distribution,
    Empirical,
    Erlang,
    Exponential,
    LogNormal,
    TruncatedNormal,
    Uniform,
)
from repro.simulation.groundtruth import GroundTruth
from repro.simulation.network import Fabric
from repro.simulation.nodes import (
    Absorb,
    ClientNode,
    Forward,
    LeafRouter,
    Message,
    Reply,
    Router,
    ServiceNode,
    SinkRouter,
    StaticRouter,
)
from repro.simulation.topology import Topology
from repro.simulation.workload import ClosedWorkload, OnOffWorkload, OpenWorkload
