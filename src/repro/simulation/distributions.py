"""Random variate distributions for service times and arrivals.

Every distribution draws from a caller-supplied
:class:`numpy.random.Generator`, keeping the whole simulation
reproducible from one seed. All samples are non-negative seconds.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Sequence

import numpy as np

from repro.errors import SimulationError


class Distribution(abc.ABC):
    """A non-negative random variate."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value (seconds, >= 0)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value (for provisioning checks and ground truth)."""


@dataclasses.dataclass(frozen=True)
class Constant(Distribution):
    """Always ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise SimulationError(f"constant must be non-negative, got {self.value}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclasses.dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean (inter-arrival of a Poisson process)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise SimulationError(f"mean must be positive, got {self.mean_value}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_value))

    def mean(self) -> float:
        return self.mean_value


@dataclasses.dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise SimulationError(f"need 0 <= low <= high, got [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclasses.dataclass(frozen=True)
class TruncatedNormal(Distribution):
    """Normal(mu, sigma) clipped at zero (service-time jitter)."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise SimulationError(f"sigma must be non-negative, got {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return max(0.0, float(rng.normal(self.mu, self.sigma)))

    def mean(self) -> float:
        # Approximation: exact only when truncation mass is negligible,
        # which holds for the mu >> sigma settings used in this package.
        return max(0.0, self.mu)


@dataclasses.dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal parameterized by its actual mean and sigma of log-space.

    Heavy-tailed service times (typical of database queries).
    """

    mean_value: float
    log_sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise SimulationError(f"mean must be positive, got {self.mean_value}")
        if self.log_sigma < 0:
            raise SimulationError(f"log_sigma must be non-negative, got {self.log_sigma}")

    def _mu(self) -> float:
        return float(np.log(self.mean_value) - 0.5 * self.log_sigma**2)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu(), self.log_sigma))

    def mean(self) -> float:
        return self.mean_value


@dataclasses.dataclass(frozen=True)
class Erlang(Distribution):
    """Erlang-k with the given mean (sum of k exponentials; low variance)."""

    mean_value: float
    k: int = 4

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise SimulationError(f"mean must be positive, got {self.mean_value}")
        if self.k < 1:
            raise SimulationError(f"k must be >= 1, got {self.k}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.k, self.mean_value / self.k))

    def mean(self) -> float:
        return self.mean_value


class Empirical(Distribution):
    """Resamples uniformly from observed values (trace-driven replay)."""

    def __init__(self, values: Sequence[float]) -> None:
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise SimulationError("empirical distribution needs at least one value")
        if np.any(arr < 0):
            raise SimulationError("empirical values must be non-negative")
        self._values = arr

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._values[rng.integers(0, self._values.size)])

    def mean(self) -> float:
        return float(self._values.mean())

    def __repr__(self) -> str:
        return f"Empirical(n={self._values.size}, mean={self.mean():.6f})"
