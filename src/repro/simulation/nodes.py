"""Simulated service and client nodes.

A :class:`ServiceNode` is a k-worker FIFO queueing station: messages
(requests and responses alike) queue for a worker, are held for a sampled
service time (plus any injected fault delay), and are then routed by the
node's :class:`Router`.

Request-response flow uses an explicit *return stack* carried in the
message (no global state): every node that forwards a request pushes
itself; a replying leaf turns the message around, and each pop walks the
response back hop-by-hop through the same nodes in reverse order -- the
paper's bidirectional path assumption.

Fan-out is supported (an EJB server issuing multiple database queries for
one request -- the paper's "changes in rate across nodes"): a router may
forward to several targets at once; the node joins the responses and
propagates a single response upstream once all have arrived.
"""

from __future__ import annotations

import abc
import collections
import dataclasses
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulation.des import Simulator
from repro.simulation.distributions import Constant, Distribution
from repro.simulation.network import Fabric
from repro.tracing.records import NodeId

REQUEST = "request"
RESPONSE = "response"


@dataclasses.dataclass
class Message:
    """One application message in flight.

    ``return_stack`` holds the upstream nodes a response must traverse,
    bottom (client) to top (most recent forwarder).
    """

    request_id: int
    service_class: str
    kind: str
    src: NodeId
    dst: NodeId
    return_stack: Tuple[NodeId, ...]
    created_at: float

    def __post_init__(self) -> None:
        if self.kind not in (REQUEST, RESPONSE):
            raise SimulationError(f"unknown message kind {self.kind!r}")


class Decision(abc.ABC):
    """What a router wants done with a serviced request."""


@dataclasses.dataclass(frozen=True)
class Forward(Decision):
    """Forward the request to one or more downstream nodes (fan-out)."""

    targets: Tuple[NodeId, ...]

    def __init__(self, *targets: NodeId) -> None:
        if not targets:
            raise SimulationError("Forward needs at least one target")
        object.__setattr__(self, "targets", tuple(targets))


class Reply(Decision):
    """Turn the request around: send a response to the caller."""


class Absorb(Decision):
    """Consume the request with no response -- unidirectional pipelines
    (streaming media, event pipelines like Delta's Revenue Pipeline)."""


class Router(abc.ABC):
    """Pluggable request-routing policy of a service node."""

    @abc.abstractmethod
    def route(self, node: "ServiceNode", message: Message) -> Decision:
        """Decide what to do with a serviced request."""


class StaticRouter(Router):
    """Routes by service class using a fixed map; unlisted classes reply.

    ``targets[cls]`` may be a single node id or a sequence (fan-out).
    """

    def __init__(self, targets: Dict[str, object], default: Optional[object] = None) -> None:
        self._targets = dict(targets)
        self._default = default

    def route(self, node: "ServiceNode", message: Message) -> Decision:
        target = self._targets.get(message.service_class, self._default)
        if target is None:
            return Reply()
        if isinstance(target, str):
            return Forward(target)
        return Forward(*target)


class LeafRouter(Router):
    """Always replies -- terminal nodes (the database tier)."""

    def route(self, node: "ServiceNode", message: Message) -> Decision:
        return Reply()


class SinkRouter(Router):
    """Always absorbs -- the end of a unidirectional pipeline."""

    def route(self, node: "ServiceNode", message: Message) -> Decision:
        return Absorb()


#: Injected extra service delay: callable(now) -> seconds. Used for the
#: Figure 7 staircase and the Table 1 random perturbation.
DelayFunction = Callable[[float], float]


class ServiceNode:
    """A k-worker FIFO queueing station with pluggable routing.

    Parameters
    ----------
    sim, fabric:
        Shared simulation engine and network.
    node_id:
        Unique id (the paper labels nodes by IP or IP+pid).
    service_time:
        Service time distribution for requests.
    response_service_time:
        Service time for responses passing back through the node
        (defaults to a tenth of nothing -- a fast constant; response
        forwarding is much cheaper than request processing).
    workers:
        Number of concurrent workers (threads) -- the queueing capacity.
    router:
        Routing policy; defaults to :class:`LeafRouter`.
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        node_id: NodeId,
        service_time: Distribution,
        response_service_time: Optional[Distribution] = None,
        workers: int = 4,
        router: Optional[Router] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if workers < 1:
            raise SimulationError(f"workers must be >= 1, got {workers}")
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.service_time = service_time
        self.response_service_time = response_service_time or Constant(0.0005)
        self.workers = workers
        self.router = router or LeafRouter()
        self.rng = rng if rng is not None else fabric.rng
        self.extra_delay: Optional[DelayFunction] = None
        self._extra_delay_kinds: Tuple[str, ...] = (REQUEST,)
        self._failed = False
        self.dropped_messages = 0
        self._queue: Deque[Tuple[Message, float]] = collections.deque()
        self._busy = 0
        # Fan-out joins: request_id -> outstanding child-response count.
        self._joins: Dict[int, int] = {}
        # Observability / ground truth.
        self.serviced_requests = 0
        self.serviced_responses = 0
        self._service_log: List[Tuple[float, str, str, float]] = []
        self._queue_delay_log: List[float] = []
        fabric.register(self)

    # -- fault injection ------------------------------------------------------------

    @property
    def failed(self) -> bool:
        return self._failed

    def fail(self) -> None:
        """Crash the node: queued and future messages are dropped (in-service
        work is lost too)."""
        self._failed = True
        self.dropped_messages += len(self._queue)
        self._queue.clear()

    def recover(self) -> None:
        """Bring a crashed node back into service."""
        self._failed = False

    def set_extra_delay(
        self, fn: Optional[DelayFunction], kinds: Tuple[str, ...] = (REQUEST,)
    ) -> None:
        """Inject (or clear) an additional service delay, as a function of
        simulation time. Models the paper's artificial perturbations, which
        are injected into *request* processing (pass ``kinds`` to also slow
        responses)."""
        self.extra_delay = fn
        self._extra_delay_kinds = kinds

    # -- queueing ---------------------------------------------------------------------

    def receive(self, message: Message) -> None:
        if self._failed:
            # A crashed node drops traffic on the floor -- the 'service
            # outages' the paper's introduction motivates detecting.
            self.dropped_messages += 1
            return
        self._queue.append((message, self.sim.now))
        self._dispatch()

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy_workers(self) -> int:
        return self._busy

    def _dispatch(self) -> None:
        while self._busy < self.workers and self._queue:
            message, enqueued_at = self._queue.popleft()
            self._busy += 1
            self._queue_delay_log.append(self.sim.now - enqueued_at)
            duration = self._sample_service(message)
            self._service_log.append(
                (self.sim.now, message.service_class, message.kind, duration)
            )
            self.sim.schedule(duration, lambda m=message: self._complete(m))

    def _sample_service(self, message: Message) -> float:
        if message.kind == REQUEST:
            duration = self.service_time.sample(self.rng)
        else:
            duration = self.response_service_time.sample(self.rng)
        if self.extra_delay is not None and message.kind in self._extra_delay_kinds:
            duration += max(0.0, self.extra_delay(self.sim.now))
        return duration

    def _complete(self, message: Message) -> None:
        self._busy -= 1
        if self._failed:
            # Work in flight at crash time is lost.
            self.dropped_messages += 1
            return
        try:
            if message.kind == REQUEST:
                self._handle_request(message)
            else:
                self._handle_response(message)
        finally:
            self._dispatch()

    # -- routing -----------------------------------------------------------------------

    def _handle_request(self, message: Message) -> None:
        self.serviced_requests += 1
        decision = self.router.route(self, message)
        if isinstance(decision, Absorb):
            return
        if isinstance(decision, Reply):
            self._send_response(message)
            return
        if isinstance(decision, Forward):
            targets = decision.targets
            if len(targets) > 1:
                self._joins[message.request_id] = (
                    self._joins.get(message.request_id, 0) + len(targets) - 1
                )
            for target in targets:
                child = dataclasses.replace(
                    message,
                    src=self.node_id,
                    dst=target,
                    return_stack=message.return_stack + (self.node_id,),
                )
                self.fabric.send(child)
            return
        raise SimulationError(f"router returned unknown decision {decision!r}")

    def _handle_response(self, message: Message) -> None:
        self.serviced_responses += 1
        outstanding = self._joins.get(message.request_id)
        if outstanding:
            # Absorb all but the last child response of a fan-out.
            if outstanding > 1:
                self._joins[message.request_id] = outstanding - 1
            else:
                del self._joins[message.request_id]
            if outstanding >= 1:
                return
        self._propagate_response(message)

    def _send_response(self, request: Message) -> None:
        """Turn a request around at a leaf."""
        if not request.return_stack:
            raise SimulationError(
                f"request {request.request_id} reached leaf {self.node_id!r} "
                "with an empty return stack"
            )
        response = dataclasses.replace(
            request,
            kind=RESPONSE,
            src=self.node_id,
            dst=request.return_stack[-1],
            return_stack=request.return_stack[:-1],
        )
        self.fabric.send(response)

    def _propagate_response(self, message: Message) -> None:
        """Walk a response one hop further up the return stack."""
        if not message.return_stack:
            raise SimulationError(
                f"response {message.request_id} at {self.node_id!r} has no "
                "upstream left"
            )
        hop = dataclasses.replace(
            message,
            src=self.node_id,
            dst=message.return_stack[-1],
            return_stack=message.return_stack[:-1],
        )
        self.fabric.send(hop)

    # -- observability ------------------------------------------------------------------

    def service_log(self) -> List[Tuple[float, str, str, float]]:
        """(start_time, class, kind, duration) per serviced message."""
        return list(self._service_log)

    def mean_service_time(
        self, service_class: Optional[str] = None, kind: str = REQUEST
    ) -> float:
        durations = [
            d
            for (_, cls, k, d) in self._service_log
            if k == kind and (service_class is None or cls == service_class)
        ]
        if not durations:
            return 0.0
        return float(np.mean(durations))

    def mean_queue_delay(self) -> float:
        if not self._queue_delay_log:
            return 0.0
        return float(np.mean(self._queue_delay_log))


class ClientNode:
    """A client node: issues requests of one service class, measures
    response latency. Clients are *not* traced (paper Section 3.3).

    One physical client issuing multiple request classes is modelled as
    multiple client nodes (paper Section 3.2).
    """

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        node_id: NodeId,
        service_class: str,
        front_end: NodeId,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.service_class = service_class
        self.front_end = front_end
        self.sent = 0
        self.completed = 0
        self._latencies: List[Tuple[float, float]] = []  # (completion time, latency)
        self._inflight: Dict[int, float] = {}
        self._completion_callbacks: List[Callable[[Message, float], None]] = []
        fabric.register(self)

    def issue_request(self) -> int:
        """Send one request to the front end; returns its request id."""
        request_id = self.fabric.next_request_id()
        message = Message(
            request_id=request_id,
            service_class=self.service_class,
            kind=REQUEST,
            src=self.node_id,
            dst=self.front_end,
            return_stack=(self.node_id,),
            created_at=self.sim.now,
        )
        self._inflight[request_id] = self.sim.now
        self.sent += 1
        self.fabric.send(message)
        return request_id

    def receive(self, message: Message) -> None:
        if message.kind != RESPONSE:
            raise SimulationError(
                f"client {self.node_id!r} received a non-response message"
            )
        started = self._inflight.pop(message.request_id, None)
        if started is None:
            raise SimulationError(
                f"client {self.node_id!r} received unknown response "
                f"{message.request_id}"
            )
        latency = self.sim.now - started
        self.completed += 1
        self._latencies.append((self.sim.now, latency))
        for callback in self._completion_callbacks:
            callback(message, latency)

    def on_completion(self, callback: Callable[[Message, float], None]) -> None:
        """Register a callback fired at every completed request (closed
        workloads use this to drive think-time loops)."""
        self._completion_callbacks.append(callback)

    # -- measurements ----------------------------------------------------------------

    def latencies(self, since: float = 0.0) -> List[float]:
        """Client-perceived latencies of requests completed after ``since``."""
        return [lat for (t, lat) in self._latencies if t >= since]

    def latencies_between(self, start: float, end: float) -> List[float]:
        """Latencies of requests completed in ``[start, end)``."""
        return [lat for (t, lat) in self._latencies if start <= t < end]

    def mean_latency(self, since: float = 0.0) -> float:
        lats = self.latencies(since)
        if not lats:
            return 0.0
        return float(np.mean(lats))

    @property
    def outstanding(self) -> int:
        return len(self._inflight)
