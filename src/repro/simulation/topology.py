"""Topology builder: one-stop wiring of a simulated enterprise system.

Bundles a simulator, a network fabric, per-node tracers, a central trace
collector, and optional ground truth into a single object with a small
API, so application topologies (RUBiS, Delta) and examples read linearly::

    topo = Topology(seed=7)
    db = topo.add_service_node("DB", LogNormal(0.008))
    ws = topo.add_service_node("WS", Constant(0.002),
                               router=StaticRouter({"bid": "DB"}))
    client = topo.add_client("C1", "bid", front_end="WS")
    topo.open_workload(client, rate=50.0)
    topo.run_until(180.0)
    window = topo.collector.window(RUBIS_CONFIG, end_time=180.0)
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import TopologyError
from repro.simulation.des import Simulator
from repro.simulation.distributions import Distribution, Exponential
from repro.simulation.groundtruth import GroundTruth
from repro.simulation.network import DEFAULT_LATENCY, Fabric
from repro.simulation.nodes import ClientNode, Router, ServiceNode
from repro.simulation.workload import (
    ClosedWorkload,
    ModulatedWorkload,
    OpenWorkload,
    RateFunction,
    RetryWorkload,
)
from repro.tracing.collector import TraceCollector
from repro.tracing.records import NodeId
from repro.tracing.tracer import Tracer


class Topology:
    """A simulated distributed system with passive tracing wired in."""

    def __init__(
        self,
        seed: int = 0,
        default_latency: Distribution = DEFAULT_LATENCY,
        packets_per_message: int = 1,
    ) -> None:
        self.sim = Simulator()
        self.rng = np.random.default_rng(seed)
        self.fabric = Fabric(
            self.sim,
            self.rng,
            default_latency=default_latency,
            packets_per_message=packets_per_message,
        )
        self.collector = TraceCollector()
        self.fabric.add_capture_hook(self._stream_to_collector)
        self.service_nodes: Dict[NodeId, ServiceNode] = {}
        self.clients: Dict[NodeId, ClientNode] = {}
        self.workloads: List[object] = []
        self._ground_truths: Dict[NodeId, GroundTruth] = {}

    # -- construction ----------------------------------------------------------

    def add_service_node(
        self,
        node_id: NodeId,
        service_time: Distribution,
        workers: int = 4,
        router: Optional[Router] = None,
        response_service_time: Optional[Distribution] = None,
        clock_skew: float = 0.0,
    ) -> ServiceNode:
        """Create a traced service node."""
        node = ServiceNode(
            self.sim,
            self.fabric,
            node_id,
            service_time=service_time,
            response_service_time=response_service_time,
            workers=workers,
            router=router,
        )
        self.fabric.attach_tracer(Tracer(node_id, clock_skew=clock_skew))
        self.service_nodes[node_id] = node
        return node

    def add_client(
        self, node_id: NodeId, service_class: str, front_end: NodeId
    ) -> ClientNode:
        """Create an untraced client node issuing one service class."""
        if not self.fabric.has_node(front_end):
            raise TopologyError(
                f"front end {front_end!r} must be added before client {node_id!r}"
            )
        client = ClientNode(self.sim, self.fabric, node_id, service_class, front_end)
        self.clients[node_id] = client
        self.collector.add_client(node_id)
        return client

    def node(self, node_id: NodeId) -> ServiceNode:
        try:
            return self.service_nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown service node {node_id!r}") from None

    def set_link_latency(self, src: NodeId, dst: NodeId, latency: Distribution) -> None:
        self.fabric.set_latency(src, dst, latency)

    # -- workloads ------------------------------------------------------------------

    def open_workload(
        self, client: ClientNode, rate: float, start: bool = True
    ) -> OpenWorkload:
        """Poisson arrivals at ``rate`` req/s from ``client``."""
        workload = OpenWorkload(self.sim, client, rate, self.rng)
        self.workloads.append(workload)
        if start:
            workload.start()
        return workload

    def closed_workload(
        self,
        client: ClientNode,
        sessions: int,
        think_time: Optional[Distribution] = None,
        start: bool = True,
    ) -> ClosedWorkload:
        """``sessions`` think-loop sessions (httperf style) from ``client``."""
        workload = ClosedWorkload(
            self.sim, client, sessions, think_time or Exponential(1.0), self.rng
        )
        self.workloads.append(workload)
        if start:
            workload.start()
        return workload

    def modulated_workload(
        self,
        client: ClientNode,
        rate_fn: RateFunction,
        peak_rate: float,
        start: bool = True,
    ) -> ModulatedWorkload:
        """Non-homogeneous Poisson arrivals with rate ``rate_fn(t)``."""
        workload = ModulatedWorkload(self.sim, client, rate_fn, peak_rate, self.rng)
        self.workloads.append(workload)
        if start:
            workload.start()
        return workload

    def retry_workload(
        self,
        client: ClientNode,
        rate: float,
        timeout: float,
        retry_delay: float = 0.05,
        max_retries: int = 2,
        start: bool = True,
    ) -> RetryWorkload:
        """Open arrivals plus timeout-driven client retries."""
        workload = RetryWorkload(
            self.sim, client, rate, self.rng, timeout, retry_delay, max_retries
        )
        self.workloads.append(workload)
        if start:
            workload.start()
        return workload

    # -- observation --------------------------------------------------------------------

    def ground_truth(self, front_end: NodeId) -> GroundTruth:
        """Attach (or fetch) the exact recorder for one front end."""
        if front_end not in self._ground_truths:
            self._ground_truths[front_end] = GroundTruth(self.fabric, front_end)
        return self._ground_truths[front_end]

    def _stream_to_collector(
        self, timestamp: float, src: NodeId, dst: NodeId, observer: NodeId, message: object
    ) -> None:
        tracer = self.fabric.tracer(observer)
        if tracer is None:
            return  # untraced endpoint (client side): invisible to the enterprise
        # Point ingest, no CaptureRecord object: this hook runs once per
        # simulated packet, and the collector only consumes the black-box
        # tuple anyway (request/class ground truth never reaches it).
        self.collector.ingest_point(
            timestamp + tracer.clock_skew, src, dst, observer == dst
        )

    # -- execution -------------------------------------------------------------------------

    def run_until(self, end_time: float) -> int:
        """Advance the simulation to ``end_time`` (seconds)."""
        return self.sim.run_until(end_time)

    @property
    def now(self) -> float:
        return self.sim.now
