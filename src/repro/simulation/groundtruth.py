"""Ground-truth recorder for validating pathmap output.

The paper validates E2EProf by instrumenting RUBiS "to keep track of
transaction latency at different servers, by piggybagging performance
delay information in requests and responses" (Section 4.1.1). In our
simulated substrate we can do strictly better: the recorder taps the
fabric's capture hook and the nodes' service logs, so it knows the exact
per-hop arrival times and per-node processing delays of every request.

None of this is visible to pathmap, which sees only edge timestamps.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.simulation.network import Fabric
from repro.simulation.nodes import Message, REQUEST
from repro.tracing.records import NodeId

EdgeKey = Tuple[NodeId, NodeId]


@dataclasses.dataclass
class _RequestTrace:
    service_class: str
    front_arrival: Optional[float] = None
    # Earliest arrival time per edge (a fan-out may hit an edge repeatedly).
    edge_arrivals: Dict[EdgeKey, float] = dataclasses.field(default_factory=dict)


class GroundTruth:
    """Passive, exact observation of the simulated system.

    Attach before running::

        truth = GroundTruth(fabric, front_end="WS")
        ...run simulation...
        truth.mean_edge_delay("bidding", ("WS", "TS1"))
    """

    def __init__(self, fabric: Fabric, front_end: NodeId) -> None:
        self.front_end = front_end
        self._requests: Dict[int, _RequestTrace] = {}
        fabric.add_capture_hook(self._on_capture)

    # -- capture ------------------------------------------------------------------

    def _on_capture(
        self, timestamp: float, src: NodeId, dst: NodeId, observer: NodeId, message: object
    ) -> None:
        if observer != dst or not isinstance(message, Message):
            return  # only count deliveries, once per message
        trace = self._requests.get(message.request_id)
        if trace is None:
            trace = _RequestTrace(service_class=message.service_class)
            self._requests[message.request_id] = trace
        if dst == self.front_end and message.kind == REQUEST and trace.front_arrival is None:
            trace.front_arrival = timestamp
        edge = (src, dst)
        if edge not in trace.edge_arrivals:
            trace.edge_arrivals[edge] = timestamp

    # -- queries -------------------------------------------------------------------

    def edge_delays(
        self,
        service_class: str,
        edge: EdgeKey,
        since: float = 0.0,
        until: float = float("inf"),
    ) -> List[float]:
        """True cumulative delays (front-end arrival -> arrival at edge.dst)
        for every request of a class that traversed ``edge``.

        This is exactly the quantity a pathmap spike on that edge denotes.
        """
        out: List[float] = []
        for trace in self._requests.values():
            if trace.service_class != service_class or trace.front_arrival is None:
                continue
            if not (since <= trace.front_arrival < until):
                continue
            arrival = trace.edge_arrivals.get(edge)
            if arrival is not None:
                out.append(arrival - trace.front_arrival)
        return out

    def mean_edge_delay(
        self,
        service_class: str,
        edge: EdgeKey,
        since: float = 0.0,
        until: float = float("inf"),
    ) -> float:
        delays = self.edge_delays(service_class, edge, since, until)
        if not delays:
            return float("nan")
        return float(np.mean(delays))

    def traversed_edges(
        self,
        service_class: str,
        since: float = 0.0,
        until: float = float("inf"),
    ) -> Dict[EdgeKey, int]:
        """Every edge requests of a class traversed, with request counts.

        ``since``/``until`` restrict to requests whose *front-end arrival*
        fell in ``[since, until)`` -- the same windowing convention as
        :meth:`edge_delays`, so a sliding-window analysis can be graded
        against exactly the requests its window contained.
        """
        counts: Dict[EdgeKey, int] = {}
        for trace in self._requests.values():
            if trace.service_class != service_class:
                continue
            if trace.front_arrival is None or not (
                since <= trace.front_arrival < until
            ):
                continue
            for edge in trace.edge_arrivals:
                counts[edge] = counts.get(edge, 0) + 1
        return counts

    def request_count(self, service_class: Optional[str] = None) -> int:
        return sum(
            1
            for trace in self._requests.values()
            if service_class is None or trace.service_class == service_class
        )

    def end_to_end_latencies(
        self, service_class: str, final_edge: EdgeKey, since: float = 0.0
    ) -> List[float]:
        """Front-end arrival to delivery on ``final_edge`` (e.g. the
        response edge back to the client), per request."""
        return self.edge_delays(service_class, final_edge, since=since)
