"""Minimal deterministic discrete-event simulation engine.

The paper's evaluation runs on a physical testbed; this engine is the
substrate substitute. It provides exactly what pathmap's input needs:
message events with precise timestamps under controllable workloads,
service times, and faults.

Determinism: events at equal times fire in scheduling order (a
monotonically increasing sequence number breaks ties), and all randomness
flows through a single seeded :class:`numpy.random.Generator` owned by the
caller, so a given seed always reproduces the same trace byte-for-byte.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

EventCallback = Callable[[], None]


class Simulator:
    """Event-driven simulation clock and scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, EventCallback]] = []
        self._sequence = itertools.count()
        self._events_run = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        return self._events_run

    @property
    def pending(self) -> int:
        return len(self._queue)

    def schedule_at(self, when: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to run at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now {self._now}"
            )
        heapq.heappush(self._queue, (when, next(self._sequence), callback))

    def schedule(self, delay: float, callback: EventCallback) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    def run_until(self, end_time: float) -> int:
        """Run events up to and including ``end_time``; returns events run.

        The clock is left at ``end_time`` even when the queue drains early,
        so periodic processes can be rescheduled from a consistent time.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time} is before current time {self._now}"
            )
        if self._running:
            raise SimulationError("run_until called re-entrantly from an event")
        self._running = True
        ran = 0
        try:
            while self._queue and self._queue[0][0] <= end_time:
                when, _, callback = heapq.heappop(self._queue)
                self._now = when
                callback()
                ran += 1
                self._events_run += 1
        finally:
            self._running = False
        self._now = end_time
        return ran

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue is empty (or ``max_events`` fired)."""
        if self._running:
            raise SimulationError("run called re-entrantly from an event")
        self._running = True
        ran = 0
        try:
            while self._queue:
                if max_events is not None and ran >= max_events:
                    break
                when, _, callback = heapq.heappop(self._queue)
                self._now = when
                callback()
                ran += 1
                self._events_run += 1
        finally:
            self._running = False
        return ran


class PeriodicTask:
    """Re-schedules a callback every ``interval`` seconds until cancelled."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[float], Any],
        start_at: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._cancelled = False
        first = start_at if start_at is not None else sim.now + interval
        sim.schedule_at(first, self._fire)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback(self._sim.now)
        if not self._cancelled:
            self._sim.schedule(self._interval, self._fire)

    def cancel(self) -> None:
        self._cancelled = True
