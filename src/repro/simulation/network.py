"""Message fabric: links, latencies, packet capture hooks.

The :class:`Fabric` is the simulated network. It routes messages between
registered nodes with per-link latency distributions, and fires capture
hooks at both endpoints -- exactly where the paper's `tracer` kernel
module sits (netfilter: outgoing packets are captured at the sender,
incoming packets at the receiver).

A message may be carried by several back-to-back packets
(``packets_per_message``); the paper notes that "a single transaction may
be composed of multiple packets sent back-to-back", which is part of why
traffic is bursty.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.errors import SimulationError, TopologyError
from repro.simulation.des import Simulator
from repro.simulation.distributions import Constant, Distribution
from repro.tracing.records import NodeId
from repro.tracing.tracer import Tracer

#: (timestamp, src, dst, observer, message) capture callback signature.
CaptureHook = Callable[[float, NodeId, NodeId, NodeId, "object"], None]


class Receiver(Protocol):
    """Anything that can be registered on the fabric."""

    node_id: NodeId

    def receive(self, message: object) -> None: ...


#: Default LAN one-way latency: 0.2 ms (typical switched-ethernet RTT/2).
DEFAULT_LATENCY = Constant(0.0002)

#: Spacing of back-to-back packets of one message (wire serialization).
PACKET_GAP = 20e-6


class Fabric:
    """The simulated network connecting all nodes.

    Parameters
    ----------
    sim:
        The shared simulation engine.
    rng:
        Shared random generator (latency sampling).
    default_latency:
        Latency distribution for links without an explicit one.
    packets_per_message:
        How many back-to-back packets carry one message (>= 1).
    """

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        default_latency: Distribution = DEFAULT_LATENCY,
        packets_per_message: int = 1,
    ) -> None:
        if packets_per_message < 1:
            raise SimulationError(
                f"packets_per_message must be >= 1, got {packets_per_message}"
            )
        self.sim = sim
        self.rng = rng
        self.default_latency = default_latency
        self.packets_per_message = packets_per_message
        self._nodes: Dict[NodeId, Receiver] = {}
        self._latencies: Dict[Tuple[NodeId, NodeId], Distribution] = {}
        self._tracers: Dict[NodeId, Tracer] = {}
        self._capture_hooks: List[CaptureHook] = []
        self._messages_sent = 0
        self._request_ids = itertools.count(1)

    # -- registration -------------------------------------------------------------

    def register(self, node: Receiver) -> None:
        if node.node_id in self._nodes:
            raise TopologyError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node

    def node(self, node_id: NodeId) -> Receiver:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id!r}") from None

    def has_node(self, node_id: NodeId) -> bool:
        return node_id in self._nodes

    def attach_tracer(self, tracer: Tracer) -> None:
        """Install a passive tracer at a node (client nodes have none)."""
        if tracer.node in self._tracers:
            raise TopologyError(f"node {tracer.node!r} already has a tracer")
        self._tracers[tracer.node] = tracer

    def tracer(self, node_id: NodeId) -> Optional[Tracer]:
        return self._tracers.get(node_id)

    @property
    def tracers(self) -> Dict[NodeId, Tracer]:
        return dict(self._tracers)

    def add_capture_hook(self, hook: CaptureHook) -> None:
        """Register an extra observer of every packet capture (the
        collector streams from here)."""
        self._capture_hooks.append(hook)

    def set_latency(self, src: NodeId, dst: NodeId, latency: Distribution) -> None:
        """Override the latency of the directed link ``src -> dst``."""
        self._latencies[(src, dst)] = latency

    def link_latency(self, src: NodeId, dst: NodeId) -> Distribution:
        return self._latencies.get((src, dst), self.default_latency)

    @property
    def messages_sent(self) -> int:
        return self._messages_sent

    def next_request_id(self) -> int:
        """Fresh request id, unique and deterministic within this fabric."""
        return next(self._request_ids)

    # -- transport -----------------------------------------------------------------

    def send(self, message: "object") -> None:
        """Put a message on the wire from ``message.src`` to ``message.dst``.

        Captures the packet(s) at the sender now, samples the link latency
        once per message, and schedules delivery (with the receiver-side
        capture) at arrival.
        """
        src = message.src  # type: ignore[attr-defined]
        dst = message.dst  # type: ignore[attr-defined]
        if dst not in self._nodes:
            raise TopologyError(f"message to unknown node {dst!r}")
        now = self.sim.now
        self._capture(now, src, dst, observer=src, message=message)
        latency = self.link_latency(src, dst).sample(self.rng)
        self._messages_sent += 1
        self.sim.schedule(latency, lambda: self._deliver(message))

    def _deliver(self, message: "object") -> None:
        src = message.src  # type: ignore[attr-defined]
        dst = message.dst  # type: ignore[attr-defined]
        self._capture(self.sim.now, src, dst, observer=dst, message=message)
        self._nodes[dst].receive(message)

    def _capture(
        self, timestamp: float, src: NodeId, dst: NodeId, observer: NodeId, message: "object"
    ) -> None:
        tracer = self._tracers.get(observer)
        if tracer is None and not self._capture_hooks:
            return
        for k in range(self.packets_per_message):
            stamp = timestamp + k * PACKET_GAP
            if tracer is not None:
                tracer.observe(stamp, src, dst)
            for hook in self._capture_hooks:
                hook(stamp, src, dst, observer, message)
