"""Anomaly scoring on per-edge delay streams (paper Sections 1, 3.1).

"...it is possible to dynamically identify the bottlenecks present in
selected servers or services and to detect the abnormal or unusual
performance behaviors indicative of potential problems or overloads."

:class:`ChangeDetector` (Figure 7) flags *step* changes against a short
trailing baseline. :class:`AnomalyDetector` complements it for the
always-on monitoring case: every edge's delay stream is tracked with an
exponentially weighted moving average and variance (EWMA/EWMV); each new
sample gets a z-score against that long-memory baseline, and edges whose
score stays above threshold enter an ``alarm`` state until they recover.
This matches operator practice: a one-refresh blip is noise, a sustained
deviation is a page.
"""

from __future__ import annotations

import dataclasses
import logging
import math
from typing import Dict, List, Optional, Tuple

from repro.core.pathmap import PathmapResult
from repro.core.service_graph import NodeId
from repro.errors import AnalysisError
from repro.obs.events import EVENT_ANOMALY, EventBus

logger = logging.getLogger(__name__)

EdgeKey = Tuple[NodeId, NodeId]
ClassKey = Tuple[NodeId, NodeId]

OK = "ok"
WARNING = "warning"
ALARM = "alarm"


@dataclasses.dataclass
class EdgeState:
    """EWMA baseline and alarm state of one edge's delay stream."""

    mean: float
    variance: float
    samples: int = 1
    status: str = OK
    consecutive_deviations: int = 0
    last_score: float = 0.0

    def std(self) -> float:
        return math.sqrt(max(self.variance, 0.0))


@dataclasses.dataclass(frozen=True)
class Anomaly:
    """One raised (or escalated) anomaly."""

    time: float
    class_key: ClassKey
    edge: EdgeKey
    observed: float
    baseline: float
    score: float
    status: str


class AnomalyDetector:
    """EWMA/z-score anomaly detection over pathmap refreshes.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in (0, 1]; smaller = longer memory.
    warn_score / alarm_score:
        z-score thresholds for the warning and alarm states.
    alarm_after:
        Consecutive deviating refreshes required to escalate from warning
        to alarm (debouncing).
    min_std:
        Floor on the baseline standard deviation (seconds), so a perfectly
        quiet history doesn't turn measurement quantization into alarms.
    warmup:
        Refreshes per edge before scoring starts (baseline formation).
    events:
        Optional :class:`~repro.obs.events.EventBus`: every raised anomaly
        is also published as an ``EVENT_ANOMALY`` diagnostic event.
        ``subscribe_to`` adopts the engine's bus when none was given.
    """

    def __init__(
        self,
        alpha: float = 0.25,
        warn_score: float = 3.0,
        alarm_score: float = 5.0,
        alarm_after: int = 2,
        min_std: float = 0.002,
        warmup: int = 3,
        events: Optional[EventBus] = None,
    ) -> None:
        if not 0 < alpha <= 1:
            raise AnalysisError(f"alpha must be in (0, 1], got {alpha}")
        if warn_score <= 0 or alarm_score < warn_score:
            raise AnalysisError(
                "need 0 < warn_score <= alarm_score, got "
                f"{warn_score}/{alarm_score}"
            )
        if alarm_after < 1:
            raise AnalysisError(f"alarm_after must be >= 1, got {alarm_after}")
        if warmup < 1:
            raise AnalysisError(f"warmup must be >= 1, got {warmup}")
        self.alpha = alpha
        self.warn_score = warn_score
        self.alarm_score = alarm_score
        self.alarm_after = alarm_after
        self.min_std = min_std
        self.warmup = warmup
        self.event_bus = events
        self._states: Dict[Tuple[ClassKey, EdgeKey], EdgeState] = {}
        self._anomalies: List[Anomaly] = []

    # -- feeding -----------------------------------------------------------------

    def record(self, time: float, result: PathmapResult) -> List[Anomaly]:
        """Ingest one refresh; returns anomalies raised by it."""
        raised: List[Anomaly] = []
        for class_key, graph in result.graphs.items():
            for edge in graph.edges:
                key = (class_key, (edge.src, edge.dst))
                anomaly = self._observe(time, key, edge.min_delay)
                if anomaly is not None:
                    raised.append(anomaly)
        self._anomalies.extend(raised)
        for anomaly in raised:
            log = logger.warning if anomaly.status == ALARM else logger.debug
            log(
                "%s on %s->%s (%s@%s): observed %.4fs vs baseline %.4fs "
                "(score %.1f)",
                anomaly.status,
                anomaly.edge[0],
                anomaly.edge[1],
                anomaly.class_key[0],
                anomaly.class_key[1],
                anomaly.observed,
                anomaly.baseline,
                anomaly.score,
            )
            if self.event_bus is not None:
                self.event_bus.publish(
                    EVENT_ANOMALY,
                    time,
                    edge=f"{anomaly.edge[0]}->{anomaly.edge[1]}",
                    service_class=f"{anomaly.class_key[0]}@{anomaly.class_key[1]}",
                    observed=anomaly.observed,
                    baseline=anomaly.baseline,
                    score=anomaly.score,
                    status=anomaly.status,
                )
        return raised

    def subscribe_to(self, engine: "object") -> None:
        """Hook into an :class:`E2EProfEngine`, adopting its event bus
        when this detector was constructed without one."""
        if self.event_bus is None:
            self.event_bus = getattr(engine, "events", None)
        engine.subscribe(lambda now, result: self.record(now, result))

    def _observe(
        self, time: float, key: Tuple[ClassKey, EdgeKey], delay: float
    ) -> Optional[Anomaly]:
        state = self._states.get(key)
        if state is None:
            self._states[key] = EdgeState(mean=delay, variance=0.0)
            return None

        score = 0.0
        anomalous = False
        if state.samples >= self.warmup:
            std = max(state.std(), self.min_std)
            score = (delay - state.mean) / std
            anomalous = abs(score) >= self.warn_score
        state.last_score = score

        if anomalous:
            state.consecutive_deviations += 1
            escalate = (
                abs(score) >= self.alarm_score
                or state.consecutive_deviations >= self.alarm_after
            )
            new_status = ALARM if escalate else WARNING
        else:
            state.consecutive_deviations = 0
            new_status = OK

        raised: Optional[Anomaly] = None
        if anomalous and (new_status != state.status or new_status == ALARM):
            raised = Anomaly(
                time=time,
                class_key=key[0],
                edge=key[1],
                observed=delay,
                baseline=state.mean,
                score=score,
                status=new_status,
            )
        state.status = new_status

        # Baseline absorbs normal drift but not anomalous samples (a
        # poisoned baseline would mask a sustained fault).
        if not anomalous:
            delta = delay - state.mean
            state.mean += self.alpha * delta
            state.variance = (1 - self.alpha) * (
                state.variance + self.alpha * delta * delta
            )
        state.samples += 1
        return raised

    # -- queries --------------------------------------------------------------------

    def status(self, class_key: ClassKey, edge: EdgeKey) -> str:
        state = self._states.get((class_key, edge))
        return state.status if state is not None else OK

    def state(self, class_key: ClassKey, edge: EdgeKey) -> Optional[EdgeState]:
        return self._states.get((class_key, edge))

    def anomalies(self) -> List[Anomaly]:
        return list(self._anomalies)

    def active_alarms(self) -> List[Tuple[ClassKey, EdgeKey]]:
        return sorted(
            key for key, state in self._states.items() if state.status == ALARM
        )

    def healthy(self) -> bool:
        return all(state.status == OK for state in self._states.values())
