"""Steady-state confidence scoring for pathmap windows.

The pathmap algorithm assumes near-steady-state traffic inside each
analysis window: the cross-correlation between a class's reference
signal and an edge signal only locates causal delays reliably when the
arrival process is (locally) stationary. The paper concedes exactly this
(Section 4.3: pathmap "degrades under large queueing delays and drastic
traffic variation"). Instead of silently emitting paths of unknown
trustworthiness, this module grades how well one window honours the
assumption, per service class, from nothing but the class's reference
signal -- the same black-box data pathmap itself consumes.

Two violations are scored:

* **Burstiness** -- the reference signal's rate varies far more across
  the window than a Poisson process of the same mean rate would (flash
  crowds, retry storms, cache stampedes). Measured as the *excess*
  squared coefficient of variation of per-bin message counts: the
  portion of ``cv^2`` beyond the ``1/mean`` a Poisson process
  contributes on its own, so low-rate classes are not unfairly
  penalized.
* **Staleness** -- the newest refresh block carries (almost) none of the
  window's traffic (traffic troughs, a canary shifting 100% away, a
  class disappearing). Any path emitted from such a window describes
  the past, not the present.

Both combine into a score in ``[0, 1]``; ``1`` means the window looks
like the steady state the algorithm was designed for. The online engine
computes a :class:`ConfidenceReport` per service class on every refresh
and annotates :class:`~repro.core.pathmap.PathmapResult` with it --
mirroring how PR 3's transport ``DataQuality`` annotates, never censors.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Sequence

import numpy as np

from repro.errors import AnalysisError

#: Sub-bins per refresh block when deriving counts from block history:
#: enough resolution to see a burst inside one block, few enough that a
#: steady class keeps tens of messages per bin at typical rates.
DEFAULT_BINS_PER_BLOCK = 8

#: Below this score a window is considered to violate the steady-state
#: assumption (the engine publishes ``EVENT_LOW_CONFIDENCE``).
DEFAULT_LOW_CONFIDENCE = 0.5

#: Steepness of the burstiness penalty: ``stability = exp(-k * excess_cv2)``.
_BURSTINESS_STEEPNESS = 2.0

#: A newest block carrying at least this fraction of the window's mean
#: per-block traffic counts as fully current.
_RECENCY_KNEE = 0.3


@dataclasses.dataclass(frozen=True)
class ConfidenceReport:
    """How steady one service class's window looked.

    Attributes
    ----------
    score:
        Overall steady-state confidence in ``[0, 1]``
        (``stability * recency``).
    stability:
        Burstiness component: 1 for Poisson-like rate, toward 0 as the
        per-bin rate variance exceeds the Poisson expectation.
    recency:
        Staleness component: 1 when the newest refresh block carries its
        share of the window's traffic, toward 0 as the class goes quiet
        while old traffic still fills the window.
    excess_cv2:
        Squared coefficient of variation of per-bin counts, in excess of
        the ``1/mean`` a Poisson process would show.
    mean_rate:
        Mean message rate over the window (messages per second).
    newest_ratio:
        Newest block's message count over the per-block window mean.
    bins:
        Number of count bins the verdict was computed from.
    """

    score: float
    stability: float
    recency: float
    excess_cv2: float
    mean_rate: float
    newest_ratio: float
    bins: int

    @property
    def ok(self) -> bool:
        """True when the window honours the steady-state assumption."""
        return self.score >= DEFAULT_LOW_CONFIDENCE

    def to_dict(self) -> Dict[str, object]:
        return {
            "score": self.score,
            "stability": self.stability,
            "recency": self.recency,
            "excess_cv2": self.excess_cv2,
            "mean_rate": self.mean_rate,
            "newest_ratio": self.newest_ratio,
            "bins": self.bins,
        }


#: Confidence of a window with no signal at all: no traffic means no
#: basis for any path claim, so the score is zero on every axis.
SILENT_REPORT = ConfidenceReport(
    score=0.0,
    stability=0.0,
    recency=0.0,
    excess_cv2=0.0,
    mean_rate=0.0,
    newest_ratio=0.0,
    bins=0,
)


def block_bin_counts(
    blocks: Sequence[object],
    bins_per_block: int = DEFAULT_BINS_PER_BLOCK,
    mass_per_message: float = 1.0,
) -> np.ndarray:
    """Per-sub-bin message counts across a window of density blocks.

    Each block (a :class:`~repro.core.rle.RunLengthSeries` or anything
    with ``to_sparse()``) is split into ``bins_per_block`` equal spans;
    the density values falling in each span are summed and divided by
    ``mass_per_message`` -- the total density mass one message deposits.
    The boxcar density function adds 1 to every quantum of one sampling
    window per message, so a message's mass is ``omega / tau``
    (``config.sampling_quanta``); with that passed in, a bin's value
    approximates the number of messages observed in it.
    """
    if bins_per_block < 1:
        raise AnalysisError(
            f"bins_per_block must be >= 1, got {bins_per_block}"
        )
    if mass_per_message <= 0:
        raise AnalysisError(
            f"mass_per_message must be positive, got {mass_per_message}"
        )
    per_block = []
    for block in blocks:
        sparse = block.to_sparse() if hasattr(block, "to_sparse") else block
        length = max(int(sparse.length), 1)
        counts = np.zeros(bins_per_block, dtype=np.float64)
        if sparse.indices.size:
            offsets = sparse.indices.astype(np.int64) - int(sparse.start)
            bins = np.clip(
                offsets * bins_per_block // length, 0, bins_per_block - 1
            )
            counts = np.bincount(
                bins, weights=sparse.values, minlength=bins_per_block
            ).astype(np.float64)
        per_block.append(counts)
    if not per_block:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(per_block) / mass_per_message


def confidence_from_counts(
    counts: np.ndarray, bins_per_block: int = DEFAULT_BINS_PER_BLOCK, bin_seconds: float = 0.0
) -> ConfidenceReport:
    """Grade one window's steadiness from per-bin message counts.

    ``counts`` is the flat bin-count array of :func:`block_bin_counts`
    (oldest block first). ``bin_seconds`` (optional) converts the mean
    count into a rate for the report; 0 reports a rate of 0.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = float(counts.sum())
    if counts.size == 0 or total <= 0.0:
        return SILENT_REPORT
    mean = total / counts.size
    # Burstiness: cv^2 of the bin counts beyond the 1/mean a Poisson
    # process of the same mean contributes by chance alone.
    cv2 = float(counts.var()) / (mean * mean)
    excess = max(0.0, cv2 - 1.0 / mean)
    stability = math.exp(-_BURSTINESS_STEEPNESS * excess)
    # Staleness: compare the newest block's traffic to the per-block
    # window mean. (The newest block is the trailing bins_per_block bins.)
    tail = counts[-bins_per_block:] if counts.size >= bins_per_block else counts
    newest = float(tail.sum())
    per_block_mean = total * tail.size / counts.size
    newest_ratio = newest / per_block_mean if per_block_mean > 0 else 0.0
    recency = min(1.0, newest_ratio / _RECENCY_KNEE)
    rate = mean / bin_seconds if bin_seconds > 0 else 0.0
    return ConfidenceReport(
        score=stability * recency,
        stability=stability,
        recency=recency,
        excess_cv2=excess,
        mean_rate=rate,
        newest_ratio=newest_ratio,
        bins=int(counts.size),
    )


def window_confidence(
    blocks: Sequence[object],
    bins_per_block: int = DEFAULT_BINS_PER_BLOCK,
    quantum: float = 0.0,
    mass_per_message: float = 1.0,
) -> ConfidenceReport:
    """Confidence of one class's window straight from its block history.

    ``quantum`` (seconds per sample) sizes the rate estimate; pass the
    analysis config's quantum when available, and its
    ``sampling_quanta`` as ``mass_per_message`` (see
    :func:`block_bin_counts`).
    """
    counts = block_bin_counts(blocks, bins_per_block, mass_per_message)
    bin_seconds = 0.0
    if quantum > 0 and blocks:
        first = blocks[0]
        length = getattr(first, "length", 0)
        bin_seconds = (length / bins_per_block) * quantum if length else 0.0
    return confidence_from_counts(counts, bins_per_block, bin_seconds)


def timestamp_confidence(
    timestamps: Sequence[float],
    start: float,
    end: float,
    num_blocks: int,
    bins_per_block: int = DEFAULT_BINS_PER_BLOCK,
) -> ConfidenceReport:
    """Confidence of one class's window from raw message timestamps.

    The offline twin of :func:`window_confidence`: ``[start, end)`` is
    split into ``num_blocks * bins_per_block`` equal bins (num_blocks
    mirroring the online engine's refresh blocks, so the staleness axis
    means the same thing in both paths).
    """
    if end <= start:
        raise AnalysisError(f"empty confidence window [{start}, {end})")
    if num_blocks < 1:
        raise AnalysisError(f"num_blocks must be >= 1, got {num_blocks}")
    bins = num_blocks * bins_per_block
    stamps = np.asarray(list(timestamps), dtype=np.float64)
    stamps = stamps[(stamps >= start) & (stamps < end)]
    counts, _ = np.histogram(stamps, bins=bins, range=(start, end))
    bin_seconds = (end - start) / bins
    return confidence_from_counts(
        counts.astype(np.float64), bins_per_block, bin_seconds
    )
