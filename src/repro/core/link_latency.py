"""Network-vs-processing delay decomposition (paper Sections 1, 3.1, 3.8).

"E2EProf's cross-correlation analyses can capture ... the contributions
of specific application-level services and network communications to such
latencies."

When an edge is captured at *both* endpoints (all server-to-server links
are), correlating the two sides yields a spike at the link's one-way
latency (plus any clock skew -- Section 3.8's estimator with the roles
reversed; with NTP-synced clocks the skew term is negligible). Subtracting
measured link latencies from pathmap's node delays separates computation
from communication -- the decomposition the paper's figures gloss over
with "the sum of the computation delay at the source node and of the
communication delay".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config import PathmapConfig
from repro.core.clock_skew import estimate_clock_skew
from repro.core.service_graph import NodeId, ServiceGraph
from repro.errors import AnalysisError
from repro.tracing.collector import TraceCollector

EdgeKey = Tuple[NodeId, NodeId]


def estimate_link_latency(
    collector: TraceCollector,
    src: NodeId,
    dst: NodeId,
    config: PathmapConfig,
    end_time: float,
    start_time: Optional[float] = None,
) -> float:
    """One-way latency of the link ``src -> dst`` from two-sided captures.

    Assumes synchronized clocks (NTP; Section 3.8): the correlation spike
    between the source-side and destination-side series of the same
    packets sits at the network delay. Raises when the edge was captured
    on one side only (links into clients cannot be measured).
    """
    estimate = estimate_clock_skew(
        collector, src, dst, config,
        end_time=end_time, start_time=start_time, network_delay=0.0,
    )
    if estimate.raw_lag < 0:
        raise AnalysisError(
            f"negative apparent latency on {src!r}->{dst!r} "
            f"({estimate.raw_lag * 1e3:.2f} ms): clocks are skewed; "
            "estimate and correct the skew first (Section 3.8)"
        )
    return estimate.raw_lag


def measure_link_latencies(
    collector: TraceCollector,
    graph: ServiceGraph,
    config: PathmapConfig,
    end_time: float,
    start_time: Optional[float] = None,
) -> Dict[EdgeKey, float]:
    """Link latencies for every measurable edge of a service graph.

    Edges touching the client (captured on one side only) are skipped.
    """
    out: Dict[EdgeKey, float] = {}
    for edge in graph.edges:
        if edge.src == graph.client or edge.dst == graph.client:
            continue
        try:
            out[(edge.src, edge.dst)] = estimate_link_latency(
                collector, edge.src, edge.dst, config, end_time, start_time
            )
        except AnalysisError:
            continue  # single-sided or skewed edge: leave unmeasured
    return out


def decompose_node_delays(
    graph: ServiceGraph,
    link_latencies: Dict[EdgeKey, float],
) -> Dict[NodeId, Dict[str, float]]:
    """Split each node's attributed delay into processing vs network.

    Pathmap's ``node_delay`` is (smallest outgoing cumulative) minus
    (smallest incoming cumulative): the node's processing **plus** the
    latency of the outgoing link the spike was measured on. Subtracting
    the measured link latency isolates processing.

    Returns ``{node: {"total": ..., "network": ..., "processing": ...}}``
    for nodes whose outgoing link latency is known.
    """
    out: Dict[NodeId, Dict[str, float]] = {}
    for node in graph.nodes:
        total = graph.node_delay(node)
        if total is None:
            continue
        # The outgoing edge that defined the node delay: smallest cumulative.
        outgoing = [
            e for e in graph.edges if e.src == node and e.dst != graph.client
        ]
        if not outgoing:
            continue
        defining = min(outgoing, key=lambda e: e.min_delay)
        link = link_latencies.get((defining.src, defining.dst))
        if link is None:
            continue
        out[node] = {
            "total": total,
            "network": link,
            "processing": max(0.0, total - link),
        }
    return out
