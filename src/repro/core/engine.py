"""The online E2EProf engine (paper Sections 3.3-3.6).

This is the analyzer node: every refresh interval ``dW`` it pulls one
RLE-encoded block per edge from the per-node tracers (the streamed wire
format of Section 3.6), feeds the blocks into cached
:class:`~repro.core.incremental.IncrementalCorrelator` instances -- one
per (service class, edge) pair -- and re-runs the pathmap DFS using those
cached correlations. Only the newest ``dW`` of trace is ever correlated,
which is what makes the per-refresh cost constant in ``W`` (the flat
'incremental' curve of Figure 9).

Subscribers receive every fresh :class:`~repro.core.pathmap.PathmapResult`
-- the paper's long-term vision of E2EProf as "a basic service,
'pluggable' into any distributed system" whose subscribers "receive
real-time information about their service paths".

Block timing: blocks are flushed one sampling window behind real time so
every message contributing to a block's boxcar has already been observed;
the analysis therefore lags reality by ``omega`` (50 ms at RUBiS
settings), which is negligible against ``dW``.
"""

from __future__ import annotations

import concurrent.futures
import logging
import threading
import time
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.config import PathmapConfig, TransportConfig
from repro.core.confidence import (
    DEFAULT_LOW_CONFIDENCE,
    ConfidenceReport,
    window_confidence,
)
from repro.core.correlation import SpectrumCache, fft_length
from repro.core.incremental import IncrementalCorrelator, block_is_quiet
from repro.lake.summaries import BlockSummary
from repro.core.pathmap import Pathmap, PathmapResult, PathmapStats, class_pairs
from repro.core.rle import RunLengthSeries
from repro.core.stages import HostWindow, PipelineCore
from repro.errors import AnalysisError
from repro.obs.events import (
    EVENT_DEGRADED_REFRESH,
    EVENT_LOW_CONFIDENCE,
    EVENT_SHARD_LOST,
    EVENT_SUBSCRIBER_ERROR,
    EVENT_TRACER_STALE,
    EVENT_TRANSPORT_GAP,
    EventBus,
)
from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder, RefreshFrame
from repro.obs.instruments import DEFAULT_STAGE_BUCKETS
from repro.obs.ledger import (
    CORRELATION_KERNELS,
    PIPELINE_STAGES,
    STAGE_CORRELATE,
    STAGE_DFS,
    STAGE_INGEST,
    STAGE_PUBLISH,
    STAGE_SPILL,
    LedgerRecorder,
    RefreshLedger,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.sample import MetricsSample
from repro.obs.spans import SpanTracer
from repro.simulation.des import PeriodicTask
from repro.simulation.topology import Topology
from repro.tracing.collector import TraceCollector
from repro.tracing.records import NodeId
from repro.tracing.transport import (
    QUALITY_DEGRADED,
    QUALITY_FRESH,
    QUALITY_STALE,
    TRACER_DEAD,
    TRACER_LAGGING,
    TRACER_LIVE,
    DataQuality,
    FaultyChannel,
    FRESH_QUALITY,
    TransportLink,
    TransportReceiver,
    overall_quality,
)
from repro.tracing.wire import BlockFrame, decode_block, encode_block

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lake import TraceLake

logger = logging.getLogger(__name__)

EdgeKey = Tuple[NodeId, NodeId]
RefKey = Tuple[NodeId, NodeId]
Subscriber = Callable[[float, PathmapResult], None]
MetricsSubscriber = Callable[[float, PathmapResult, MetricsSample], None]


class E2EProfEngine(PipelineCore):
    """Online sliding-window service-path analysis over streamed blocks.

    The refresh is an explicit four-stage pipeline -- **ingest ->
    correlate -> DFS -> publish**, the exact stage names of the refresh
    ledger -- and the middle stages run in one of three execution modes
    (``parallel``), every one of which produces bit-identical results:

    ``"serial"``
        Everything on the calling thread.
    ``"threads"``
        Correlator append groups and the per-class DFS fan out over a
        ``workers``-wide thread pool (GIL-bound outside the numpy
        kernels).
    ``"processes"``
        Service classes are partitioned across ``shards`` worker
        *processes* by a consistent-hash shard map; fresh blocks ship
        zero-copy via shared memory and per-shard partial pathmaps merge
        deterministically (:mod:`repro.core.shards`).
    """

    def __init__(
        self,
        config: PathmapConfig,
        clients: Optional[Set[NodeId]] = None,
        wire_fidelity: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        events: Optional[EventBus] = None,
        flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
        transport: Optional[TransportConfig] = None,
        channel_factory: Optional[Callable[[NodeId], FaultyChannel]] = None,
        workers: Optional[int] = None,
        batched: bool = True,
        capture_sink: Optional[TraceCollector] = None,
        lake: Optional["TraceLake"] = None,
        adaptive: bool = False,
        ledger: bool = True,
        measured_dispatch: Optional[bool] = None,
        fft_dispatch: Optional[str] = None,
        parallel: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> None:
        self.config = config
        self._clients: Set[NodeId] = set(clients or ())
        #: Worker threads for refresh work (correlator append groups + the
        #: per-class pathmap DFS). Defaults to ``config.workers``; results
        #: are bit-identical to serial at any setting.
        self.workers = int(workers) if workers is not None else config.workers
        if self.workers < 1:
            raise AnalysisError(f"workers must be >= 1, got {self.workers}")
        #: Execution mode of the correlate/DFS stages (see class
        #: docstring). ``"auto"`` resolves to threads when ``workers > 1``
        #: and serial otherwise, preserving the pre-``parallel`` behavior.
        self.parallel = parallel if parallel is not None else config.parallel
        if self.parallel == "auto":
            self.parallel = "threads" if self.workers > 1 else "serial"
        if self.parallel not in ("serial", "threads", "processes"):
            raise AnalysisError(
                "parallel must be one of serial/threads/processes, "
                f"got {self.parallel!r}"
            )
        #: Worker process count for ``parallel="processes"``. Defaults to
        #: ``config.shards``, falling back to ``workers``.
        self.shards = int(shards) if shards is not None else (config.shards or self.workers)
        if self.shards < 1:
            raise AnalysisError(f"shards must be >= 1, got {self.shards}")
        # Thread fan-out inside this process: only the threads mode
        # shards refresh work across the pool.
        self._thread_workers = self.workers if self.parallel == "threads" else 1
        # Parent-side shard fleet (processes mode; created at attach).
        self._sharded = None
        # (shard, owned class pairs) dropped from the latest refresh
        # because the shard's worker died mid-refresh.
        self._lost_shards: List[Tuple[int, List[RefKey]]] = []
        # The latest refresh's class pairs, in canonical analysis order,
        # and their per-shard partition (processes mode bookkeeping).
        self._dispatch_pair_order: List[RefKey] = []
        self._dispatch_pairs: Dict[int, List[RefKey]] = {}
        #: When True (default), correlator updates use reference-grouped
        #: :func:`~repro.core.correlation.batch_lag_products` kernels with
        #: quiet-edge skipping and correlation memoization. False restores
        #: the legacy one-kernel-per-pair refresh (the benchmark baseline).
        self.batched = bool(batched)
        #: Always-on refresh cost ledger (:mod:`repro.obs.ledger`): one
        #: :class:`RefreshLedger` per refresh with per-stage wall times
        #: and per-kernel measured costs, attached to every result.
        #: ``ledger=False`` disables the recording (the overhead
        #: benchmark's baseline); results then carry zero ledgers.
        self.ledger = LedgerRecorder(enabled=ledger)
        #: The most recent refresh's ledger (None before the first).
        self.latest_ledger: Optional[RefreshLedger] = None
        #: When True, sparse-vs-RLE kernel dispatch compares predicted
        #: kernel times from the ledger's measured per-unit cost EWMAs
        #: instead of the modeled constant. Output is bit-identical
        #: either way. Defaults to ``config.measured_dispatch``.
        self.measured_dispatch = (
            bool(measured_dispatch)
            if measured_dispatch is not None
            else config.measured_dispatch
        )
        #: Dense-regime FFT batch kernel routing (``"auto"`` / ``"off"``
        #: / ``"force"``; see :attr:`PathmapConfig.fft_dispatch`).
        #: Defaults to ``config.fft_dispatch``.
        self.fft_dispatch = (
            fft_dispatch if fft_dispatch is not None else config.fft_dispatch
        )
        if self.fft_dispatch not in ("auto", "off", "force"):
            raise AnalysisError(
                "fft_dispatch must be one of auto/off/force, "
                f"got {self.fft_dispatch!r}"
            )
        # Cross-refresh cache of block FFT spectra (the overlap-add
        # increment: only the newest dW block needs a fresh transform).
        self._spectra = SpectrumCache()
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        # Guards the plain-int per-refresh tallies below when provider
        # callbacks run on pool threads (workers > 1).
        self._tally_lock = threading.Lock()
        #: When True, every streamed block is round-tripped through the
        #: binary wire format (tracing.wire) before analysis -- proving
        #: the bytes actually sent over the network carry everything the
        #: analysis needs (values pass through float32).
        self.wire_fidelity = wire_fidelity
        self.wire_bytes_received = 0
        #: Self-observability registry. Defaults to a fresh **disabled**
        #: registry, so the uninstrumented cost model of Figure 9 holds
        #: unless an operator opts in (pass an enabled registry, or call
        #: ``engine.metrics.enable()`` before ``attach``).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Span tracer for the refresh pipeline. Defaults to a fresh
        #: **disabled** tracer (same opt-in contract as ``metrics``).
        self.tracer = tracer if tracer is not None else SpanTracer()
        #: Diagnostic event bus; change/anomaly/SLA/scheduler subscribers
        #: attached via their ``subscribe_to(engine)`` publish here.
        self.events = events if events is not None else EventBus(tracer=self.tracer)
        #: Always-on flight recorder of the last ``flight_capacity``
        #: refreshes (spans + events + per-refresh sample).
        self.flight = FlightRecorder(capacity=flight_capacity)
        self._num_blocks = max(1, round(config.window / config.refresh_interval))
        self._block_quanta = config.refresh_quanta
        # Aligned per-edge block history (destination-side, RLE).
        self._blocks: Dict[EdgeKey, Deque[RunLengthSeries]] = {}
        self._refreshes = 0
        self._base_quantum: Optional[int] = None
        self._correlators: Dict[Tuple[RefKey, EdgeKey], IncrementalCorrelator] = {}
        self._subscribers: List[Subscriber] = []
        self._metrics_subscribers: List[MetricsSubscriber] = []
        self._pathmap = Pathmap(
            config,
            correlation_provider=self._provide_correlation,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.latest_result: Optional[PathmapResult] = None
        self.latest_refresh_time: Optional[float] = None
        #: Wall-clock seconds the most recent refresh took (block ingest +
        #: incremental correlator updates + pathmap DFS). The Figure 9
        #: 'incremental' curve measures exactly this.
        self.last_refresh_seconds: float = 0.0
        #: MetricsSample of the most recent refresh (None before the first).
        self.latest_sample: Optional[MetricsSample] = None
        self._topology: Optional[Topology] = None
        self._task: Optional[PeriodicTask] = None
        # Per-refresh correlator-cache tallies (plain ints: counted even
        # with the registry disabled, so MetricsSamples are always real).
        self._refresh_cache_hits = 0
        self._refresh_cache_misses = 0
        # Per-refresh optimization tallies: pair products skipped on quiet
        # blocks, and correlations served from the dirty-flag result cache.
        self._refresh_skips = 0
        self._refresh_corr_cache_hits = 0
        # Per-refresh adaptivity tallies (satellite of the cost ledger):
        # classes below the confidence threshold this refresh, and the
        # rewindow total already reported through a MetricsSample.
        self._refresh_low_confidence = 0
        self._rewindows_sampled = 0
        #: Subscriber callbacks that raised and were isolated (all time,
        #: counted regardless of the registry switch).
        self.subscriber_errors = 0
        m = self.metrics
        self._m_refresh = m.histogram(
            "engine_refresh_seconds",
            "Wall-clock seconds per engine refresh (ingest + correlators + DFS)",
        )
        self._m_pathmap = m.histogram(
            "engine_pathmap_seconds", "Seconds of each refresh spent in the pathmap DFS"
        )
        self._m_fanout = m.histogram(
            "engine_fanout_seconds", "Seconds spent fanning each result out to subscribers"
        )
        self._m_batch = m.histogram(
            "correlator_batch_seconds",
            "Seconds per refresh spent in the reference-grouped batch append",
        )
        self._m_stage = {
            stage: m.histogram(
                "engine_stage_seconds",
                "Wall-clock seconds per pipeline stage per refresh "
                "(ingest / correlate / dfs / publish, from the refresh ledger)",
                labels={"stage": stage},
                buckets=DEFAULT_STAGE_BUCKETS,
            )
            for stage in PIPELINE_STAGES
        }
        self._m_kernel_rows = {
            kernel: m.counter(
                "ledger_kernel_rows_total",
                "Correlation rows processed per kernel (from the refresh ledger)",
                labels={"kernel": kernel},
            )
            for kernel in CORRELATION_KERNELS
        }
        self._m_kernel_seconds = {
            kernel: m.counter(
                "ledger_kernel_seconds_total",
                "Wall-clock seconds spent per kernel (from the refresh ledger)",
                labels={"kernel": kernel},
            )
            for kernel in CORRELATION_KERNELS
        }
        self._m_kernel_ns = {
            kernel: m.gauge(
                "ledger_kernel_ns_per_row",
                "EWMA of measured nanoseconds per row per kernel",
                labels={"kernel": kernel},
            )
            for kernel in CORRELATION_KERNELS
        }
        self._m_refreshes = m.counter("engine_refreshes_total", "Engine refreshes run")
        self._m_blocks = m.counter(
            "engine_blocks_ingested_total", "Streamed RLE blocks pulled from tracers"
        )
        self._m_wire_bytes = m.counter(
            "engine_wire_bytes_total", "Wire-format bytes received (wire_fidelity mode)"
        )
        self._m_cache_hits = m.counter(
            "engine_correlator_cache_hits_total",
            "Correlations served by an existing incremental correlator",
        )
        self._m_cache_misses = m.counter(
            "engine_correlator_cache_misses_total",
            "Correlations that had to build a correlator from block history",
        )
        self._m_correlators = m.gauge(
            "engine_correlators", "Live incremental correlators"
        )
        self._m_edges = m.gauge(
            "engine_tracked_edges", "Edges with block history in the current window"
        )
        self._m_subscriber_errors = m.counter(
            "obs_subscriber_errors_total",
            "Subscriber callbacks that raised and were isolated during fan-out",
        )
        #: Optional analyzer-side capture archive. When set, every
        #: tracer's raw per-edge timestamps are drained each refresh as
        #: columnar batches and forwarded here -- through the transport's
        #: packed timestamp frames when transport is on, directly
        #: otherwise -- without materializing per-record objects.
        self.capture_sink = capture_sink
        self._refresh_capture_batches = 0
        #: Optional trace lake (:class:`~repro.lake.TraceLake`). When set,
        #: the capture sink's evictions spill to it (write-behind), the
        #: manifest is checkpointed once per refresh under the ledger's
        #: ``spill`` stage, and correlator evictions persist materialized
        #: per-(class, edge) correlation summaries for ``repro history``.
        self.lake = lake
        if lake is not None and capture_sink is not None and capture_sink.lake is None:
            capture_sink.lake = lake
        # Summaries ride the in-process correlators' eviction hooks;
        # processes-mode correlators live in shard workers without lake
        # access, so summary capture is serial/threads-only (the raw
        # spill path is mode-independent).
        self._lake_summaries = lake is not None and self.parallel != "processes"
        self._lake_segments_synced = 0 if lake is None else lake.segments_written
        #: Fault-tolerant transport (None = legacy direct pull). When set,
        #: every block travels tracer -> TransportLink -> channel ->
        #: TransportReceiver, gaining epoch/sequence framing, reordering
        #: tolerance, liveness watching and per-edge DataQuality.
        self.transport = transport
        self._channel_factory = channel_factory
        self._receiver: Optional[TransportReceiver] = None
        self._links: Dict[NodeId, TransportLink] = {}
        #: Per-tracer channels (fault injectors or perfect pass-throughs);
        #: chaos tests reach in here to toggle fault rates mid-run.
        self.transport_channels: Dict[NodeId, FaultyChannel] = {}
        # Block starts known missing per edge (declared gaps + current-
        # round absences), pruned as the window slides past them.
        self._gap_blocks: Dict[EdgeKey, Set[int]] = {}
        self._tracer_states: Dict[NodeId, str] = {}
        self._transport_totals: Dict[str, int] = {}
        #: Overall data-quality score of the latest refresh (1.0 = every
        #: edge signal complete and live; always 1.0 without transport).
        self.quality_score: float = 1.0
        #: Per-edge DataQuality of the latest refresh (transport only).
        self.latest_edge_quality: Dict[EdgeKey, DataQuality] = {}
        if transport is not None:
            self._receiver = TransportReceiver(
                transport, config.refresh_interval, metrics=m
            )
        self._m_quality = m.gauge(
            "engine_quality_score",
            "Overall data-quality score of the latest refresh (1 = fresh)",
        )
        self._m_live_tracers = m.gauge(
            "transport_live_tracers", "Tracers currently heard within the staleness threshold"
        )
        self._m_stale_tracers = m.gauge(
            "transport_stale_tracers", "Tracers currently lagging or dead"
        )
        self._m_t_gaps = m.counter(
            "transport_gap_blocks_total", "Blocks declared lost on transport streams"
        )
        self._m_t_duplicates = m.counter(
            "transport_duplicate_frames_total", "Duplicate transport frames dropped"
        )
        self._m_t_reordered = m.counter(
            "transport_reordered_frames_total", "Transport frames that arrived out of order"
        )
        self._m_t_late = m.counter(
            "transport_late_blocks_total",
            "Late blocks recovered into the window after their gap was declared",
        )
        self._m_t_stale_epoch = m.counter(
            "transport_stale_epoch_frames_total",
            "Pre-restart frames rejected by epoch checks",
        )
        #: When True, every refresh also derives per-class tuned-parameter
        #: recommendations (:mod:`repro.core.autotune`) from the observed
        #: reference-signal statistics into ``latest_recommendations``.
        #: The running analysis keeps its own parameters either way --
        #: blocks are quantized at ingest, so a resolution change needs a
        #: re-analysis, not a mid-flight swap.
        self.adaptive = bool(adaptive)
        #: Per-class steady-state confidence of the latest refresh.
        self.latest_confidence: Dict[RefKey, ConfidenceReport] = {}
        #: Overall (minimum per-class) confidence of the latest refresh.
        self.confidence_score: float = 1.0
        #: Per-class tuned-config recommendations (``adaptive=True`` only).
        self.latest_recommendations: Dict[RefKey, PathmapConfig] = {}
        #: History-blanking re-windows performed (see :meth:`rewindow`).
        self.rewindows = 0
        self._m_confidence = m.gauge(
            "engine_confidence_score",
            "Steady-state confidence of the latest refresh (1 = steady)",
        )
        self._m_low_confidence = m.counter(
            "engine_low_confidence_total",
            "Refreshes with at least one class below the confidence threshold",
        )
        self._m_rewindows = m.counter(
            "engine_rewindows_total",
            "Change-point-triggered history re-windows performed",
        )

    # -- wiring ---------------------------------------------------------------------

    def subscribe(self, callback: Subscriber) -> None:
        """Receive ``(time, PathmapResult)`` after every refresh."""
        self._subscribers.append(callback)

    def subscribe_metrics(self, callback: MetricsSubscriber) -> None:
        """Receive ``(time, PathmapResult, MetricsSample)`` after every
        refresh -- the engine's own health signals alongside its analysis
        (see :mod:`repro.obs.sample`). Works with the registry disabled."""
        self._metrics_subscribers.append(callback)

    def attach(self, topology: Topology, start_at: Optional[float] = None) -> None:
        """Drive refreshes from a simulated topology's clock.

        The first refresh fires one ``dW`` after ``start_at`` (default:
        attach time) and every ``dW`` thereafter.
        """
        if self._topology is not None:
            raise AnalysisError("engine is already attached")
        self._topology = topology
        self._clients |= topology.collector.clients
        if self.metrics.enabled:
            # Only bound when observing is on: tracer.observe runs once per
            # simulated packet, so unbound tracers pay nothing at all.
            for tracer in topology.fabric.tracers.values():
                tracer.bind_metrics(self.metrics)
        if self.capture_sink is not None:
            for tracer in topology.fabric.tracers.values():
                tracer.enable_batch_streaming()
        begin = start_at if start_at is not None else topology.sim.now
        tau = self.config.quantum
        # Anchor block boundaries one sampling window behind the wall
        # clock so flushed blocks are complete (see module docstring).
        self._base_quantum = int(round(begin / tau)) - self.config.sampling_quanta
        if self._thread_workers > 1 and self._pool is None:
            # One pool for the engine's whole attached lifetime: spawning
            # threads per refresh would dwarf the work they shard.
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self._thread_workers, thread_name_prefix="e2eprof-refresh"
            )
        if self.parallel == "processes" and self._sharded is None:
            # The fleet manager spawns/respawns workers lazily at the top
            # of each refresh's correlate stage (ensure_workers).
            from repro.core.shards import ShardedAnalysis

            self._sharded = ShardedAnalysis(self, self.shards)
        self._task = PeriodicTask(
            topology.sim,
            self.config.refresh_interval,
            self._on_tick,
            start_at=begin + self.config.refresh_interval,
        )

    def detach(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self._topology = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    def close(self) -> None:
        """Release every runtime resource the engine holds: the refresh
        task, the thread pool, the shard worker processes and all
        shared-memory segments. Idempotent; safe to call whether or not
        the engine was ever attached (``detach`` already is both, this
        alias just names the teardown contract explicitly)."""
        self.detach()
        if self.lake is not None:
            self.lake.flush()

    def reshard(self, shards: int) -> None:
        """Rebalance the process fleet to ``shards`` workers at the next
        refresh boundary (``parallel="processes"`` only; a no-op count
        change otherwise). Consistent hashing moves only ~1/N of the
        service classes per step, and moved classes rebuild their
        correlators bit-identically from mirrored block history."""
        if shards < 1:
            raise AnalysisError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)
        if self._sharded is not None:
            self._sharded.reshard(self.shards)

    # -- refresh ------------------------------------------------------------------------

    def _on_tick(self, now: float) -> None:
        self.refresh(now)

    def refresh(self, now: float) -> PathmapResult:
        """Pull one block per edge, update correlators, recompute graphs.

        The whole refresh runs under an ``engine.refresh`` root span
        (ingest -> correlator updates -> pathmap DFS -> fan-out children
        when the tracer is enabled), and every refresh -- including one
        that raises -- leaves a frame in the flight recorder.
        """
        sequence = self._refreshes
        events_mark = time.perf_counter()
        try:
            with self.tracer.span("engine.refresh", refresh=sequence, time=now):
                result = self._do_refresh(now)
        finally:
            self._record_flight_frame(now, sequence, events_mark)
        return result

    def _do_refresh(self, now: float) -> PathmapResult:
        """One refresh as the explicit pipeline: ``_stage_ingest`` ->
        ``_stage_correlate`` -> ``_stage_dfs`` -> ``_stage_publish``
        (stage boundaries match the refresh ledger's samples)."""
        started = time.perf_counter()
        if self._topology is None:
            raise AnalysisError("engine is not attached to a topology")
        if self._base_quantum is None:
            raise AnalysisError("engine was never attached")
        # Clients may be added while running (new service classes).
        self._clients |= self._topology.collector.clients
        block_start = self._base_quantum + self._refreshes * self._block_quanta
        self._refresh_cache_hits = 0
        self._refresh_cache_misses = 0
        self._refresh_skips = 0
        self._refresh_corr_cache_hits = 0
        self._refresh_capture_batches = 0
        self._refresh_low_confidence = 0
        self._lost_shards = []
        self.ledger.begin_refresh()
        wire_bytes_before = self.wire_bytes_received
        fresh, late_frames = self._stage_ingest(now, block_start)
        self._stage_correlate(fresh, late_frames, block_start, now)
        result, pathmap_seconds = self._stage_dfs(now)
        result = self._stage_publish(
            result,
            now,
            block_start,
            started,
            pathmap_seconds,
            len(fresh),
            wire_bytes_before,
        )
        if self.lake is not None:
            self._maintain_lake()
        return result

    def _maintain_lake(self) -> None:
        """Per-refresh trace-lake maintenance: force the capture sink's
        retention eviction (so spills track the refresh cadence, not just
        the ingest stride), checkpoint pending summaries + the manifest,
        and account the accumulated spill time as the ledger's optional
        ``spill`` stage. Runs after publish: the stage lands in the
        just-completed ledger in place (same contract as the post-fanout
        publish sample)."""
        lake = self.lake
        if self.capture_sink is not None and self.capture_sink.retention is not None:
            self.capture_sink.evict_expired()
        lake.checkpoint()
        segments = lake.segments_written - self._lake_segments_synced
        self._lake_segments_synced = lake.segments_written
        self.ledger.record_stage(STAGE_SPILL, lake.drain_spill_seconds(), segments)

    def _summary_hook(self, ref_key, edge_key):
        """Correlator eviction hook persisting materialized summaries.

        Returns None unless a lake is attached and the correlators live
        in this process; otherwise a closure that turns each evicted
        ``(reference block, signal block, summed pair-product row)`` into
        a :class:`~repro.lake.BlockSummary`, grabbing the reference
        block's cached FFT spectrum when the dense kernel left one warm.
        """
        if not self._lake_summaries:
            return None
        lake = self.lake
        client, root = ref_key
        src, dst = edge_key
        size = fft_length(2 * self._block_quanta - 1)

        def hook(old_x, old_y, contribution):
            spectrum = self._spectra.peek(old_x, size)
            lake.record_summary(
                BlockSummary(
                    client=client,
                    root=root,
                    src=src,
                    dst=dst,
                    block_start=int(old_y.start),
                    block_length=int(old_y.length),
                    quantum=float(old_y.quantum),
                    x_total=float(old_x.total()),
                    x_energy=float(old_x.energy()),
                    y_total=float(old_y.total()),
                    y_energy=float(old_y.energy()),
                    lag_products=contribution,
                    spectrum=spectrum,
                    spectrum_size=size if spectrum is not None else None,
                )
            )

        return hook

    def _stage_ingest(
        self, now: float, block_start: int
    ) -> Tuple[Dict[EdgeKey, RunLengthSeries], List[BlockFrame]]:
        """**Stage 1 -- ingest**: pull one block per edge from every
        tracer (directly, or through the fault-tolerant transport) and
        drain capture batches. Returns the fresh blocks plus any
        re-sequenced late frames for history patching."""
        wire_metrics = self.metrics if self.metrics.enabled else None
        fresh: Dict[EdgeKey, RunLengthSeries] = {}
        late_frames: List[BlockFrame] = []
        ingest_started = time.perf_counter()
        with self.tracer.span("engine.ingest") as ingest_span:
            if self._receiver is not None:
                late_frames = self._transport_ingest(fresh, block_start, now)
            else:
                for node_id, tracer in self._topology.fabric.tracers.items():
                    with self.tracer.span("tracer.flush", node=node_id):
                        for edge, block in tracer.flush_block(
                            self.config, block_start, self._block_quanta
                        ).items():
                            src, dst = edge
                            # Destination-side capture wins (Algorithm 1);
                            # source-side only for edges into untraced clients.
                            if node_id == dst or (dst in self._clients and node_id == src):
                                if self.wire_fidelity:
                                    payload = encode_block(block, metrics=wire_metrics)
                                    self.wire_bytes_received += len(payload)
                                    block = decode_block(payload, metrics=wire_metrics)
                                fresh[edge] = block
                    if self.capture_sink is not None:
                        # Direct (no-transport) batch forwarding: the
                        # tracer's raw captures reach the archive as
                        # columnar writes, never as per-record objects.
                        for (src, dst), stamps in tracer.drain_batches().items():
                            self.capture_sink.ingest_batch(
                                src, dst, stamps,
                                observed_at_destination=(node_id == dst),
                            )
                            self._refresh_capture_batches += 1
            ingest_span.set_attribute("blocks", len(fresh))
        self.ledger.record_stage(
            STAGE_INGEST, time.perf_counter() - ingest_started, len(fresh)
        )
        return fresh, late_frames

    def _stage_correlate(
        self,
        fresh: Dict[EdgeKey, RunLengthSeries],
        late_frames: List[BlockFrame],
        block_start: int,
        now: float,
    ) -> None:
        """**Stage 2 -- correlate**: store/patch block history and bring
        every incremental correlator up to date.

        Serial and thread modes append in-process (the thread pool fans
        out per reference group). Processes mode first heals the fleet
        -- dead shards respawn from the *pre-store* mirrored history, so
        they ingest this refresh like everyone else -- then stores
        locally (the parent's mirror feeds confidence/quality grading
        and future respawns) and ships the refresh to every worker,
        which appends and analyzes concurrently; their timings land in
        this stage's ledger sample when collected."""
        correlate_started = time.perf_counter()
        if self._sharded is not None:
            self._sharded.ensure_workers()
        self._refreshes += 1
        self._store_blocks(fresh, block_start)
        if late_frames:
            self._patch_late_blocks(late_frames, block_start)
        if self._sharded is not None:
            from repro.core.shards import block_tuple

            pairs = class_pairs(HostWindow(self))
            self._dispatch_pair_order = pairs
            self._dispatch_pairs = self._sharded.partition(pairs)
            late_payload = [
                (frame.edge, block_tuple(frame.block))
                for frame in late_frames
                if frame.block is not None
            ]
            spectra = None
            if self.fft_dispatch != "off":
                # Compute each fresh block's rfft once in the parent and
                # ship it with the blocks: workers seed their caches
                # instead of re-transforming per shard. spectrum() is a
                # pure function of (block, size), so seeded entries are
                # bitwise what the worker would have computed.
                size = fft_length(2 * self._block_quanta - 1)
                spectra = {
                    edge: (size, self._spectra.spectrum(block, size))
                    for edge, block in fresh.items()
                    if not block_is_quiet(block)
                }
            with self.tracer.span(
                "engine.shards.dispatch", shards=self._sharded.num_shards
            ):
                self._sharded.dispatch(
                    fresh,
                    late_payload,
                    block_start,
                    now,
                    self._dispatch_pairs,
                    clients=self._clients,
                    refreshes=self._refreshes,
                    spectra=spectra,
                )
        else:
            with self.tracer.span(
                "engine.correlators", correlators=len(self._correlators)
            ):
                self._append_to_correlators()
        self.ledger.record_stage(
            STAGE_CORRELATE, time.perf_counter() - correlate_started, len(self._blocks)
        )

    def _stage_dfs(self, now: float) -> Tuple[PathmapResult, float]:
        """**Stage 3 -- DFS**: recompute every service class's graph.

        Serial/thread modes run the pathmap DFS in-process. Processes
        mode collects each shard's partial pathmap and merges the
        disjoint per-class results deterministically."""
        pathmap_started = time.perf_counter()
        with self.tracer.span("engine.pathmap"):
            if self._sharded is not None:
                result = self._merge_shard_partials(now)
            else:
                window = HostWindow(self)
                result = self._pathmap.analyze(
                    window, workers=self._thread_workers, executor=self._pool
                )
        pathmap_seconds = time.perf_counter() - pathmap_started
        self.ledger.record_stage(
            STAGE_DFS, pathmap_seconds, result.stats.correlations
        )
        return result, pathmap_seconds

    def _merge_shard_partials(self, now: float) -> PathmapResult:
        """Collect every shard worker's partial and merge: graphs are a
        disjoint union re-ordered to the canonical pair order, stats and
        tallies are sums, worker counter deltas fold into the parent
        registry, and worker kernel/shard timings replay into the
        parent's ledger. Shards lost mid-refresh are recorded for the
        publish stage's degraded-quality annotation."""
        merge_started = time.perf_counter()
        partials, lost = self._sharded.collect()
        stats = PathmapStats()
        by_pair: Dict[RefKey, "object"] = {}
        worker_correlate = 0.0
        for partial in partials:
            by_pair.update(partial.graphs)
            stats.correlations += partial.correlations
            stats.spikes += partial.spikes
            stats.edges_discovered += partial.edges_discovered
            stats.graphs += partial.graph_count
            stats.nodes_visited += partial.nodes_visited
            self._refresh_cache_hits += partial.cache_hits
            self._refresh_cache_misses += partial.cache_misses
            self._refresh_skips += partial.skips
            self._refresh_corr_cache_hits += partial.corr_cache_hits
            worker_correlate = max(worker_correlate, partial.correlate_seconds)
            for kernel in sorted(partial.kernels):
                rows, seconds, units, nbytes = partial.kernels[kernel]
                self.ledger.record_kernel(
                    kernel,
                    rows=rows,
                    seconds=seconds,
                    work_units=units,
                    bytes_touched=nbytes,
                )
            self.ledger.record_shard(
                partial.shard,
                partial.correlate_seconds,
                partial.dfs_seconds,
                classes=partial.classes,
                correlators=partial.correlators,
            )
            # Worker counters (pathmap_*, correlator_*, engine cache
            # hit/miss...) fold in as deltas, so enabled-registry runs
            # read integer-identical totals to a serial run.
            for name, labels, help_, delta in partial.counters:
                self.metrics.counter(name, help_, labels=dict(labels)).inc(delta)
        # Workers correlate concurrently with each other; the refresh's
        # wall-clock correlate cost extends by the slowest shard.
        self.ledger.record_stage(STAGE_CORRELATE, worker_correlate)
        graphs: Dict[RefKey, "object"] = {}
        for pair in self._dispatch_pair_order:
            if pair in by_pair:
                graphs[pair] = by_pair[pair]
        stats.elapsed_seconds = time.perf_counter() - merge_started
        self._lost_shards = [
            (shard, self._dispatch_pairs.get(shard, [])) for shard in lost
        ]
        return PathmapResult(graphs, stats)

    def _stage_publish(
        self,
        result: PathmapResult,
        now: float,
        block_start: int,
        started: float,
        pathmap_seconds: float,
        blocks_ingested: int,
        wire_bytes_before: int,
    ) -> PathmapResult:
        """**Stage 4 -- publish**: annotate the result (quality,
        shard-loss degradation, confidence, recommendations, ledger),
        observe the engine metrics, and fan out to every subscriber."""
        annotate_started = time.perf_counter()
        if self._receiver is not None:
            self._apply_quality(result, now, block_start)
        if self._lost_shards:
            self._apply_shard_loss(result, now)
        self._apply_confidence(result, now)
        if self.adaptive:
            self._update_recommendations(result)
        self.latest_result = result
        self.latest_refresh_time = now
        self.last_refresh_seconds = time.perf_counter() - started
        # The annotation slice of publish happens before the fan-out; the
        # completed ledger object is shared with the history/flight copy,
        # so the post-fanout record_stage below finishes it in place.
        self.ledger.record_stage(
            STAGE_PUBLISH, time.perf_counter() - annotate_started
        )
        ledger = self.ledger.complete(
            now,
            self._refreshes - 1,
            self.last_refresh_seconds,
            skips=self._refresh_skips,
            cache_hits=self._refresh_cache_hits,
        )
        result.annotate_ledger(ledger)
        self.latest_ledger = ledger
        self._m_refresh.observe(self.last_refresh_seconds)
        self._m_pathmap.observe(pathmap_seconds)
        self._m_refreshes.inc()
        self._m_blocks.inc(blocks_ingested)
        wire_bytes = self.wire_bytes_received - wire_bytes_before
        self._m_wire_bytes.inc(wire_bytes)
        self._m_correlators.set(self._correlator_total())
        self._m_edges.set(len(self._blocks))
        fanout_started = time.perf_counter()
        with self.tracer.span(
            "engine.fanout", subscribers=len(self._subscribers)
        ):
            for subscriber in self._subscribers:
                self._notify(subscriber, now, (now, result))
        fanout_seconds = time.perf_counter() - fanout_started
        self._m_fanout.observe(fanout_seconds)
        self.latest_sample = MetricsSample(
            time=now,
            refresh_seconds=self.last_refresh_seconds,
            pathmap_seconds=pathmap_seconds,
            fanout_seconds=fanout_seconds,
            blocks_ingested=blocks_ingested,
            wire_bytes=wire_bytes,
            correlators=self._correlator_total(),
            cache_hits=self._refresh_cache_hits,
            cache_misses=self._refresh_cache_misses,
            correlations=result.stats.correlations,
            spikes=result.stats.spikes,
            nodes_visited=result.stats.nodes_visited,
            correlator_skips=self._refresh_skips,
            correlation_cache_hits=self._refresh_corr_cache_hits,
            capture_batches=self._refresh_capture_batches,
            autotune_recommendations=len(self.latest_recommendations),
            low_confidence_events=self._refresh_low_confidence,
            rewindow_clips=self.rewindows - self._rewindows_sampled,
        )
        self._rewindows_sampled = self.rewindows
        with self.tracer.span(
            "engine.fanout_metrics", subscribers=len(self._metrics_subscribers)
        ):
            for metrics_subscriber in self._metrics_subscribers:
                self._notify(
                    metrics_subscriber, now, (now, result, self.latest_sample)
                )
        self.ledger.record_stage(
            STAGE_PUBLISH,
            time.perf_counter() - fanout_started,
            len(self._subscribers) + len(self._metrics_subscribers),
        )
        if self.ledger.enabled:
            for stage in PIPELINE_STAGES:
                self._m_stage[stage].observe(ledger.stage_seconds(stage))
            for kernel in CORRELATION_KERNELS:
                kernel_sample = ledger.kernel(kernel)
                if kernel_sample.rows:
                    self._m_kernel_rows[kernel].inc(kernel_sample.rows)
                    self._m_kernel_seconds[kernel].inc(kernel_sample.seconds)
                if kernel_sample.ns_per_row_ewma is not None:
                    self._m_kernel_ns[kernel].set(kernel_sample.ns_per_row_ewma)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "refresh %d at t=%.3f: %d blocks, %d correlators, "
                "%d spikes, %.1f ms",
                self._refreshes,
                now,
                blocks_ingested,
                self._correlator_total(),
                result.stats.spikes,
                self.last_refresh_seconds * 1e3,
            )
        return result

    def _correlator_total(self) -> int:
        """Live correlators across the analysis, whichever process holds
        them (the fleet's last reported counts in processes mode)."""
        if self._sharded is not None:
            return self._sharded.correlator_total()
        return len(self._correlators)

    @property
    def correlator_count(self) -> int:
        return self._correlator_total()

    def _apply_shard_loss(self, result: PathmapResult, now: float) -> None:
        """Degrade, never drop: a shard lost mid-refresh leaves its
        service classes out of this result, so their reference edges --
        and every edge their previous graphs had discovered -- are
        marked :data:`QUALITY_DEGRADED` through the same DataQuality
        machinery transport faults use, and a ``shard_lost`` event is
        published per lost shard. The fleet respawns the shard from
        mirrored history at the next refresh."""
        previous = self.latest_result
        dark_edges: Set[EdgeKey] = set()
        for _, pairs in self._lost_shards:
            for pair in pairs:
                dark_edges.add(pair)
                if previous is not None:
                    graph = previous.graphs.get(pair)
                    if graph is not None:
                        dark_edges.update(edge.key for edge in graph.edges)
        if self._receiver is not None:
            # Start from this refresh's transport verdicts (already
            # annotated) and only ever worsen them.
            edge_quality = dict(self.latest_edge_quality)
        else:
            edge_quality = {edge: FRESH_QUALITY for edge in self._blocks}
        for edge in sorted(dark_edges):
            current = edge_quality.get(edge)
            if current is None or current.ok:
                edge_quality[edge] = DataQuality(QUALITY_DEGRADED, 1.0)
        score = overall_quality(edge_quality.values())
        result.annotate_quality(edge_quality, score)
        self.quality_score = score
        self.latest_edge_quality = edge_quality
        self._m_quality.set(score)
        for shard, pairs in self._lost_shards:
            self.events.publish(
                EVENT_SHARD_LOST,
                now,
                shard=shard,
                classes=len(pairs),
                degraded_edges=len(dark_edges),
            )
        if self._receiver is None and score < 1.0:
            # With transport on, _apply_quality owns the degraded-refresh
            # event; without it, shard loss is the only degradation source.
            self.events.publish(
                EVENT_DEGRADED_REFRESH,
                now,
                quality=score,
                degraded_edges=sum(1 for q in edge_quality.values() if not q.ok),
                stale_tracers=0,
            )

    def _notify(self, callback: Callable, now: float, args: Tuple) -> None:
        """Call one subscriber, isolated: a raising callback is logged,
        counted (``obs_subscriber_errors_total``) and published as a
        diagnostic event, but never aborts the refresh or starves the
        subscribers after it."""
        name = getattr(callback, "__qualname__", None) or repr(callback)
        try:
            with self.tracer.span("engine.subscriber", subscriber=name):
                callback(*args)
        except Exception as exc:
            self.subscriber_errors += 1
            self._m_subscriber_errors.inc()
            logger.exception("subscriber %s raised during refresh fan-out", name)
            self.events.publish(
                EVENT_SUBSCRIBER_ERROR,
                now,
                subscriber=name,
                error=f"{type(exc).__name__}: {exc}",
            )

    def _record_flight_frame(
        self, now: float, sequence: int, events_mark: float
    ) -> None:
        """File one frame in the always-on flight recorder: the refresh's
        sample, its diagnostic events, and (when tracing) its spans."""
        spans = self.tracer.drain()
        sample = self.latest_sample
        sample_dict = (
            sample.to_dict() if sample is not None and sample.time == now else {}
        )
        ledger = self.latest_ledger
        ledger_dict = (
            ledger.to_dict()
            if ledger is not None and ledger.sequence == sequence
            else {}
        )
        self.flight.record(
            RefreshFrame(
                time=now,
                sequence=sequence,
                sample=sample_dict,
                spans=spans,
                events=self.events.events_since(events_mark),
                ledger=ledger_dict,
            )
        )

    def dump_flight_record(self, last: Optional[int] = None) -> dict:
        """JSON-able dump of the last recorded refreshes (see
        :class:`repro.obs.flight.FlightRecorder`)."""
        return self.flight.dump(last)

    # -- fault-tolerant transport -------------------------------------------------

    def _link_for(self, node_id: NodeId) -> TransportLink:
        link = self._links.get(node_id)
        if link is None:
            link = TransportLink(node_id)
            self._links[node_id] = link
        return link

    def _channel_for(self, node_id: NodeId) -> FaultyChannel:
        channel = self.transport_channels.get(node_id)
        if channel is None:
            if self._channel_factory is not None:
                channel = self._channel_factory(node_id)
            else:
                channel = FaultyChannel()  # perfect pass-through
            self.transport_channels[node_id] = channel
        return channel

    def _transport_ingest(
        self, fresh: Dict[EdgeKey, RunLengthSeries], block_start: int, now: float
    ) -> List[BlockFrame]:
        """Flush every tracer through its framed link + channel into the
        receiving endpoint; returns re-sequenced *late* frames (blocks
        belonging to earlier rounds) for history patching."""
        receiver = self._receiver
        assert receiver is not None and self._topology is not None
        with self.tracer.span("engine.transport") as span:
            for node_id, tracer in self._topology.fabric.tracers.items():
                receiver.register_tracer(node_id, now)
                link = self._link_for(node_id)
                channel = self._channel_for(node_id)
                with self.tracer.span("tracer.flush", node=node_id):
                    blocks = tracer.flush_block(
                        self.config, block_start, self._block_quanta
                    )
                selected = {
                    (src, dst): block
                    for (src, dst), block in blocks.items()
                    if node_id == dst
                    or (dst in self._clients and node_id == src)
                }
                for payload in link.encode_blocks(selected):
                    for delivered in channel.send(payload):
                        self.wire_bytes_received += len(delivered)
                        receiver.receive(delivered, now)
                if self.capture_sink is not None:
                    # Raw captures ride the same link/channel as packed
                    # timestamp frames (one frame per edge batch).
                    batches = tracer.drain_batches()
                    if batches:
                        for payload in link.encode_timestamp_batches(batches):
                            for delivered in channel.send(payload):
                                self.wire_bytes_received += len(delivered)
                                receiver.receive(delivered, now)
            # Frames the channels held back (reordered / delayed) that
            # have come due this round.
            for channel in self.transport_channels.values():
                for delivered in channel.advance():
                    self.wire_bytes_received += len(delivered)
                    receiver.receive(delivered, now)
            late: List[BlockFrame] = []
            for frame in receiver.poll():
                if frame.block is None:
                    continue
                if frame.block.start == block_start:
                    fresh[frame.edge] = frame.block
                else:
                    late.append(frame)
            if self.capture_sink is not None:
                # Timestamp batches carry absolute capture times, so
                # arrival order is irrelevant: file each straight into
                # the columnar archive.
                for ts_frame in receiver.poll_timestamp_batches():
                    self.capture_sink.ingest_batch(
                        ts_frame.src,
                        ts_frame.dst,
                        ts_frame.timestamps,
                        observed_at_destination=ts_frame.observed_at_destination,
                    )
                    self._refresh_capture_batches += 1
            # Declared gaps: blocks the reorder buffers gave up waiting for.
            gap_edges: Dict[EdgeKey, int] = {}
            for notice in receiver.drain_gap_notices():
                if notice.block_start is not None:
                    self._gap_blocks.setdefault(notice.edge, set()).add(
                        notice.block_start
                    )
                gap_edges[notice.edge] = gap_edges.get(notice.edge, 0) + 1
            for edge, count in sorted(gap_edges.items()):
                self.events.publish(
                    EVENT_TRANSPORT_GAP,
                    now,
                    node=receiver.edge_owner(edge),
                    edge=f"{edge[0]}->{edge[1]}",
                    blocks=count,
                )
            # Current-round absence: streams that were active moments ago
            # but produced nothing this round are provisionally gapped
            # (a late arrival patches the mark away again).
            for edge in receiver.known_edges():
                if edge in fresh:
                    continue
                if self._stream_recently_active(edge, block_start):
                    self._gap_blocks.setdefault(edge, set()).add(block_start)
            span.set_attribute("fresh", len(fresh))
            span.set_attribute("late", len(late))
            span.set_attribute("gaps", sum(gap_edges.values()))
            return late

    def _stream_recently_active(self, edge: EdgeKey, block_start: int) -> bool:
        """True when the edge's stream delivered a block within the last
        two rounds -- i.e. silence this round means loss, not idleness."""
        receiver = self._receiver
        assert receiver is not None
        node = receiver.edge_owner(edge)
        if node is None:
            return False
        buffer = receiver._buffers.get((node, edge[0], edge[1]))
        if buffer is None or buffer._anchor is None or not buffer._block_quanta:
            return False
        newest_start = buffer._anchor + buffer.max_seen * buffer._block_quanta
        return newest_start >= block_start - 2 * self._block_quanta

    def _patch_late_blocks(
        self, late: List[BlockFrame], block_start: int
    ) -> int:
        """Splice re-sequenced late blocks back into window history.

        Blocks carry their own window position, so a block that arrives
        a round (or several) behind schedule replaces the silence that
        was stored in its place; correlators touching the edge are
        invalidated and rebuilt lazily from the corrected history.
        """
        patched = 0
        for frame in late:
            block = frame.block
            assert block is not None
            edge = frame.edge
            if not self._splice_block(edge, block, block_start):
                continue
            patched += 1
            gaps = self._gap_blocks.get(edge)
            if gaps:
                gaps.discard(block.start)
        if patched:
            self._m_t_late.inc(patched)
        return patched

    def _apply_quality(
        self, result: PathmapResult, now: float, block_start: int
    ) -> None:
        """Degraded-mode refresh: derive per-edge DataQuality from the
        transport's gap/liveness state, annotate the result, publish the
        transport health signals."""
        receiver = self._receiver
        assert receiver is not None
        transport = self.transport or TransportConfig()
        # Slide the gap bookkeeping with the window.
        cutoff = block_start - (self._num_blocks - 1) * self._block_quanta
        for edge in list(self._gap_blocks):
            kept = {s for s in self._gap_blocks[edge] if s >= cutoff}
            if kept:
                self._gap_blocks[edge] = kept
            else:
                del self._gap_blocks[edge]
        statuses = receiver.statuses(now)
        self._publish_liveness_transitions(statuses, now)
        rounds = min(self._refreshes, self._num_blocks)
        edge_quality: Dict[EdgeKey, DataQuality] = {}
        for edge in self._blocks:
            gap_ratio = (
                len(self._gap_blocks.get(edge, ())) / rounds if rounds else 0.0
            )
            owner = receiver.edge_owner(edge)
            owner_state = statuses[owner].state if owner in statuses else None
            if owner_state == TRACER_DEAD or gap_ratio > transport.stale_gap_ratio:
                edge_quality[edge] = DataQuality(QUALITY_STALE, gap_ratio)
            elif gap_ratio > 0.0 or owner_state == TRACER_LAGGING:
                edge_quality[edge] = DataQuality(QUALITY_DEGRADED, gap_ratio)
            else:
                edge_quality[edge] = FRESH_QUALITY
        score = overall_quality(edge_quality.values())
        result.annotate_quality(edge_quality, score)
        self.quality_score = score
        self.latest_edge_quality = edge_quality
        self._m_quality.set(score)
        live = sum(1 for s in statuses.values() if s.state == TRACER_LIVE)
        self._m_live_tracers.set(live)
        self._m_stale_tracers.set(len(statuses) - live)
        self._sync_transport_counters()
        if score < 1.0:
            self.events.publish(
                EVENT_DEGRADED_REFRESH,
                now,
                quality=score,
                degraded_edges=sum(1 for q in edge_quality.values() if not q.ok),
                stale_tracers=len(statuses) - live,
            )

    def _publish_liveness_transitions(
        self, statuses: Dict[NodeId, "object"], now: float
    ) -> None:
        for node, status in statuses.items():
            previous = self._tracer_states.get(node, TRACER_LIVE)
            if status.state != previous:
                self._tracer_states[node] = status.state
                self.events.publish(
                    EVENT_TRACER_STALE,
                    now,
                    node=node,
                    state=status.state,
                    previous=previous,
                    last_heard=status.last_heard,
                )

    def _sync_transport_counters(self) -> None:
        """Mirror the receiver's cumulative stream tallies into the
        metrics registry as counter deltas."""
        receiver = self._receiver
        assert receiver is not None
        totals = receiver.totals()
        for key, metric in (
            ("gaps", self._m_t_gaps),
            ("duplicates", self._m_t_duplicates),
            ("reordered", self._m_t_reordered),
            ("stale_epoch_drops", self._m_t_stale_epoch),
        ):
            delta = totals[key] - self._transport_totals.get(key, 0)
            if delta > 0:
                metric.inc(delta)
            self._transport_totals[key] = totals[key]

    # -- steady-state confidence and adaptivity ------------------------------------

    def _class_reference_edges(self) -> List[RefKey]:
        """Every (client, front-end) reference edge with block history,
        in sorted order (iteration order must not depend on dict history
        so refreshes stay reproducible)."""
        return sorted(
            edge
            for edge in self._blocks
            if edge[0] in self._clients and edge[1] not in self._clients
        )

    def _apply_confidence(self, result: PathmapResult, now: float) -> None:
        """Grade every service class's reference signal against the
        steady-state assumption and annotate the result. Runs serially
        after the DFS, so ``workers`` never affects the verdicts."""
        reports: Dict[RefKey, ConfidenceReport] = {}
        for class_key in self._class_reference_edges():
            reports[class_key] = window_confidence(
                self._blocks[class_key],
                quantum=self.config.quantum,
                mass_per_message=self.config.sampling_quanta,
            )
        result.annotate_confidence(reports)
        self.latest_confidence = reports
        self.confidence_score = result.confidence
        self._m_confidence.set(result.confidence)
        low = {k: r for k, r in reports.items() if not r.ok}
        self._refresh_low_confidence = len(low)
        if low:
            self._m_low_confidence.inc()
            for class_key, report in sorted(low.items()):
                self.events.publish(
                    EVENT_LOW_CONFIDENCE,
                    now,
                    service_class=f"{class_key[0]}@{class_key[1]}",
                    score=report.score,
                    stability=report.stability,
                    recency=report.recency,
                    threshold=DEFAULT_LOW_CONFIDENCE,
                )

    def _update_recommendations(self, result: PathmapResult) -> None:
        """Refresh the per-class tuned-parameter recommendations from the
        confidence reports' traffic statistics (``adaptive=True``)."""
        from repro.core.autotune import (
            TrafficStats,
            autotune_config,
            observed_delay_bound,
        )
        from repro.core.confidence import DEFAULT_BINS_PER_BLOCK

        rounds = min(self._refreshes, self._num_blocks)
        duration = rounds * self.config.refresh_interval
        bin_seconds = self.config.refresh_interval / DEFAULT_BINS_PER_BLOCK
        recommendations: Dict[RefKey, PathmapConfig] = {}
        for class_key, report in self.latest_confidence.items():
            if report.mean_rate <= 0 or duration <= 0:
                continue
            graph = result.graphs.get(class_key)
            delay_bound = (
                observed_delay_bound(graph) if graph is not None else None
            )
            # Excess Fano factor = excess CV^2 of bin counts x mean bin
            # count (F = cv2 * mean).
            burstiness = report.excess_cv2 * report.mean_rate * bin_seconds
            stats = TrafficStats.from_rate(
                report.mean_rate,
                duration,
                burstiness=burstiness,
                delay_bound=delay_bound,
            )
            recommendations[class_key] = autotune_config(self.config, stats)
        self.latest_recommendations = recommendations

    def rewindow(self, cutoff: float) -> int:
        """Blank all block history that ends at or before ``cutoff``.

        Change-point response: once a detected shift invalidates the
        steady-state assumption for the pre-change past, the engine
        replaces every affected block with silence and invalidates the
        correlators touching it (the same lazy-rebuild machinery used for
        transport late-block patching). The next refresh then computes
        its graphs as if the window began at the cutoff -- delay
        estimates converge on the new regime in one refresh instead of
        bleeding the old regime for a full window length.

        Returns the number of non-empty blocks blanked.
        """
        if self._base_quantum is None:
            raise AnalysisError("engine was never attached")
        cutoff_quantum = int(round(cutoff / self.config.quantum))
        blanked = self._blank_history(cutoff_quantum)
        if self._sharded is not None:
            # Mirror the blanking into every shard worker's history (an
            # ordered control message, applied before the next refresh).
            self._sharded.rewindow(cutoff_quantum)
        if blanked:
            self.rewindows += 1
            self._m_rewindows.inc()
        return blanked

    def restart_tracer(self, node_id: NodeId) -> None:
        """Simulate a tracer crash/restart: captured state is lost, the
        transport epoch bumps (so pre-restart blocks are never
        resurrected) and all per-edge sequence streams reset."""
        if self._topology is not None:
            tracer = self._topology.fabric.tracer(node_id)
            if tracer is not None:
                tracer.restart()
        if self._receiver is not None:
            self._link_for(node_id).restart()

    def transport_summary(self, now: Optional[float] = None) -> dict:
        """JSON-able snapshot of transport health (``repro stats``)."""
        if self._receiver is None:
            return {"enabled": False}
        if now is None:
            now = self.latest_refresh_time if self.latest_refresh_time else 0.0
        return {
            "enabled": True,
            "quality_score": self.quality_score,
            "totals": self._receiver.totals(),
            "tracers": {
                node: status.to_dict()
                for node, status in sorted(self._receiver.statuses(now).items())
            },
            "links": {
                node: {
                    "epoch": link.epoch,
                    "restarts": link.restarts,
                    "frames_sent": link.frames_sent,
                }
                for node, link in sorted(self._links.items())
            },
            "channels": {
                node: channel.stats()
                for node, channel in sorted(self.transport_channels.items())
            },
            "degraded_edges": {
                f"{src}->{dst}": quality.to_dict()
                for (src, dst), quality in sorted(self.latest_edge_quality.items())
                if not quality.ok
            },
        }


#: Backwards-compatible alias: the engine's TraceWindow view now
#: lives in :mod:`repro.core.stages` and serves shard workers too.
_EngineWindow = HostWindow
