"""The online E2EProf engine (paper Sections 3.3-3.6).

This is the analyzer node: every refresh interval ``dW`` it pulls one
RLE-encoded block per edge from the per-node tracers (the streamed wire
format of Section 3.6), feeds the blocks into cached
:class:`~repro.core.incremental.IncrementalCorrelator` instances -- one
per (service class, edge) pair -- and re-runs the pathmap DFS using those
cached correlations. Only the newest ``dW`` of trace is ever correlated,
which is what makes the per-refresh cost constant in ``W`` (the flat
'incremental' curve of Figure 9).

Subscribers receive every fresh :class:`~repro.core.pathmap.PathmapResult`
-- the paper's long-term vision of E2EProf as "a basic service,
'pluggable' into any distributed system" whose subscribers "receive
real-time information about their service paths".

Block timing: blocks are flushed one sampling window behind real time so
every message contributing to a block's boxcar has already been observed;
the analysis therefore lags reality by ``omega`` (50 ms at RUBiS
settings), which is negligible against ``dW``.
"""

from __future__ import annotations

import collections
import concurrent.futures
import logging
import threading
import time
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.config import PathmapConfig, TransportConfig
from repro.core.confidence import (
    DEFAULT_LOW_CONFIDENCE,
    ConfidenceReport,
    window_confidence,
)
from repro.core.correlation import (
    MODELED_RLE_COST_RATIO,
    CorrelationSeries,
    SeriesLike,
    batch_lag_products,
    rle_dispatch_units,
    sparse_dispatch_units,
)
from repro.core.incremental import IncrementalCorrelator, _pair_products, block_is_quiet
from repro.core.pathmap import Pathmap, PathmapResult, TraceWindow
from repro.core.rle import RunLengthSeries
from repro.core.timeseries import DensityTimeSeries
from repro.errors import AnalysisError
from repro.obs.events import (
    EVENT_DEGRADED_REFRESH,
    EVENT_LOW_CONFIDENCE,
    EVENT_SUBSCRIBER_ERROR,
    EVENT_TRACER_STALE,
    EVENT_TRANSPORT_GAP,
    EventBus,
)
from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder, RefreshFrame
from repro.obs.instruments import DEFAULT_STAGE_BUCKETS
from repro.obs.ledger import (
    CORRELATION_KERNELS,
    KERNEL_LEGACY,
    KERNEL_RLE,
    KERNEL_SPARSE_BATCH,
    PIPELINE_STAGES,
    STAGE_CORRELATE,
    STAGE_DFS,
    STAGE_INGEST,
    STAGE_PUBLISH,
    LedgerRecorder,
    RefreshLedger,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.sample import MetricsSample
from repro.obs.spans import SpanTracer
from repro.simulation.des import PeriodicTask
from repro.simulation.topology import Topology
from repro.tracing.collector import TraceCollector
from repro.tracing.records import NodeId
from repro.tracing.transport import (
    QUALITY_DEGRADED,
    QUALITY_FRESH,
    QUALITY_STALE,
    TRACER_DEAD,
    TRACER_LAGGING,
    TRACER_LIVE,
    DataQuality,
    FaultyChannel,
    FRESH_QUALITY,
    TransportLink,
    TransportReceiver,
    overall_quality,
)
from repro.tracing.wire import BlockFrame, decode_block, encode_block

logger = logging.getLogger(__name__)

EdgeKey = Tuple[NodeId, NodeId]
RefKey = Tuple[NodeId, NodeId]
Subscriber = Callable[[float, PathmapResult], None]
MetricsSubscriber = Callable[[float, PathmapResult, MetricsSample], None]


class E2EProfEngine:
    """Online sliding-window service-path analysis over streamed blocks."""

    def __init__(
        self,
        config: PathmapConfig,
        clients: Optional[Set[NodeId]] = None,
        wire_fidelity: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        events: Optional[EventBus] = None,
        flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
        transport: Optional[TransportConfig] = None,
        channel_factory: Optional[Callable[[NodeId], FaultyChannel]] = None,
        workers: Optional[int] = None,
        batched: bool = True,
        capture_sink: Optional[TraceCollector] = None,
        adaptive: bool = False,
        ledger: bool = True,
        measured_dispatch: Optional[bool] = None,
    ) -> None:
        self.config = config
        self._clients: Set[NodeId] = set(clients or ())
        #: Worker threads for refresh work (correlator append groups + the
        #: per-class pathmap DFS). Defaults to ``config.workers``; results
        #: are bit-identical to serial at any setting.
        self.workers = int(workers) if workers is not None else config.workers
        if self.workers < 1:
            raise AnalysisError(f"workers must be >= 1, got {self.workers}")
        #: When True (default), correlator updates use reference-grouped
        #: :func:`~repro.core.correlation.batch_lag_products` kernels with
        #: quiet-edge skipping and correlation memoization. False restores
        #: the legacy one-kernel-per-pair refresh (the benchmark baseline).
        self.batched = bool(batched)
        #: Always-on refresh cost ledger (:mod:`repro.obs.ledger`): one
        #: :class:`RefreshLedger` per refresh with per-stage wall times
        #: and per-kernel measured costs, attached to every result.
        #: ``ledger=False`` disables the recording (the overhead
        #: benchmark's baseline); results then carry zero ledgers.
        self.ledger = LedgerRecorder(enabled=ledger)
        #: The most recent refresh's ledger (None before the first).
        self.latest_ledger: Optional[RefreshLedger] = None
        #: When True, sparse-vs-RLE kernel dispatch compares predicted
        #: kernel times from the ledger's measured per-unit cost EWMAs
        #: instead of the modeled constant. Output is bit-identical
        #: either way. Defaults to ``config.measured_dispatch``.
        self.measured_dispatch = (
            bool(measured_dispatch)
            if measured_dispatch is not None
            else config.measured_dispatch
        )
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        # Guards the plain-int per-refresh tallies below when provider
        # callbacks run on pool threads (workers > 1).
        self._tally_lock = threading.Lock()
        #: When True, every streamed block is round-tripped through the
        #: binary wire format (tracing.wire) before analysis -- proving
        #: the bytes actually sent over the network carry everything the
        #: analysis needs (values pass through float32).
        self.wire_fidelity = wire_fidelity
        self.wire_bytes_received = 0
        #: Self-observability registry. Defaults to a fresh **disabled**
        #: registry, so the uninstrumented cost model of Figure 9 holds
        #: unless an operator opts in (pass an enabled registry, or call
        #: ``engine.metrics.enable()`` before ``attach``).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Span tracer for the refresh pipeline. Defaults to a fresh
        #: **disabled** tracer (same opt-in contract as ``metrics``).
        self.tracer = tracer if tracer is not None else SpanTracer()
        #: Diagnostic event bus; change/anomaly/SLA/scheduler subscribers
        #: attached via their ``subscribe_to(engine)`` publish here.
        self.events = events if events is not None else EventBus(tracer=self.tracer)
        #: Always-on flight recorder of the last ``flight_capacity``
        #: refreshes (spans + events + per-refresh sample).
        self.flight = FlightRecorder(capacity=flight_capacity)
        self._num_blocks = max(1, round(config.window / config.refresh_interval))
        self._block_quanta = config.refresh_quanta
        # Aligned per-edge block history (destination-side, RLE).
        self._blocks: Dict[EdgeKey, Deque[RunLengthSeries]] = {}
        self._refreshes = 0
        self._base_quantum: Optional[int] = None
        self._correlators: Dict[Tuple[RefKey, EdgeKey], IncrementalCorrelator] = {}
        self._subscribers: List[Subscriber] = []
        self._metrics_subscribers: List[MetricsSubscriber] = []
        self._pathmap = Pathmap(
            config,
            correlation_provider=self._provide_correlation,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.latest_result: Optional[PathmapResult] = None
        self.latest_refresh_time: Optional[float] = None
        #: Wall-clock seconds the most recent refresh took (block ingest +
        #: incremental correlator updates + pathmap DFS). The Figure 9
        #: 'incremental' curve measures exactly this.
        self.last_refresh_seconds: float = 0.0
        #: MetricsSample of the most recent refresh (None before the first).
        self.latest_sample: Optional[MetricsSample] = None
        self._topology: Optional[Topology] = None
        self._task: Optional[PeriodicTask] = None
        # Per-refresh correlator-cache tallies (plain ints: counted even
        # with the registry disabled, so MetricsSamples are always real).
        self._refresh_cache_hits = 0
        self._refresh_cache_misses = 0
        # Per-refresh optimization tallies: pair products skipped on quiet
        # blocks, and correlations served from the dirty-flag result cache.
        self._refresh_skips = 0
        self._refresh_corr_cache_hits = 0
        # Per-refresh adaptivity tallies (satellite of the cost ledger):
        # classes below the confidence threshold this refresh, and the
        # rewindow total already reported through a MetricsSample.
        self._refresh_low_confidence = 0
        self._rewindows_sampled = 0
        #: Subscriber callbacks that raised and were isolated (all time,
        #: counted regardless of the registry switch).
        self.subscriber_errors = 0
        m = self.metrics
        self._m_refresh = m.histogram(
            "engine_refresh_seconds",
            "Wall-clock seconds per engine refresh (ingest + correlators + DFS)",
        )
        self._m_pathmap = m.histogram(
            "engine_pathmap_seconds", "Seconds of each refresh spent in the pathmap DFS"
        )
        self._m_fanout = m.histogram(
            "engine_fanout_seconds", "Seconds spent fanning each result out to subscribers"
        )
        self._m_batch = m.histogram(
            "correlator_batch_seconds",
            "Seconds per refresh spent in the reference-grouped batch append",
        )
        self._m_stage = {
            stage: m.histogram(
                "engine_stage_seconds",
                "Wall-clock seconds per pipeline stage per refresh "
                "(ingest / correlate / dfs / publish, from the refresh ledger)",
                labels={"stage": stage},
                buckets=DEFAULT_STAGE_BUCKETS,
            )
            for stage in PIPELINE_STAGES
        }
        self._m_kernel_rows = {
            kernel: m.counter(
                "ledger_kernel_rows_total",
                "Correlation rows processed per kernel (from the refresh ledger)",
                labels={"kernel": kernel},
            )
            for kernel in CORRELATION_KERNELS
        }
        self._m_kernel_seconds = {
            kernel: m.counter(
                "ledger_kernel_seconds_total",
                "Wall-clock seconds spent per kernel (from the refresh ledger)",
                labels={"kernel": kernel},
            )
            for kernel in CORRELATION_KERNELS
        }
        self._m_kernel_ns = {
            kernel: m.gauge(
                "ledger_kernel_ns_per_row",
                "EWMA of measured nanoseconds per row per kernel",
                labels={"kernel": kernel},
            )
            for kernel in CORRELATION_KERNELS
        }
        self._m_refreshes = m.counter("engine_refreshes_total", "Engine refreshes run")
        self._m_blocks = m.counter(
            "engine_blocks_ingested_total", "Streamed RLE blocks pulled from tracers"
        )
        self._m_wire_bytes = m.counter(
            "engine_wire_bytes_total", "Wire-format bytes received (wire_fidelity mode)"
        )
        self._m_cache_hits = m.counter(
            "engine_correlator_cache_hits_total",
            "Correlations served by an existing incremental correlator",
        )
        self._m_cache_misses = m.counter(
            "engine_correlator_cache_misses_total",
            "Correlations that had to build a correlator from block history",
        )
        self._m_correlators = m.gauge(
            "engine_correlators", "Live incremental correlators"
        )
        self._m_edges = m.gauge(
            "engine_tracked_edges", "Edges with block history in the current window"
        )
        self._m_subscriber_errors = m.counter(
            "obs_subscriber_errors_total",
            "Subscriber callbacks that raised and were isolated during fan-out",
        )
        #: Optional analyzer-side capture archive. When set, every
        #: tracer's raw per-edge timestamps are drained each refresh as
        #: columnar batches and forwarded here -- through the transport's
        #: packed timestamp frames when transport is on, directly
        #: otherwise -- without materializing per-record objects.
        self.capture_sink = capture_sink
        self._refresh_capture_batches = 0
        #: Fault-tolerant transport (None = legacy direct pull). When set,
        #: every block travels tracer -> TransportLink -> channel ->
        #: TransportReceiver, gaining epoch/sequence framing, reordering
        #: tolerance, liveness watching and per-edge DataQuality.
        self.transport = transport
        self._channel_factory = channel_factory
        self._receiver: Optional[TransportReceiver] = None
        self._links: Dict[NodeId, TransportLink] = {}
        #: Per-tracer channels (fault injectors or perfect pass-throughs);
        #: chaos tests reach in here to toggle fault rates mid-run.
        self.transport_channels: Dict[NodeId, FaultyChannel] = {}
        # Block starts known missing per edge (declared gaps + current-
        # round absences), pruned as the window slides past them.
        self._gap_blocks: Dict[EdgeKey, Set[int]] = {}
        self._tracer_states: Dict[NodeId, str] = {}
        self._transport_totals: Dict[str, int] = {}
        #: Overall data-quality score of the latest refresh (1.0 = every
        #: edge signal complete and live; always 1.0 without transport).
        self.quality_score: float = 1.0
        #: Per-edge DataQuality of the latest refresh (transport only).
        self.latest_edge_quality: Dict[EdgeKey, DataQuality] = {}
        if transport is not None:
            self._receiver = TransportReceiver(
                transport, config.refresh_interval, metrics=m
            )
        self._m_quality = m.gauge(
            "engine_quality_score",
            "Overall data-quality score of the latest refresh (1 = fresh)",
        )
        self._m_live_tracers = m.gauge(
            "transport_live_tracers", "Tracers currently heard within the staleness threshold"
        )
        self._m_stale_tracers = m.gauge(
            "transport_stale_tracers", "Tracers currently lagging or dead"
        )
        self._m_t_gaps = m.counter(
            "transport_gap_blocks_total", "Blocks declared lost on transport streams"
        )
        self._m_t_duplicates = m.counter(
            "transport_duplicate_frames_total", "Duplicate transport frames dropped"
        )
        self._m_t_reordered = m.counter(
            "transport_reordered_frames_total", "Transport frames that arrived out of order"
        )
        self._m_t_late = m.counter(
            "transport_late_blocks_total",
            "Late blocks recovered into the window after their gap was declared",
        )
        self._m_t_stale_epoch = m.counter(
            "transport_stale_epoch_frames_total",
            "Pre-restart frames rejected by epoch checks",
        )
        #: When True, every refresh also derives per-class tuned-parameter
        #: recommendations (:mod:`repro.core.autotune`) from the observed
        #: reference-signal statistics into ``latest_recommendations``.
        #: The running analysis keeps its own parameters either way --
        #: blocks are quantized at ingest, so a resolution change needs a
        #: re-analysis, not a mid-flight swap.
        self.adaptive = bool(adaptive)
        #: Per-class steady-state confidence of the latest refresh.
        self.latest_confidence: Dict[RefKey, ConfidenceReport] = {}
        #: Overall (minimum per-class) confidence of the latest refresh.
        self.confidence_score: float = 1.0
        #: Per-class tuned-config recommendations (``adaptive=True`` only).
        self.latest_recommendations: Dict[RefKey, PathmapConfig] = {}
        #: History-blanking re-windows performed (see :meth:`rewindow`).
        self.rewindows = 0
        self._m_confidence = m.gauge(
            "engine_confidence_score",
            "Steady-state confidence of the latest refresh (1 = steady)",
        )
        self._m_low_confidence = m.counter(
            "engine_low_confidence_total",
            "Refreshes with at least one class below the confidence threshold",
        )
        self._m_rewindows = m.counter(
            "engine_rewindows_total",
            "Change-point-triggered history re-windows performed",
        )

    # -- wiring ---------------------------------------------------------------------

    def subscribe(self, callback: Subscriber) -> None:
        """Receive ``(time, PathmapResult)`` after every refresh."""
        self._subscribers.append(callback)

    def subscribe_metrics(self, callback: MetricsSubscriber) -> None:
        """Receive ``(time, PathmapResult, MetricsSample)`` after every
        refresh -- the engine's own health signals alongside its analysis
        (see :mod:`repro.obs.sample`). Works with the registry disabled."""
        self._metrics_subscribers.append(callback)

    def attach(self, topology: Topology, start_at: Optional[float] = None) -> None:
        """Drive refreshes from a simulated topology's clock.

        The first refresh fires one ``dW`` after ``start_at`` (default:
        attach time) and every ``dW`` thereafter.
        """
        if self._topology is not None:
            raise AnalysisError("engine is already attached")
        self._topology = topology
        self._clients |= topology.collector.clients
        if self.metrics.enabled:
            # Only bound when observing is on: tracer.observe runs once per
            # simulated packet, so unbound tracers pay nothing at all.
            for tracer in topology.fabric.tracers.values():
                tracer.bind_metrics(self.metrics)
        if self.capture_sink is not None:
            for tracer in topology.fabric.tracers.values():
                tracer.enable_batch_streaming()
        begin = start_at if start_at is not None else topology.sim.now
        tau = self.config.quantum
        # Anchor block boundaries one sampling window behind the wall
        # clock so flushed blocks are complete (see module docstring).
        self._base_quantum = int(round(begin / tau)) - self.config.sampling_quanta
        if self.workers > 1 and self._pool is None:
            # One pool for the engine's whole attached lifetime: spawning
            # threads per refresh would dwarf the work they shard.
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="e2eprof-refresh"
            )
        self._task = PeriodicTask(
            topology.sim,
            self.config.refresh_interval,
            self._on_tick,
            start_at=begin + self.config.refresh_interval,
        )

    def detach(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self._topology = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- refresh ------------------------------------------------------------------------

    def _on_tick(self, now: float) -> None:
        self.refresh(now)

    def refresh(self, now: float) -> PathmapResult:
        """Pull one block per edge, update correlators, recompute graphs.

        The whole refresh runs under an ``engine.refresh`` root span
        (ingest -> correlator updates -> pathmap DFS -> fan-out children
        when the tracer is enabled), and every refresh -- including one
        that raises -- leaves a frame in the flight recorder.
        """
        sequence = self._refreshes
        events_mark = time.perf_counter()
        try:
            with self.tracer.span("engine.refresh", refresh=sequence, time=now):
                result = self._do_refresh(now)
        finally:
            self._record_flight_frame(now, sequence, events_mark)
        return result

    def _do_refresh(self, now: float) -> PathmapResult:
        started = time.perf_counter()
        if self._topology is None:
            raise AnalysisError("engine is not attached to a topology")
        if self._base_quantum is None:
            raise AnalysisError("engine was never attached")
        # Clients may be added while running (new service classes).
        self._clients |= self._topology.collector.clients
        block_start = self._base_quantum + self._refreshes * self._block_quanta
        self._refresh_cache_hits = 0
        self._refresh_cache_misses = 0
        self._refresh_skips = 0
        self._refresh_corr_cache_hits = 0
        self._refresh_capture_batches = 0
        self._refresh_low_confidence = 0
        self.ledger.begin_refresh()
        wire_metrics = self.metrics if self.metrics.enabled else None
        wire_bytes_before = self.wire_bytes_received

        fresh: Dict[EdgeKey, RunLengthSeries] = {}
        late_frames: List[BlockFrame] = []
        ingest_started = time.perf_counter()
        with self.tracer.span("engine.ingest") as ingest_span:
            if self._receiver is not None:
                late_frames = self._transport_ingest(fresh, block_start, now)
            else:
                for node_id, tracer in self._topology.fabric.tracers.items():
                    with self.tracer.span("tracer.flush", node=node_id):
                        for edge, block in tracer.flush_block(
                            self.config, block_start, self._block_quanta
                        ).items():
                            src, dst = edge
                            # Destination-side capture wins (Algorithm 1);
                            # source-side only for edges into untraced clients.
                            if node_id == dst or (dst in self._clients and node_id == src):
                                if self.wire_fidelity:
                                    payload = encode_block(block, metrics=wire_metrics)
                                    self.wire_bytes_received += len(payload)
                                    block = decode_block(payload, metrics=wire_metrics)
                                fresh[edge] = block
                    if self.capture_sink is not None:
                        # Direct (no-transport) batch forwarding: the
                        # tracer's raw captures reach the archive as
                        # columnar writes, never as per-record objects.
                        for (src, dst), stamps in tracer.drain_batches().items():
                            self.capture_sink.ingest_batch(
                                src, dst, stamps,
                                observed_at_destination=(node_id == dst),
                            )
                            self._refresh_capture_batches += 1
            ingest_span.set_attribute("blocks", len(fresh))
        self.ledger.record_stage(
            STAGE_INGEST, time.perf_counter() - ingest_started, len(fresh)
        )

        correlate_started = time.perf_counter()
        self._refreshes += 1
        self._store_blocks(fresh, block_start)
        if late_frames:
            self._patch_late_blocks(late_frames, block_start)
        with self.tracer.span(
            "engine.correlators", correlators=len(self._correlators)
        ):
            self._append_to_correlators()
        self.ledger.record_stage(
            STAGE_CORRELATE, time.perf_counter() - correlate_started, len(self._blocks)
        )

        window = _EngineWindow(self)
        pathmap_started = time.perf_counter()
        with self.tracer.span("engine.pathmap"):
            result = self._pathmap.analyze(
                window, workers=self.workers, executor=self._pool
            )
        pathmap_seconds = time.perf_counter() - pathmap_started
        self.ledger.record_stage(
            STAGE_DFS, pathmap_seconds, result.stats.correlations
        )
        annotate_started = time.perf_counter()
        if self._receiver is not None:
            self._apply_quality(result, now, block_start)
        self._apply_confidence(result, now)
        if self.adaptive:
            self._update_recommendations(result)
        self.latest_result = result
        self.latest_refresh_time = now
        self.last_refresh_seconds = time.perf_counter() - started
        # The annotation slice of publish happens before the fan-out; the
        # completed ledger object is shared with the history/flight copy,
        # so the post-fanout record_stage below finishes it in place.
        self.ledger.record_stage(
            STAGE_PUBLISH, time.perf_counter() - annotate_started
        )
        ledger = self.ledger.complete(
            now,
            self._refreshes - 1,
            self.last_refresh_seconds,
            skips=self._refresh_skips,
            cache_hits=self._refresh_cache_hits,
        )
        result.annotate_ledger(ledger)
        self.latest_ledger = ledger
        self._m_refresh.observe(self.last_refresh_seconds)
        self._m_pathmap.observe(pathmap_seconds)
        self._m_refreshes.inc()
        self._m_blocks.inc(len(fresh))
        wire_bytes = self.wire_bytes_received - wire_bytes_before
        self._m_wire_bytes.inc(wire_bytes)
        self._m_correlators.set(len(self._correlators))
        self._m_edges.set(len(self._blocks))
        fanout_started = time.perf_counter()
        with self.tracer.span(
            "engine.fanout", subscribers=len(self._subscribers)
        ):
            for subscriber in self._subscribers:
                self._notify(subscriber, now, (now, result))
        fanout_seconds = time.perf_counter() - fanout_started
        self._m_fanout.observe(fanout_seconds)
        self.latest_sample = MetricsSample(
            time=now,
            refresh_seconds=self.last_refresh_seconds,
            pathmap_seconds=pathmap_seconds,
            fanout_seconds=fanout_seconds,
            blocks_ingested=len(fresh),
            wire_bytes=wire_bytes,
            correlators=len(self._correlators),
            cache_hits=self._refresh_cache_hits,
            cache_misses=self._refresh_cache_misses,
            correlations=result.stats.correlations,
            spikes=result.stats.spikes,
            nodes_visited=result.stats.nodes_visited,
            correlator_skips=self._refresh_skips,
            correlation_cache_hits=self._refresh_corr_cache_hits,
            capture_batches=self._refresh_capture_batches,
            autotune_recommendations=len(self.latest_recommendations),
            low_confidence_events=self._refresh_low_confidence,
            rewindow_clips=self.rewindows - self._rewindows_sampled,
        )
        self._rewindows_sampled = self.rewindows
        with self.tracer.span(
            "engine.fanout_metrics", subscribers=len(self._metrics_subscribers)
        ):
            for metrics_subscriber in self._metrics_subscribers:
                self._notify(
                    metrics_subscriber, now, (now, result, self.latest_sample)
                )
        self.ledger.record_stage(
            STAGE_PUBLISH,
            time.perf_counter() - fanout_started,
            len(self._subscribers) + len(self._metrics_subscribers),
        )
        if self.ledger.enabled:
            for stage in PIPELINE_STAGES:
                self._m_stage[stage].observe(ledger.stage_seconds(stage))
            for kernel in CORRELATION_KERNELS:
                kernel_sample = ledger.kernel(kernel)
                if kernel_sample.rows:
                    self._m_kernel_rows[kernel].inc(kernel_sample.rows)
                    self._m_kernel_seconds[kernel].inc(kernel_sample.seconds)
                if kernel_sample.ns_per_row_ewma is not None:
                    self._m_kernel_ns[kernel].set(kernel_sample.ns_per_row_ewma)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "refresh %d at t=%.3f: %d blocks, %d correlators, "
                "%d spikes, %.1f ms",
                self._refreshes,
                now,
                len(fresh),
                len(self._correlators),
                result.stats.spikes,
                self.last_refresh_seconds * 1e3,
            )
        return result

    def _notify(self, callback: Callable, now: float, args: Tuple) -> None:
        """Call one subscriber, isolated: a raising callback is logged,
        counted (``obs_subscriber_errors_total``) and published as a
        diagnostic event, but never aborts the refresh or starves the
        subscribers after it."""
        name = getattr(callback, "__qualname__", None) or repr(callback)
        try:
            with self.tracer.span("engine.subscriber", subscriber=name):
                callback(*args)
        except Exception as exc:
            self.subscriber_errors += 1
            self._m_subscriber_errors.inc()
            logger.exception("subscriber %s raised during refresh fan-out", name)
            self.events.publish(
                EVENT_SUBSCRIBER_ERROR,
                now,
                subscriber=name,
                error=f"{type(exc).__name__}: {exc}",
            )

    def _record_flight_frame(
        self, now: float, sequence: int, events_mark: float
    ) -> None:
        """File one frame in the always-on flight recorder: the refresh's
        sample, its diagnostic events, and (when tracing) its spans."""
        spans = self.tracer.drain()
        sample = self.latest_sample
        sample_dict = (
            sample.to_dict() if sample is not None and sample.time == now else {}
        )
        ledger = self.latest_ledger
        ledger_dict = (
            ledger.to_dict()
            if ledger is not None and ledger.sequence == sequence
            else {}
        )
        self.flight.record(
            RefreshFrame(
                time=now,
                sequence=sequence,
                sample=sample_dict,
                spans=spans,
                events=self.events.events_since(events_mark),
                ledger=ledger_dict,
            )
        )

    def dump_flight_record(self, last: Optional[int] = None) -> dict:
        """JSON-able dump of the last recorded refreshes (see
        :class:`repro.obs.flight.FlightRecorder`)."""
        return self.flight.dump(last)

    def _store_blocks(self, fresh: Dict[EdgeKey, RunLengthSeries], block_start: int) -> None:
        empty = RunLengthSeries.empty(block_start, self._block_quanta, self.config.quantum)
        for edge in set(self._blocks) | set(fresh):
            deque_ = self._blocks.get(edge)
            if deque_ is None:
                # Newly seen edge: backfill silence so every deque is
                # aligned on the same block boundaries.
                deque_ = self._backfilled_deque(
                    block_start - self._block_quanta,
                    min(self._refreshes - 1, self._num_blocks),
                )
                self._blocks[edge] = deque_
            deque_.append(fresh.get(edge, empty))

    def _backfilled_deque(
        self, last_start: int, rounds: int
    ) -> Deque[RunLengthSeries]:
        """An aligned deque of ``rounds`` empty blocks ending at
        ``last_start`` (inclusive)."""
        tau = self.config.quantum
        deque_: Deque[RunLengthSeries] = collections.deque(maxlen=self._num_blocks)
        for k in range(rounds - 1, -1, -1):
            start = last_start - k * self._block_quanta
            deque_.append(RunLengthSeries.empty(start, self._block_quanta, tau))
        return deque_

    # -- fault-tolerant transport -------------------------------------------------

    def _link_for(self, node_id: NodeId) -> TransportLink:
        link = self._links.get(node_id)
        if link is None:
            link = TransportLink(node_id)
            self._links[node_id] = link
        return link

    def _channel_for(self, node_id: NodeId) -> FaultyChannel:
        channel = self.transport_channels.get(node_id)
        if channel is None:
            if self._channel_factory is not None:
                channel = self._channel_factory(node_id)
            else:
                channel = FaultyChannel()  # perfect pass-through
            self.transport_channels[node_id] = channel
        return channel

    def _transport_ingest(
        self, fresh: Dict[EdgeKey, RunLengthSeries], block_start: int, now: float
    ) -> List[BlockFrame]:
        """Flush every tracer through its framed link + channel into the
        receiving endpoint; returns re-sequenced *late* frames (blocks
        belonging to earlier rounds) for history patching."""
        receiver = self._receiver
        assert receiver is not None and self._topology is not None
        with self.tracer.span("engine.transport") as span:
            for node_id, tracer in self._topology.fabric.tracers.items():
                receiver.register_tracer(node_id, now)
                link = self._link_for(node_id)
                channel = self._channel_for(node_id)
                with self.tracer.span("tracer.flush", node=node_id):
                    blocks = tracer.flush_block(
                        self.config, block_start, self._block_quanta
                    )
                selected = {
                    (src, dst): block
                    for (src, dst), block in blocks.items()
                    if node_id == dst
                    or (dst in self._clients and node_id == src)
                }
                for payload in link.encode_blocks(selected):
                    for delivered in channel.send(payload):
                        self.wire_bytes_received += len(delivered)
                        receiver.receive(delivered, now)
                if self.capture_sink is not None:
                    # Raw captures ride the same link/channel as packed
                    # timestamp frames (one frame per edge batch).
                    batches = tracer.drain_batches()
                    if batches:
                        for payload in link.encode_timestamp_batches(batches):
                            for delivered in channel.send(payload):
                                self.wire_bytes_received += len(delivered)
                                receiver.receive(delivered, now)
            # Frames the channels held back (reordered / delayed) that
            # have come due this round.
            for channel in self.transport_channels.values():
                for delivered in channel.advance():
                    self.wire_bytes_received += len(delivered)
                    receiver.receive(delivered, now)
            late: List[BlockFrame] = []
            for frame in receiver.poll():
                if frame.block is None:
                    continue
                if frame.block.start == block_start:
                    fresh[frame.edge] = frame.block
                else:
                    late.append(frame)
            if self.capture_sink is not None:
                # Timestamp batches carry absolute capture times, so
                # arrival order is irrelevant: file each straight into
                # the columnar archive.
                for ts_frame in receiver.poll_timestamp_batches():
                    self.capture_sink.ingest_batch(
                        ts_frame.src,
                        ts_frame.dst,
                        ts_frame.timestamps,
                        observed_at_destination=ts_frame.observed_at_destination,
                    )
                    self._refresh_capture_batches += 1
            # Declared gaps: blocks the reorder buffers gave up waiting for.
            gap_edges: Dict[EdgeKey, int] = {}
            for notice in receiver.drain_gap_notices():
                if notice.block_start is not None:
                    self._gap_blocks.setdefault(notice.edge, set()).add(
                        notice.block_start
                    )
                gap_edges[notice.edge] = gap_edges.get(notice.edge, 0) + 1
            for edge, count in sorted(gap_edges.items()):
                self.events.publish(
                    EVENT_TRANSPORT_GAP,
                    now,
                    node=receiver.edge_owner(edge),
                    edge=f"{edge[0]}->{edge[1]}",
                    blocks=count,
                )
            # Current-round absence: streams that were active moments ago
            # but produced nothing this round are provisionally gapped
            # (a late arrival patches the mark away again).
            for edge in receiver.known_edges():
                if edge in fresh:
                    continue
                if self._stream_recently_active(edge, block_start):
                    self._gap_blocks.setdefault(edge, set()).add(block_start)
            span.set_attribute("fresh", len(fresh))
            span.set_attribute("late", len(late))
            span.set_attribute("gaps", sum(gap_edges.values()))
            return late

    def _stream_recently_active(self, edge: EdgeKey, block_start: int) -> bool:
        """True when the edge's stream delivered a block within the last
        two rounds -- i.e. silence this round means loss, not idleness."""
        receiver = self._receiver
        assert receiver is not None
        node = receiver.edge_owner(edge)
        if node is None:
            return False
        buffer = receiver._buffers.get((node, edge[0], edge[1]))
        if buffer is None or buffer._anchor is None or not buffer._block_quanta:
            return False
        newest_start = buffer._anchor + buffer.max_seen * buffer._block_quanta
        return newest_start >= block_start - 2 * self._block_quanta

    def _patch_late_blocks(
        self, late: List[BlockFrame], block_start: int
    ) -> int:
        """Splice re-sequenced late blocks back into window history.

        Blocks carry their own window position, so a block that arrives
        a round (or several) behind schedule replaces the silence that
        was stored in its place; correlators touching the edge are
        invalidated and rebuilt lazily from the corrected history.
        """
        patched = 0
        for frame in late:
            block = frame.block
            assert block is not None
            edge = frame.edge
            deque_ = self._blocks.get(edge)
            if deque_ is None:
                # First-ever block of an edge arrived late: materialize
                # an aligned, silence-filled history to patch into.
                deque_ = self._backfilled_deque(
                    block_start, min(self._refreshes, self._num_blocks)
                )
                self._blocks[edge] = deque_
            oldest = deque_[0].start if deque_ else None
            if oldest is None:
                continue
            index = (block.start - oldest) // self._block_quanta
            if index < 0 or index >= len(deque_):
                continue  # already rotated out of the window
            if deque_[index].start != block.start:
                continue
            deque_[index] = block
            patched += 1
            gaps = self._gap_blocks.get(edge)
            if gaps:
                gaps.discard(block.start)
            self._invalidate_correlators(edge)
        if patched:
            self._m_t_late.inc(patched)
        return patched

    def _invalidate_correlators(self, edge: EdgeKey) -> None:
        stale = [
            key
            for key in self._correlators
            if key[0] == edge or key[1] == edge
        ]
        for key in stale:
            del self._correlators[key]

    def _apply_quality(
        self, result: PathmapResult, now: float, block_start: int
    ) -> None:
        """Degraded-mode refresh: derive per-edge DataQuality from the
        transport's gap/liveness state, annotate the result, publish the
        transport health signals."""
        receiver = self._receiver
        assert receiver is not None
        transport = self.transport or TransportConfig()
        # Slide the gap bookkeeping with the window.
        cutoff = block_start - (self._num_blocks - 1) * self._block_quanta
        for edge in list(self._gap_blocks):
            kept = {s for s in self._gap_blocks[edge] if s >= cutoff}
            if kept:
                self._gap_blocks[edge] = kept
            else:
                del self._gap_blocks[edge]
        statuses = receiver.statuses(now)
        self._publish_liveness_transitions(statuses, now)
        rounds = min(self._refreshes, self._num_blocks)
        edge_quality: Dict[EdgeKey, DataQuality] = {}
        for edge in self._blocks:
            gap_ratio = (
                len(self._gap_blocks.get(edge, ())) / rounds if rounds else 0.0
            )
            owner = receiver.edge_owner(edge)
            owner_state = statuses[owner].state if owner in statuses else None
            if owner_state == TRACER_DEAD or gap_ratio > transport.stale_gap_ratio:
                edge_quality[edge] = DataQuality(QUALITY_STALE, gap_ratio)
            elif gap_ratio > 0.0 or owner_state == TRACER_LAGGING:
                edge_quality[edge] = DataQuality(QUALITY_DEGRADED, gap_ratio)
            else:
                edge_quality[edge] = FRESH_QUALITY
        score = overall_quality(edge_quality.values())
        result.annotate_quality(edge_quality, score)
        self.quality_score = score
        self.latest_edge_quality = edge_quality
        self._m_quality.set(score)
        live = sum(1 for s in statuses.values() if s.state == TRACER_LIVE)
        self._m_live_tracers.set(live)
        self._m_stale_tracers.set(len(statuses) - live)
        self._sync_transport_counters()
        if score < 1.0:
            self.events.publish(
                EVENT_DEGRADED_REFRESH,
                now,
                quality=score,
                degraded_edges=sum(1 for q in edge_quality.values() if not q.ok),
                stale_tracers=len(statuses) - live,
            )

    def _publish_liveness_transitions(
        self, statuses: Dict[NodeId, "object"], now: float
    ) -> None:
        for node, status in statuses.items():
            previous = self._tracer_states.get(node, TRACER_LIVE)
            if status.state != previous:
                self._tracer_states[node] = status.state
                self.events.publish(
                    EVENT_TRACER_STALE,
                    now,
                    node=node,
                    state=status.state,
                    previous=previous,
                    last_heard=status.last_heard,
                )

    def _sync_transport_counters(self) -> None:
        """Mirror the receiver's cumulative stream tallies into the
        metrics registry as counter deltas."""
        receiver = self._receiver
        assert receiver is not None
        totals = receiver.totals()
        for key, metric in (
            ("gaps", self._m_t_gaps),
            ("duplicates", self._m_t_duplicates),
            ("reordered", self._m_t_reordered),
            ("stale_epoch_drops", self._m_t_stale_epoch),
        ):
            delta = totals[key] - self._transport_totals.get(key, 0)
            if delta > 0:
                metric.inc(delta)
            self._transport_totals[key] = totals[key]

    # -- steady-state confidence and adaptivity ------------------------------------

    def _class_reference_edges(self) -> List[RefKey]:
        """Every (client, front-end) reference edge with block history,
        in sorted order (iteration order must not depend on dict history
        so refreshes stay reproducible)."""
        return sorted(
            edge
            for edge in self._blocks
            if edge[0] in self._clients and edge[1] not in self._clients
        )

    def _apply_confidence(self, result: PathmapResult, now: float) -> None:
        """Grade every service class's reference signal against the
        steady-state assumption and annotate the result. Runs serially
        after the DFS, so ``workers`` never affects the verdicts."""
        reports: Dict[RefKey, ConfidenceReport] = {}
        for class_key in self._class_reference_edges():
            reports[class_key] = window_confidence(
                self._blocks[class_key],
                quantum=self.config.quantum,
                mass_per_message=self.config.sampling_quanta,
            )
        result.annotate_confidence(reports)
        self.latest_confidence = reports
        self.confidence_score = result.confidence
        self._m_confidence.set(result.confidence)
        low = {k: r for k, r in reports.items() if not r.ok}
        self._refresh_low_confidence = len(low)
        if low:
            self._m_low_confidence.inc()
            for class_key, report in sorted(low.items()):
                self.events.publish(
                    EVENT_LOW_CONFIDENCE,
                    now,
                    service_class=f"{class_key[0]}@{class_key[1]}",
                    score=report.score,
                    stability=report.stability,
                    recency=report.recency,
                    threshold=DEFAULT_LOW_CONFIDENCE,
                )

    def _update_recommendations(self, result: PathmapResult) -> None:
        """Refresh the per-class tuned-parameter recommendations from the
        confidence reports' traffic statistics (``adaptive=True``)."""
        from repro.core.autotune import (
            TrafficStats,
            autotune_config,
            observed_delay_bound,
        )
        from repro.core.confidence import DEFAULT_BINS_PER_BLOCK

        rounds = min(self._refreshes, self._num_blocks)
        duration = rounds * self.config.refresh_interval
        bin_seconds = self.config.refresh_interval / DEFAULT_BINS_PER_BLOCK
        recommendations: Dict[RefKey, PathmapConfig] = {}
        for class_key, report in self.latest_confidence.items():
            if report.mean_rate <= 0 or duration <= 0:
                continue
            graph = result.graphs.get(class_key)
            delay_bound = (
                observed_delay_bound(graph) if graph is not None else None
            )
            # Excess Fano factor = excess CV^2 of bin counts x mean bin
            # count (F = cv2 * mean).
            burstiness = report.excess_cv2 * report.mean_rate * bin_seconds
            stats = TrafficStats.from_rate(
                report.mean_rate,
                duration,
                burstiness=burstiness,
                delay_bound=delay_bound,
            )
            recommendations[class_key] = autotune_config(self.config, stats)
        self.latest_recommendations = recommendations

    def rewindow(self, cutoff: float) -> int:
        """Blank all block history that ends at or before ``cutoff``.

        Change-point response: once a detected shift invalidates the
        steady-state assumption for the pre-change past, the engine
        replaces every affected block with silence and invalidates the
        correlators touching it (the same lazy-rebuild machinery used for
        transport late-block patching). The next refresh then computes
        its graphs as if the window began at the cutoff -- delay
        estimates converge on the new regime in one refresh instead of
        bleeding the old regime for a full window length.

        Returns the number of non-empty blocks blanked.
        """
        if self._base_quantum is None:
            raise AnalysisError("engine was never attached")
        tau = self.config.quantum
        cutoff_quantum = int(round(cutoff / tau))
        blanked = 0
        for edge, deque_ in self._blocks.items():
            touched = False
            for index, block in enumerate(deque_):
                if block.start + self._block_quanta > cutoff_quantum:
                    break
                if block.num_runs:
                    deque_[index] = RunLengthSeries.empty(
                        block.start, self._block_quanta, tau
                    )
                    blanked += 1
                    touched = True
            if touched:
                self._invalidate_correlators(edge)
        if blanked:
            self.rewindows += 1
            self._m_rewindows.inc()
        return blanked

    def restart_tracer(self, node_id: NodeId) -> None:
        """Simulate a tracer crash/restart: captured state is lost, the
        transport epoch bumps (so pre-restart blocks are never
        resurrected) and all per-edge sequence streams reset."""
        if self._topology is not None:
            tracer = self._topology.fabric.tracer(node_id)
            if tracer is not None:
                tracer.restart()
        if self._receiver is not None:
            self._link_for(node_id).restart()

    def transport_summary(self, now: Optional[float] = None) -> dict:
        """JSON-able snapshot of transport health (``repro stats``)."""
        if self._receiver is None:
            return {"enabled": False}
        if now is None:
            now = self.latest_refresh_time if self.latest_refresh_time else 0.0
        return {
            "enabled": True,
            "quality_score": self.quality_score,
            "totals": self._receiver.totals(),
            "tracers": {
                node: status.to_dict()
                for node, status in sorted(self._receiver.statuses(now).items())
            },
            "links": {
                node: {
                    "epoch": link.epoch,
                    "restarts": link.restarts,
                    "frames_sent": link.frames_sent,
                }
                for node, link in sorted(self._links.items())
            },
            "channels": {
                node: channel.stats()
                for node, channel in sorted(self.transport_channels.items())
            },
            "degraded_edges": {
                f"{src}->{dst}": quality.to_dict()
                for (src, dst), quality in sorted(self.latest_edge_quality.items())
                if not quality.ok
            },
        }

    def _append_to_correlators(self) -> None:
        if not self.batched:
            self._append_per_pair()
            return
        started = time.perf_counter()
        # Reference-grouped batch path: correlators sharing one reference
        # edge hold identical x-side windows (they replay the same block
        # history), so all their new pair products can come from one
        # batch_lag_products call per pending x block.
        groups: Dict[RefKey, List[Tuple[EdgeKey, IncrementalCorrelator]]] = {}
        for (ref_edge, edge), correlator in self._correlators.items():
            groups.setdefault(ref_edge, []).append((edge, correlator))
        if self._pool is not None and len(groups) > 1:
            skipped = sum(self._pool.map(self._append_group, groups.items()))
        else:
            skipped = sum(self._append_group(item) for item in groups.items())
        self._refresh_skips = skipped
        self._m_batch.observe(time.perf_counter() - started)

    def _append_per_pair(self) -> None:
        """Legacy refresh: one kernel invocation per (reference, edge) pair.

        The whole loop is ledgered as one ``legacy_pair`` kernel sample
        (rows = correlator appends) -- per-append timing would cost more
        than the appends themselves on quiet windows.
        """
        kernel_started = time.perf_counter()
        try:
            if self.tracer.enabled:
                # Traced path: one span per correlator update, labelled by the
                # (reference, edge) pair it maintains.
                for (ref_edge, edge), correlator in self._correlators.items():
                    with self.tracer.span(
                        "correlator.append",
                        ref=f"{ref_edge[0]}->{ref_edge[1]}",
                        edge=f"{edge[0]}->{edge[1]}",
                    ):
                        correlator.append(self._blocks[ref_edge][-1], self._blocks[edge][-1])
                return
            # Untraced hot path: kept span-free so the disabled-tracing
            # overhead stays at one attribute check per refresh, not per edge.
            for (ref_edge, edge), correlator in self._correlators.items():
                ref_block = self._blocks[ref_edge][-1]
                edge_block = self._blocks[edge][-1]
                correlator.append(ref_block, edge_block)
        finally:
            self.ledger.record_kernel(
                KERNEL_LEGACY,
                rows=len(self._correlators),
                seconds=time.perf_counter() - kernel_started,
            )

    def _group_vectors(
        self,
        x_block: RunLengthSeries,
        y_blocks: List[RunLengthSeries],
        ys_sparse: List[SeriesLike],
        max_lag: int,
    ) -> Optional[np.ndarray]:
        """Pair-product rows of one pending x block against every batched
        group member, dispatched by a density cost model.

        The sparse batch kernel touches every (x sample, y sample) pair
        within ``max_lag``, so its cost explodes on smeared (near-dense)
        blocks, where the run-length kernel -- whose cost scales with run
        counts, not sample counts -- stays flat. Spike trains are the
        opposite regime. Both estimates are pure functions of the blocks,
        so grouped appends, history replays and parallel shards all make
        the identical choice and stay bit-for-bit reproducible.

        With ``measured_dispatch`` on (and both kernel EWMAs warmed), the
        comparison weighs each side's dispatch units by the ledger's
        *measured* ns/unit instead of the modeled constant. Both kernels
        produce bitwise-identical lag products, so the choice never
        changes the output -- only where the time goes.

        Kernel timing is recorded per dispatch group (a handful of
        ``perf_counter`` calls per pending x block), never per row.
        """
        if block_is_quiet(x_block):
            return None
        xs = x_block.to_sparse()
        rows: List[Optional[np.ndarray]] = [None] * len(y_blocks)
        batched_rows: List[int] = []
        rle_rows: List[int] = []
        sparse_units_total = 0.0
        rle_units_total = 0.0
        ns_sparse = ns_rle = None
        if self.measured_dispatch:
            ns_sparse = self.ledger.ns_per_unit(KERNEL_SPARSE_BATCH)
            ns_rle = self.ledger.ns_per_unit(KERNEL_RLE)
        measured = ns_sparse is not None and ns_rle is not None
        for i, (y_block, ys) in enumerate(zip(y_blocks, ys_sparse)):
            span = max(int(ys.indices[-1]) - int(ys.indices[0]) + 1, 1)
            sparse_units = sparse_dispatch_units(
                xs.indices.size, ys.indices.size, span, max_lag
            )
            rle_units = rle_dispatch_units(x_block.num_runs, y_block.num_runs)
            if measured:
                choose_sparse = sparse_units * ns_sparse <= rle_units * ns_rle
            else:
                choose_sparse = sparse_units <= MODELED_RLE_COST_RATIO * rle_units
            if choose_sparse:
                batched_rows.append(i)
                sparse_units_total += sparse_units
            else:
                rle_rows.append(i)
                rle_units_total += rle_units
        record = self.ledger.record_kernel if self.ledger.enabled else None
        if rle_rows:
            rle_started = time.perf_counter()
            for i in rle_rows:
                rows[i] = _pair_products(x_block, y_blocks[i], max_lag)
            if record is not None:
                # RunLengthSeries data: starts + counts (int64) + values
                # (float64) = 24 bytes per run.
                record(
                    KERNEL_RLE,
                    rows=len(rle_rows),
                    seconds=time.perf_counter() - rle_started,
                    work_units=rle_units_total,
                    bytes_touched=24 * (
                        x_block.num_runs * len(rle_rows)
                        + sum(y_blocks[i].num_runs for i in rle_rows)
                    ),
                )
        if not batched_rows:
            return np.stack(rows)
        batch_started = time.perf_counter()
        if len(batched_rows) == len(y_blocks):
            mat = batch_lag_products(xs, ys_sparse, max_lag)
            out: Optional[np.ndarray] = mat
        else:
            mat = batch_lag_products(
                xs, [ys_sparse[i] for i in batched_rows], max_lag
            )
            for r, i in enumerate(batched_rows):
                rows[i] = mat[r]
            out = None
        if record is not None:
            # DensityTimeSeries data: indices (int64) + values (float64)
            # = 16 bytes per nonzero.
            record(
                KERNEL_SPARSE_BATCH,
                rows=len(batched_rows),
                seconds=time.perf_counter() - batch_started,
                work_units=sparse_units_total,
                bytes_touched=16 * (
                    xs.indices.size
                    + sum(ys_sparse[i].indices.size for i in batched_rows)
                ),
            )
        return out if out is not None else np.stack(rows)

    def _append_group(
        self,
        group: Tuple[RefKey, List[Tuple[EdgeKey, IncrementalCorrelator]]],
    ) -> int:
        """Append the newest blocks to every correlator of one reference
        group, batching all non-quiet edges into shared kernels. Returns
        the number of pair products skipped as quiet."""
        ref_edge, members = group
        x_new = self._blocks[ref_edge][-1]
        traced = self.tracer.enabled
        skipped = 0
        # Split the group: quiet newest edge blocks produce zero vectors
        # only (the plain optimized append skips every kernel for them);
        # the rest share one batch per pending x block. A member whose
        # window disagrees with the group's (cannot happen through the
        # normal refresh cycle, but cheap to guard) also takes the plain
        # path, which computes its own kernels.
        batch: List[Tuple[EdgeKey, IncrementalCorrelator, RunLengthSeries]] = []
        plain: List[Tuple[EdgeKey, IncrementalCorrelator, RunLengthSeries]] = []
        canonical: Optional[List[SeriesLike]] = None
        for edge, correlator in members:
            y_new = self._blocks[edge][-1]
            if block_is_quiet(y_new):
                plain.append((edge, correlator, y_new))
                continue
            pending = correlator.pending_pair_blocks()
            if canonical is None:
                canonical = pending
            elif len(pending) != len(canonical) or any(
                a is not b for a, b in zip(pending, canonical)
            ):
                plain.append((edge, correlator, y_new))
                continue
            batch.append((edge, correlator, y_new))
        if batch:
            max_lag = self.config.max_lag_quanta
            y_blocks = [y for _, _, y in batch]
            ys = [
                y.to_sparse() if isinstance(y, RunLengthSeries) else y
                for y in y_blocks
            ]
            mats = [
                self._group_vectors(x_p, y_blocks, ys, max_lag)
                for x_p in list(canonical or []) + [x_new]
            ]
            for row, (edge, correlator, y_new) in enumerate(batch):
                vectors = [None if m is None else m[row].copy() for m in mats]
                if traced:
                    with self.tracer.span(
                        "correlator.append",
                        ref=f"{ref_edge[0]}->{ref_edge[1]}",
                        edge=f"{edge[0]}->{edge[1]}",
                    ):
                        skipped += correlator.append(x_new, y_new, pair_vectors=vectors)
                else:
                    skipped += correlator.append(x_new, y_new, pair_vectors=vectors)
        if plain:
            # Quiet / mismatched members take the per-pair append path
            # (which computes its own kernels); ledger them as one
            # legacy_pair sample per group.
            plain_started = time.perf_counter()
            for edge, correlator, y_new in plain:
                if traced:
                    with self.tracer.span(
                        "correlator.append",
                        ref=f"{ref_edge[0]}->{ref_edge[1]}",
                        edge=f"{edge[0]}->{edge[1]}",
                    ):
                        skipped += correlator.append(x_new, y_new)
                else:
                    skipped += correlator.append(x_new, y_new)
            self.ledger.record_kernel(
                KERNEL_LEGACY,
                rows=len(plain),
                seconds=time.perf_counter() - plain_started,
            )
        return skipped

    # -- correlation provider (plugged into pathmap) ----------------------------------------

    def _provide_correlation(
        self,
        reference: SeriesLike,
        signal: SeriesLike,
        ref_key: RefKey,
        edge_key: EdgeKey,
    ) -> CorrelationSeries:
        correlator = self._correlators.get((ref_key, edge_key))
        if correlator is None:
            with self._tally_lock:
                self._refresh_cache_misses += 1
            self._m_cache_misses.inc()
            correlator = self._create_correlator(ref_key, edge_key)
        else:
            with self._tally_lock:
                self._refresh_cache_hits += 1
            self._m_cache_hits.inc()
        series = correlator.correlation()
        if correlator.last_served_from_cache:
            with self._tally_lock:
                self._refresh_corr_cache_hits += 1
        return series

    def _create_correlator(self, ref_key: RefKey, edge_key: EdgeKey) -> IncrementalCorrelator:
        ref_blocks = self._blocks.get(ref_key)
        edge_blocks = self._blocks.get(edge_key)
        if ref_blocks is None or edge_blocks is None:
            raise AnalysisError(
                f"no block history for correlator {ref_key} x {edge_key}"
            )
        correlator = IncrementalCorrelator(
            max_lag=self.config.max_lag_quanta,
            num_blocks=self._num_blocks,
            quantum=self.config.quantum,
            metrics=self.metrics,
            optimized=self.batched,
        )
        for ref_block, edge_block in zip(ref_blocks, edge_blocks):
            if self.batched:
                # Replay through the same batch kernel the grouped append
                # uses, so a correlator rebuilt from history (new service
                # class, transport late-block invalidation) is bit-identical
                # to one maintained incrementally across refreshes.
                self._batched_replay(correlator, ref_block, edge_block)
            else:
                correlator.append(ref_block, edge_block)
        self._correlators[(ref_key, edge_key)] = correlator
        return correlator

    def _batched_replay(
        self,
        correlator: IncrementalCorrelator,
        x_block: RunLengthSeries,
        y_block: RunLengthSeries,
    ) -> int:
        """One append computed via single-row :meth:`_group_vectors` calls
        (the quiet-skip and kernel-dispatch structure mirrors the grouped
        path exactly, so a replayed correlator is bit-identical to a
        maintained one)."""
        if block_is_quiet(y_block):
            return correlator.append(x_block, y_block)
        max_lag = self.config.max_lag_quanta
        y_blocks = [y_block]
        ys = [y_block.to_sparse() if isinstance(y_block, RunLengthSeries) else y_block]
        vectors: List[Optional[np.ndarray]] = []
        for x_p in correlator.pending_pair_blocks() + [x_block]:
            mat = self._group_vectors(x_p, y_blocks, ys, max_lag)
            vectors.append(None if mat is None else mat[0])
        return correlator.append(x_block, y_block, pair_vectors=vectors)

    # -- window state queried by the pathmap DFS ----------------------------------------------

    def _active_edges(self) -> Set[EdgeKey]:
        return {
            edge
            for edge, blocks in self._blocks.items()
            if any(block.num_runs for block in blocks)
        }

    def _edge_series(self, edge: EdgeKey) -> DensityTimeSeries:
        blocks = self._blocks.get(edge)
        if not blocks:
            raise AnalysisError(f"no blocks for edge {edge}")
        # Single-pass concatenation (mirrors IncrementalCorrelator._concat):
        # the pairwise concatenated() chain re-copied the growing prefix
        # for every block, i.e. quadratic in the window depth.
        sparse = [block.to_sparse() for block in blocks]
        return DensityTimeSeries(
            np.concatenate([s.indices for s in sparse]),
            np.concatenate([s.values for s in sparse]),
            sparse[0].start,
            sum(s.length for s in sparse),
            sparse[0].quantum,
        )

    @property
    def correlator_count(self) -> int:
        return len(self._correlators)


class _EngineWindow(TraceWindow):
    """TraceWindow view over the engine's current block history."""

    def __init__(self, engine: E2EProfEngine) -> None:
        self._engine = engine
        self._active = engine._active_edges()
        self._clients = engine._clients

    def front_end_nodes(self) -> List[NodeId]:
        return sorted(
            {
                dst
                for (src, dst) in self._active
                if src in self._clients and dst not in self._clients
            }
        )

    def clients_of(self, node: NodeId) -> List[NodeId]:
        return sorted(
            src for (src, dst) in self._active if dst == node and src in self._clients
        )

    def destinations_of(self, node: NodeId) -> List[NodeId]:
        return sorted(dst for (src, dst) in self._active if src == node)

    def is_client(self, node: NodeId) -> bool:
        return node in self._clients

    def edge_series(self, src: NodeId, dst: NodeId) -> DensityTimeSeries:
        return self._engine._edge_series((src, dst))
