"""The online E2EProf engine (paper Sections 3.3-3.6).

This is the analyzer node: every refresh interval ``dW`` it pulls one
RLE-encoded block per edge from the per-node tracers (the streamed wire
format of Section 3.6), feeds the blocks into cached
:class:`~repro.core.incremental.IncrementalCorrelator` instances -- one
per (service class, edge) pair -- and re-runs the pathmap DFS using those
cached correlations. Only the newest ``dW`` of trace is ever correlated,
which is what makes the per-refresh cost constant in ``W`` (the flat
'incremental' curve of Figure 9).

Subscribers receive every fresh :class:`~repro.core.pathmap.PathmapResult`
-- the paper's long-term vision of E2EProf as "a basic service,
'pluggable' into any distributed system" whose subscribers "receive
real-time information about their service paths".

Block timing: blocks are flushed one sampling window behind real time so
every message contributing to a block's boxcar has already been observed;
the analysis therefore lags reality by ``omega`` (50 ms at RUBiS
settings), which is negligible against ``dW``.
"""

from __future__ import annotations

import collections
import logging
import time
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.config import PathmapConfig
from repro.core.correlation import CorrelationSeries, SeriesLike
from repro.core.incremental import IncrementalCorrelator
from repro.core.pathmap import Pathmap, PathmapResult, TraceWindow
from repro.core.rle import RunLengthSeries
from repro.core.timeseries import DensityTimeSeries
from repro.errors import AnalysisError
from repro.obs.events import EVENT_SUBSCRIBER_ERROR, EventBus
from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder, RefreshFrame
from repro.obs.registry import MetricsRegistry
from repro.obs.sample import MetricsSample
from repro.obs.spans import SpanTracer
from repro.simulation.des import PeriodicTask
from repro.simulation.topology import Topology
from repro.tracing.records import NodeId
from repro.tracing.wire import decode_block, encode_block

logger = logging.getLogger(__name__)

EdgeKey = Tuple[NodeId, NodeId]
RefKey = Tuple[NodeId, NodeId]
Subscriber = Callable[[float, PathmapResult], None]
MetricsSubscriber = Callable[[float, PathmapResult, MetricsSample], None]


class E2EProfEngine:
    """Online sliding-window service-path analysis over streamed blocks."""

    def __init__(
        self,
        config: PathmapConfig,
        clients: Optional[Set[NodeId]] = None,
        wire_fidelity: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        events: Optional[EventBus] = None,
        flight_capacity: int = DEFAULT_FLIGHT_CAPACITY,
    ) -> None:
        self.config = config
        self._clients: Set[NodeId] = set(clients or ())
        #: When True, every streamed block is round-tripped through the
        #: binary wire format (tracing.wire) before analysis -- proving
        #: the bytes actually sent over the network carry everything the
        #: analysis needs (values pass through float32).
        self.wire_fidelity = wire_fidelity
        self.wire_bytes_received = 0
        #: Self-observability registry. Defaults to a fresh **disabled**
        #: registry, so the uninstrumented cost model of Figure 9 holds
        #: unless an operator opts in (pass an enabled registry, or call
        #: ``engine.metrics.enable()`` before ``attach``).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Span tracer for the refresh pipeline. Defaults to a fresh
        #: **disabled** tracer (same opt-in contract as ``metrics``).
        self.tracer = tracer if tracer is not None else SpanTracer()
        #: Diagnostic event bus; change/anomaly/SLA/scheduler subscribers
        #: attached via their ``subscribe_to(engine)`` publish here.
        self.events = events if events is not None else EventBus(tracer=self.tracer)
        #: Always-on flight recorder of the last ``flight_capacity``
        #: refreshes (spans + events + per-refresh sample).
        self.flight = FlightRecorder(capacity=flight_capacity)
        self._num_blocks = max(1, round(config.window / config.refresh_interval))
        self._block_quanta = config.refresh_quanta
        # Aligned per-edge block history (destination-side, RLE).
        self._blocks: Dict[EdgeKey, Deque[RunLengthSeries]] = {}
        self._refreshes = 0
        self._base_quantum: Optional[int] = None
        self._correlators: Dict[Tuple[RefKey, EdgeKey], IncrementalCorrelator] = {}
        self._subscribers: List[Subscriber] = []
        self._metrics_subscribers: List[MetricsSubscriber] = []
        self._pathmap = Pathmap(
            config,
            correlation_provider=self._provide_correlation,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.latest_result: Optional[PathmapResult] = None
        self.latest_refresh_time: Optional[float] = None
        #: Wall-clock seconds the most recent refresh took (block ingest +
        #: incremental correlator updates + pathmap DFS). The Figure 9
        #: 'incremental' curve measures exactly this.
        self.last_refresh_seconds: float = 0.0
        #: MetricsSample of the most recent refresh (None before the first).
        self.latest_sample: Optional[MetricsSample] = None
        self._topology: Optional[Topology] = None
        self._task: Optional[PeriodicTask] = None
        # Per-refresh correlator-cache tallies (plain ints: counted even
        # with the registry disabled, so MetricsSamples are always real).
        self._refresh_cache_hits = 0
        self._refresh_cache_misses = 0
        #: Subscriber callbacks that raised and were isolated (all time,
        #: counted regardless of the registry switch).
        self.subscriber_errors = 0
        m = self.metrics
        self._m_refresh = m.histogram(
            "engine_refresh_seconds",
            "Wall-clock seconds per engine refresh (ingest + correlators + DFS)",
        )
        self._m_pathmap = m.histogram(
            "engine_pathmap_seconds", "Seconds of each refresh spent in the pathmap DFS"
        )
        self._m_fanout = m.histogram(
            "engine_fanout_seconds", "Seconds spent fanning each result out to subscribers"
        )
        self._m_refreshes = m.counter("engine_refreshes_total", "Engine refreshes run")
        self._m_blocks = m.counter(
            "engine_blocks_ingested_total", "Streamed RLE blocks pulled from tracers"
        )
        self._m_wire_bytes = m.counter(
            "engine_wire_bytes_total", "Wire-format bytes received (wire_fidelity mode)"
        )
        self._m_cache_hits = m.counter(
            "engine_correlator_cache_hits_total",
            "Correlations served by an existing incremental correlator",
        )
        self._m_cache_misses = m.counter(
            "engine_correlator_cache_misses_total",
            "Correlations that had to build a correlator from block history",
        )
        self._m_correlators = m.gauge(
            "engine_correlators", "Live incremental correlators"
        )
        self._m_edges = m.gauge(
            "engine_tracked_edges", "Edges with block history in the current window"
        )
        self._m_subscriber_errors = m.counter(
            "obs_subscriber_errors_total",
            "Subscriber callbacks that raised and were isolated during fan-out",
        )

    # -- wiring ---------------------------------------------------------------------

    def subscribe(self, callback: Subscriber) -> None:
        """Receive ``(time, PathmapResult)`` after every refresh."""
        self._subscribers.append(callback)

    def subscribe_metrics(self, callback: MetricsSubscriber) -> None:
        """Receive ``(time, PathmapResult, MetricsSample)`` after every
        refresh -- the engine's own health signals alongside its analysis
        (see :mod:`repro.obs.sample`). Works with the registry disabled."""
        self._metrics_subscribers.append(callback)

    def attach(self, topology: Topology, start_at: Optional[float] = None) -> None:
        """Drive refreshes from a simulated topology's clock.

        The first refresh fires one ``dW`` after ``start_at`` (default:
        attach time) and every ``dW`` thereafter.
        """
        if self._topology is not None:
            raise AnalysisError("engine is already attached")
        self._topology = topology
        self._clients |= topology.collector.clients
        if self.metrics.enabled:
            # Only bound when observing is on: tracer.observe runs once per
            # simulated packet, so unbound tracers pay nothing at all.
            for tracer in topology.fabric.tracers.values():
                tracer.bind_metrics(self.metrics)
        begin = start_at if start_at is not None else topology.sim.now
        tau = self.config.quantum
        # Anchor block boundaries one sampling window behind the wall
        # clock so flushed blocks are complete (see module docstring).
        self._base_quantum = int(round(begin / tau)) - self.config.sampling_quanta
        self._task = PeriodicTask(
            topology.sim,
            self.config.refresh_interval,
            self._on_tick,
            start_at=begin + self.config.refresh_interval,
        )

    def detach(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self._topology = None

    # -- refresh ------------------------------------------------------------------------

    def _on_tick(self, now: float) -> None:
        self.refresh(now)

    def refresh(self, now: float) -> PathmapResult:
        """Pull one block per edge, update correlators, recompute graphs.

        The whole refresh runs under an ``engine.refresh`` root span
        (ingest -> correlator updates -> pathmap DFS -> fan-out children
        when the tracer is enabled), and every refresh -- including one
        that raises -- leaves a frame in the flight recorder.
        """
        sequence = self._refreshes
        events_mark = time.perf_counter()
        try:
            with self.tracer.span("engine.refresh", refresh=sequence, time=now):
                result = self._do_refresh(now)
        finally:
            self._record_flight_frame(now, sequence, events_mark)
        return result

    def _do_refresh(self, now: float) -> PathmapResult:
        started = time.perf_counter()
        if self._topology is None:
            raise AnalysisError("engine is not attached to a topology")
        if self._base_quantum is None:
            raise AnalysisError("engine was never attached")
        # Clients may be added while running (new service classes).
        self._clients |= self._topology.collector.clients
        block_start = self._base_quantum + self._refreshes * self._block_quanta
        self._refresh_cache_hits = 0
        self._refresh_cache_misses = 0
        wire_metrics = self.metrics if self.metrics.enabled else None
        wire_bytes_before = self.wire_bytes_received

        fresh: Dict[EdgeKey, RunLengthSeries] = {}
        with self.tracer.span("engine.ingest") as ingest_span:
            for node_id, tracer in self._topology.fabric.tracers.items():
                with self.tracer.span("tracer.flush", node=node_id):
                    for edge, block in tracer.flush_block(
                        self.config, block_start, self._block_quanta
                    ).items():
                        src, dst = edge
                        # Destination-side capture wins (Algorithm 1);
                        # source-side only for edges into untraced clients.
                        if node_id == dst or (dst in self._clients and node_id == src):
                            if self.wire_fidelity:
                                payload = encode_block(block, metrics=wire_metrics)
                                self.wire_bytes_received += len(payload)
                                block = decode_block(payload, metrics=wire_metrics)
                            fresh[edge] = block
            ingest_span.set_attribute("blocks", len(fresh))

        self._refreshes += 1
        self._store_blocks(fresh, block_start)
        with self.tracer.span(
            "engine.correlators", correlators=len(self._correlators)
        ):
            self._append_to_correlators()

        window = _EngineWindow(self)
        pathmap_started = time.perf_counter()
        with self.tracer.span("engine.pathmap"):
            result = self._pathmap.analyze(window)
        pathmap_seconds = time.perf_counter() - pathmap_started
        self.latest_result = result
        self.latest_refresh_time = now
        self.last_refresh_seconds = time.perf_counter() - started
        self._m_refresh.observe(self.last_refresh_seconds)
        self._m_pathmap.observe(pathmap_seconds)
        self._m_refreshes.inc()
        self._m_blocks.inc(len(fresh))
        wire_bytes = self.wire_bytes_received - wire_bytes_before
        self._m_wire_bytes.inc(wire_bytes)
        self._m_correlators.set(len(self._correlators))
        self._m_edges.set(len(self._blocks))
        fanout_started = time.perf_counter()
        with self.tracer.span(
            "engine.fanout", subscribers=len(self._subscribers)
        ):
            for subscriber in self._subscribers:
                self._notify(subscriber, now, (now, result))
        fanout_seconds = time.perf_counter() - fanout_started
        self._m_fanout.observe(fanout_seconds)
        self.latest_sample = MetricsSample(
            time=now,
            refresh_seconds=self.last_refresh_seconds,
            pathmap_seconds=pathmap_seconds,
            fanout_seconds=fanout_seconds,
            blocks_ingested=len(fresh),
            wire_bytes=wire_bytes,
            correlators=len(self._correlators),
            cache_hits=self._refresh_cache_hits,
            cache_misses=self._refresh_cache_misses,
            correlations=result.stats.correlations,
            spikes=result.stats.spikes,
            nodes_visited=result.stats.nodes_visited,
        )
        with self.tracer.span(
            "engine.fanout_metrics", subscribers=len(self._metrics_subscribers)
        ):
            for metrics_subscriber in self._metrics_subscribers:
                self._notify(
                    metrics_subscriber, now, (now, result, self.latest_sample)
                )
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "refresh %d at t=%.3f: %d blocks, %d correlators, "
                "%d spikes, %.1f ms",
                self._refreshes,
                now,
                len(fresh),
                len(self._correlators),
                result.stats.spikes,
                self.last_refresh_seconds * 1e3,
            )
        return result

    def _notify(self, callback: Callable, now: float, args: Tuple) -> None:
        """Call one subscriber, isolated: a raising callback is logged,
        counted (``obs_subscriber_errors_total``) and published as a
        diagnostic event, but never aborts the refresh or starves the
        subscribers after it."""
        name = getattr(callback, "__qualname__", None) or repr(callback)
        try:
            with self.tracer.span("engine.subscriber", subscriber=name):
                callback(*args)
        except Exception as exc:
            self.subscriber_errors += 1
            self._m_subscriber_errors.inc()
            logger.exception("subscriber %s raised during refresh fan-out", name)
            self.events.publish(
                EVENT_SUBSCRIBER_ERROR,
                now,
                subscriber=name,
                error=f"{type(exc).__name__}: {exc}",
            )

    def _record_flight_frame(
        self, now: float, sequence: int, events_mark: float
    ) -> None:
        """File one frame in the always-on flight recorder: the refresh's
        sample, its diagnostic events, and (when tracing) its spans."""
        spans = self.tracer.drain()
        sample = self.latest_sample
        sample_dict = (
            sample.to_dict() if sample is not None and sample.time == now else {}
        )
        self.flight.record(
            RefreshFrame(
                time=now,
                sequence=sequence,
                sample=sample_dict,
                spans=spans,
                events=self.events.events_since(events_mark),
            )
        )

    def dump_flight_record(self, last: Optional[int] = None) -> dict:
        """JSON-able dump of the last recorded refreshes (see
        :class:`repro.obs.flight.FlightRecorder`)."""
        return self.flight.dump(last)

    def _store_blocks(self, fresh: Dict[EdgeKey, RunLengthSeries], block_start: int) -> None:
        tau = self.config.quantum
        empty = RunLengthSeries.empty(block_start, self._block_quanta, tau)
        for edge in set(self._blocks) | set(fresh):
            deque_ = self._blocks.get(edge)
            if deque_ is None:
                # Newly seen edge: backfill silence so every deque is
                # aligned on the same block boundaries.
                deque_ = collections.deque(maxlen=self._num_blocks)
                backfill = min(self._refreshes - 1, self._num_blocks)
                for k in range(backfill, 0, -1):
                    start = block_start - k * self._block_quanta
                    deque_.append(
                        RunLengthSeries.empty(start, self._block_quanta, tau)
                    )
                self._blocks[edge] = deque_
            deque_.append(fresh.get(edge, empty))

    def _append_to_correlators(self) -> None:
        if self.tracer.enabled:
            # Traced path: one span per correlator update, labelled by the
            # (reference, edge) pair it maintains.
            for (ref_edge, edge), correlator in self._correlators.items():
                with self.tracer.span(
                    "correlator.append",
                    ref=f"{ref_edge[0]}->{ref_edge[1]}",
                    edge=f"{edge[0]}->{edge[1]}",
                ):
                    correlator.append(self._blocks[ref_edge][-1], self._blocks[edge][-1])
            return
        # Untraced hot path: kept span-free so the disabled-tracing
        # overhead stays at one attribute check per refresh, not per edge.
        for (ref_edge, edge), correlator in self._correlators.items():
            ref_block = self._blocks[ref_edge][-1]
            edge_block = self._blocks[edge][-1]
            correlator.append(ref_block, edge_block)

    # -- correlation provider (plugged into pathmap) ----------------------------------------

    def _provide_correlation(
        self,
        reference: SeriesLike,
        signal: SeriesLike,
        ref_key: RefKey,
        edge_key: EdgeKey,
    ) -> CorrelationSeries:
        correlator = self._correlators.get((ref_key, edge_key))
        if correlator is None:
            self._refresh_cache_misses += 1
            self._m_cache_misses.inc()
            correlator = self._create_correlator(ref_key, edge_key)
        else:
            self._refresh_cache_hits += 1
            self._m_cache_hits.inc()
        return correlator.correlation()

    def _create_correlator(self, ref_key: RefKey, edge_key: EdgeKey) -> IncrementalCorrelator:
        ref_blocks = self._blocks.get(ref_key)
        edge_blocks = self._blocks.get(edge_key)
        if ref_blocks is None or edge_blocks is None:
            raise AnalysisError(
                f"no block history for correlator {ref_key} x {edge_key}"
            )
        correlator = IncrementalCorrelator(
            max_lag=self.config.max_lag_quanta,
            num_blocks=self._num_blocks,
            quantum=self.config.quantum,
            metrics=self.metrics,
        )
        for ref_block, edge_block in zip(ref_blocks, edge_blocks):
            correlator.append(ref_block, edge_block)
        self._correlators[(ref_key, edge_key)] = correlator
        return correlator

    # -- window state queried by the pathmap DFS ----------------------------------------------

    def _active_edges(self) -> Set[EdgeKey]:
        return {
            edge
            for edge, blocks in self._blocks.items()
            if any(block.num_runs for block in blocks)
        }

    def _edge_series(self, edge: EdgeKey) -> DensityTimeSeries:
        blocks = self._blocks.get(edge)
        if not blocks:
            raise AnalysisError(f"no blocks for edge {edge}")
        series = blocks[0].to_sparse()
        for block in list(blocks)[1:]:
            series = series.concatenated(block.to_sparse())
        return series

    @property
    def correlator_count(self) -> int:
        return len(self._correlators)


class _EngineWindow(TraceWindow):
    """TraceWindow view over the engine's current block history."""

    def __init__(self, engine: E2EProfEngine) -> None:
        self._engine = engine
        self._active = engine._active_edges()
        self._clients = engine._clients

    def front_end_nodes(self) -> List[NodeId]:
        return sorted(
            {
                dst
                for (src, dst) in self._active
                if src in self._clients and dst not in self._clients
            }
        )

    def clients_of(self, node: NodeId) -> List[NodeId]:
        return sorted(
            src for (src, dst) in self._active if dst == node and src in self._clients
        )

    def destinations_of(self, node: NodeId) -> List[NodeId]:
        return sorted(dst for (src, dst) in self._active if src == node)

    def is_client(self, node: NodeId) -> bool:
        return node in self._clients

    def edge_series(self, src: NodeId, dst: NodeId) -> DensityTimeSeries:
        return self._engine._edge_series((src, dst))
