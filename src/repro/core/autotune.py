"""Self-tuning analysis parameters (quantum / omega / T_u).

The paper fixes tau, omega and T_u per deployment (Section 3.5: "omega =
50 tau gave the best set of results") -- values an operator must guess.
Guessing wrong is expensive: a quantum much finer than the traffic's
inter-arrival scale wastes correlation work and drowns spikes in noise;
a coarse quantum with the recommended omega smears messages past the
delays being measured; a T_u below the real transaction delay truncates
the correlation lag range and silently loses deep edges.

This module derives those parameters from *observed* traffic instead:

* ``tau`` tracks the class's median inter-arrival time (a fixed fraction
  of it, snapped to a 1-2-5 grid so nearby workloads tune identically),
* ``omega`` starts at the paper's 50 quanta and shrinks as the observed
  burstiness grows (smearing a burst over a long boxcar destroys exactly
  the temporal signature correlation needs),
* ``T_u`` follows the observed end-to-end delay with headroom, instead
  of a worst-case guess.

All outputs are clamped to documented absolute bounds, every rule is a
pure function of the observed statistics, and tuning is idempotent:
feeding a tuned config back through the tuner with the same observations
returns the identical config. The tuner is deliberately *not* seeded or
randomized -- two analyzers watching the same traffic pick the same
parameters.

:class:`AdaptiveController` closes the loop online: it subscribes a
:class:`~repro.core.change_detection.ChangeDetector` to the engine and,
when a large per-edge delay shift is detected, asks the engine to
re-window -- blanking history from before the change so the delay
estimates converge on the new regime in one refresh instead of a full
window (the change-point-triggered re-windowing of YTrace-style bursty
regimes).
"""

from __future__ import annotations

import dataclasses
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.config import PathmapConfig
from repro.core.change_detection import ChangeDetector, ChangeEvent
from repro.errors import AnalysisError
from repro.obs.events import EVENT_REWINDOW

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import E2EProfEngine

# -- documented absolute bounds (the property tests pin these) ------------------

#: Smallest quantum the tuner will ever pick (100 microseconds).
TAU_MIN = 1e-4
#: Largest quantum the tuner will ever pick (1 second).
TAU_MAX = 1.0
#: The tuned quantum is the median inter-arrival time divided by this.
TAU_DIVISOR = 8.0
#: With a delay bound observed, the quantum also tracks the delay scale:
#: bound / DELAY_DIVISOR, so the whole delay structure spans ~one
#: paper-recommended omega of quanta. The smaller of the two candidates
#: wins (the analysis must resolve delays AND see enough arrivals).
DELAY_DIVISOR = 50.0
#: Sparsity floor: tau never drops below the median inter-arrival time
#: divided by this. Resolution the arrival process cannot fill adds no
#: delay information -- it only multiplies the correlation lags compared
#: against the spike threshold, and with thousands of lags the tallest
#: chance alignment starts clearing mean + 3 sigma.
TAU_SPARSITY_DIVISOR = 64.0
#: Smallest sampling window, in quanta (omega / tau).
OMEGA_QUANTA_MIN = 10
#: Largest sampling window, in quanta -- the paper's recommendation.
OMEGA_QUANTA_MAX = 50
#: T_u headroom: tuned T_u is this multiple of the *correlation
#: structure width* -- observed delay bound plus one sampling window
#: (each spike is a triangle of width ~2 omega centered at its delay).
#: The spike threshold is mean + k sigma over the whole lag range, so
#: the structure must occupy a small fraction of it for spikes to
#: clear the threshold; but every extra decade of empty lag range
#: admits more chance alignments, so the headroom is bounded both ways.
TU_HEADROOM = 5.0
#: T_u never drops below this many sampling windows (a lag range shorter
#: than a few omega cannot resolve any spike structure, while every
#: extra omega of lag range admits more chance alignments between
#: causally unrelated smooth density series -- both failure modes are
#: real, and 8 omegas sits between them).
TU_MIN_OMEGAS = 8.0
#: Absolute ceiling on the tuned T_u (seconds).
TU_MAX = 120.0


@dataclasses.dataclass(frozen=True)
class TrafficStats:
    """Observed per-class traffic statistics driving the tuner.

    All fields are plain observations -- nothing here depends on the
    analysis configuration, which is what makes tuning idempotent.
    """

    #: Messages observed on the class's reference edge.
    requests: int
    #: Observation span in seconds.
    duration: float
    #: Median inter-arrival time (seconds); 0 when < 2 requests.
    median_inter_arrival: float
    #: Burstiness index: excess Fano factor of binned counts (0 = Poisson).
    burstiness: float
    #: Observed end-to-end delay bound in seconds (e.g. the largest
    #: cumulative path delay from a calibration analysis); None = unknown.
    delay_bound: Optional[float] = None

    @classmethod
    def from_timestamps(
        cls,
        timestamps: Sequence[float],
        start: float,
        end: float,
        delay_bound: Optional[float] = None,
        bins: int = 24,
    ) -> "TrafficStats":
        """Compute stats from raw reference-edge timestamps in ``[start, end)``."""
        if end <= start:
            raise AnalysisError(f"empty observation span [{start}, {end})")
        stamps = np.sort(np.asarray(list(timestamps), dtype=np.float64))
        stamps = stamps[(stamps >= start) & (stamps < end)]
        duration = end - start
        if stamps.size < 2:
            return cls(
                requests=int(stamps.size),
                duration=duration,
                median_inter_arrival=0.0,
                burstiness=0.0,
                delay_bound=delay_bound,
            )
        gaps = np.diff(stamps)
        median_ia = float(np.median(gaps))
        counts, _ = np.histogram(stamps, bins=bins, range=(start, end))
        mean = counts.mean()
        fano = float(counts.var() / mean) if mean > 0 else 0.0
        return cls(
            requests=int(stamps.size),
            duration=duration,
            median_inter_arrival=median_ia,
            burstiness=max(0.0, fano - 1.0),
            delay_bound=delay_bound,
        )

    @classmethod
    def from_rate(
        cls,
        rate: float,
        duration: float,
        burstiness: float = 0.0,
        delay_bound: Optional[float] = None,
    ) -> "TrafficStats":
        """Stats from an estimated mean rate (the online engine sees
        density blocks, not raw timestamps; for a Poisson-like process
        the median inter-arrival is ``ln 2 / rate``)."""
        if rate <= 0 or duration <= 0:
            return cls(0, max(duration, 0.0), 0.0, max(0.0, burstiness), delay_bound)
        return cls(
            requests=int(round(rate * duration)),
            duration=duration,
            median_inter_arrival=math.log(2.0) / rate,
            burstiness=max(0.0, burstiness),
            delay_bound=delay_bound,
        )


def snap_to_grid(value: float) -> float:
    """Largest 1-2-5 decade grid value <= ``value`` (monotone in value).

    Snapping keeps tuned quanta stable across small traffic fluctuations
    and guarantees clean omega multiples.
    """
    if value <= 0:
        raise AnalysisError(f"cannot snap non-positive value {value}")
    exponent = math.floor(math.log10(value))
    base = 10.0 ** exponent
    for mantissa in (5.0, 2.0, 1.0):
        candidate = mantissa * base
        # Tolerate float representation error at grid points.
        if candidate <= value * (1.0 + 1e-9):
            return candidate
    return base  # pragma: no cover - loop always returns at mantissa 1


def snap_up_to_grid(value: float) -> float:
    """Smallest 1-2-5 decade grid value >= ``value`` (monotone in value)."""
    if value <= 0:
        raise AnalysisError(f"cannot snap non-positive value {value}")
    exponent = math.floor(math.log10(value))
    base = 10.0 ** exponent
    for mantissa in (1.0, 2.0, 5.0):
        candidate = mantissa * base
        if candidate >= value * (1.0 - 1e-9):
            return candidate
    return 10.0 * base


def tuned_quantum(stats: TrafficStats) -> float:
    """Tuned tau, grid-snapped and clamped to ``[TAU_MIN, TAU_MAX]``.

    The candidate is the median inter-arrival time / TAU_DIVISOR; when a
    delay bound has been observed, ``delay_bound / DELAY_DIVISOR`` also
    competes and the smaller wins -- slow arrivals over fast services
    still need a quantum fine enough to resolve the service delays.
    Monotone non-decreasing in the inter-arrival scale (at fixed delay
    bound) and in the delay bound (at fixed inter-arrival scale).
    """
    if stats.median_inter_arrival <= 0:
        return snap_to_grid(TAU_MIN)
    target = stats.median_inter_arrival / TAU_DIVISOR
    if stats.delay_bound is not None and stats.delay_bound > 0:
        target = min(target, stats.delay_bound / DELAY_DIVISOR)
    target = max(target, stats.median_inter_arrival / TAU_SPARSITY_DIVISOR)
    return snap_to_grid(min(max(target, TAU_MIN), TAU_MAX))


def tuned_omega_quanta(stats: TrafficStats) -> int:
    """Tuned omega in quanta: the paper's 50 for Poisson-like traffic,
    shrinking toward ``OMEGA_QUANTA_MIN`` as burstiness grows. Snapped
    to multiples of ``OMEGA_QUANTA_MIN`` so classes with similar (not
    identical) burstiness share a resolution -- the analysis batches
    classes per distinct config, and needless distinctions multiply
    whole-window correlation passes."""
    raw = OMEGA_QUANTA_MAX / (1.0 + stats.burstiness)
    snapped = OMEGA_QUANTA_MIN * round(raw / OMEGA_QUANTA_MIN)
    return int(min(OMEGA_QUANTA_MAX, max(OMEGA_QUANTA_MIN, snapped)))


def autotune_config(base: PathmapConfig, stats: TrafficStats) -> PathmapConfig:
    """Derive a tuned config from observed traffic statistics.

    Window and refresh cadence are kept from ``base`` (they are paced by
    operational needs, not by traffic shape); quantum, sampling window
    and T_u are re-derived from ``stats`` within the documented bounds.
    Pure and idempotent: ``autotune_config(autotune_config(c, s), s) ==
    autotune_config(c, s)``.
    """
    tau = tuned_quantum(stats)
    # tau may never exceed the refresh interval (one sample per block
    # minimum) -- snap down again so omega stays an exact multiple.
    if tau > base.refresh_interval:
        tau = snap_to_grid(base.refresh_interval)
    omega_quanta = tuned_omega_quanta(stats)
    omega = omega_quanta * tau
    if stats.delay_bound is not None and stats.delay_bound > 0:
        # Structure-based target, but never below the operator's base
        # bound: observed delays say how *deep* the structure reaches
        # today, while the base T_u is a commitment about how slow a
        # transaction may legitimately get -- a sudden slowdown must
        # still fall inside the lag range to be seen at all.
        target_tu = max(
            TU_HEADROOM * (stats.delay_bound + omega),
            min(base.max_transaction_delay, TU_MAX),
        )
    else:
        target_tu = min(base.max_transaction_delay, TU_MAX)
    tu = min(max(target_tu, TU_MIN_OMEGAS * omega), TU_MAX)
    # Snap T_u *up* to the 1-2-5 grid: headroom is preserved, and
    # classes whose observed bounds differ only slightly share one
    # config (and therefore one correlation pass).
    tu = min(snap_up_to_grid(tu), TU_MAX)
    return base.with_resolution(tau, omega_quanta, tu)


#: Minimum normalized spike height for an edge's delays to feed the
#: observed delay bound. Chance alignments barely clear the detection
#: threshold (heights near ``min_spike_height``); genuine causal spikes
#: are far stronger. Filtering keeps one spurious large-lag edge from
#: ratcheting T_u upward, which would admit more spurious edges in turn.
HINT_MIN_SPIKE_HEIGHT = 0.4


def observed_delay_bound(graph: object) -> Optional[float]:
    """Largest cumulative delay among an analyzed graph's *confidently*
    discovered edges (strongest spike >= :data:`HINT_MIN_SPIKE_HEIGHT`),
    or None when no edge qualifies. This is the ``delay_bound`` feed for
    :class:`TrafficStats` that resists spurious-spike poisoning."""
    bound: Optional[float] = None
    for edge in getattr(graph, "edges", []):
        spike = edge.strongest_spike()
        if spike is None or spike.height < HINT_MIN_SPIKE_HEIGHT:
            continue
        if bound is None or edge.max_delay > bound:
            bound = edge.max_delay
    return bound


def recommend_for_classes(
    base: PathmapConfig, stats_by_class: Dict[object, TrafficStats]
) -> Dict[object, PathmapConfig]:
    """Per-class tuned configs (one :func:`autotune_config` each)."""
    return {
        key: autotune_config(base, stats)
        for key, stats in stats_by_class.items()
    }


class AdaptiveController:
    """Change-point-triggered re-windowing for the online engine.

    Wires a :class:`ChangeDetector` into the engine's refresh stream;
    when an edge's delay shifts by more than ``min_shift`` seconds, the
    controller calls :meth:`E2EProfEngine.rewindow` at the change point,
    blanking pre-change history so every correlator and delay estimate
    re-converges on the new regime immediately. A cooldown (in refresh
    intervals) keeps one noisy edge from thrashing the window.
    """

    def __init__(
        self,
        detector: Optional[ChangeDetector] = None,
        min_shift: float = 0.01,
        cooldown_refreshes: int = 2,
    ) -> None:
        if cooldown_refreshes < 1:
            raise AnalysisError(
                f"cooldown_refreshes must be >= 1, got {cooldown_refreshes}"
            )
        self.detector = detector if detector is not None else ChangeDetector()
        self.min_shift = min_shift
        self.cooldown_refreshes = cooldown_refreshes
        self.rewindows: List[float] = []
        self._engine: Optional["E2EProfEngine"] = None
        self._last_rewindow: Optional[float] = None

    def subscribe_to(self, engine: "E2EProfEngine") -> None:
        """Attach to an engine: the detector consumes its refreshes and
        re-window requests flow back on large changes."""
        self._engine = engine
        self.detector.on_change(self._on_change)
        self.detector.subscribe_to(engine)

    def _on_change(self, event: ChangeEvent) -> None:
        engine = self._engine
        if engine is None:
            return
        if abs(event.magnitude) < self.min_shift:
            return
        cooldown = self.cooldown_refreshes * engine.config.refresh_interval
        if self._last_rewindow is not None and event.time - self._last_rewindow < cooldown:
            return
        # The change was detected one refresh after it began; keep the
        # refresh that revealed it, drop everything older.
        cutoff = event.time - engine.config.refresh_interval
        dropped = engine.rewindow(cutoff)
        self._last_rewindow = event.time
        self.rewindows.append(event.time)
        engine.events.publish(
            EVENT_REWINDOW,
            event.time,
            edge=f"{event.edge[0]}->{event.edge[1]}",
            service_class=f"{event.class_key[0]}@{event.class_key[1]}",
            cutoff=cutoff,
            blocks_dropped=dropped,
            magnitude=event.magnitude,
        )
