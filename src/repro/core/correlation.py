"""Cross-correlation of density time series (paper Section 3.4).

All variants in this module compute the *same* mathematical quantity so
that they can be tested against each other and swapped freely:

Given two series ``x`` and ``y`` over a common window of ``n`` quanta, with
full-window means ``mx, my`` and population standard deviations ``sx, sy``,
the normalized cross-correlation at non-negative lag ``d`` is::

    num(d)  = sum_{i=0}^{n-1-d} (x[i] - mx) * (y[i+d] - my)
    corr(d) = num(d) / (n * sx * sy)

This is the paper's Eq. 1 with two standard, documented simplifications
that the paper itself relies on: means and variances are taken over the
full window (valid because the lag bound ``T_u`` is much smaller than the
window ``W``), and only non-negative lags up to ``max_lag`` are evaluated
(the paper's first optimization).

Four interchangeable implementations are provided:

``correlate_dense``
    Reference implementation, O(n * max_lag) over dense arrays.
``correlate_sparse``
    The paper's *burst compression* optimization: iterates only over pairs
    of non-zero samples whose lag is within bound; mean cross-terms are
    corrected analytically.
``correlate_rle``
    The paper's *RLE* optimization: each pair of runs contributes a
    trapezoid to the lag axis, accumulated in O(1) per pair with the
    second-difference (double cumulative sum) trick.
``correlate_fft``
    The ``O(n log n)`` FFT method of Eq. 2 (the Aguilera et al. convolution
    approach), used as the baseline in Figure 9.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Union

import numpy as np

from repro.core.rle import RunLengthSeries, rle_encode
from repro.core.timeseries import DensityTimeSeries, aligned_windows
from repro.errors import CorrelationError, SeriesError

SeriesLike = Union[DensityTimeSeries, RunLengthSeries]


@dataclasses.dataclass(frozen=True)
class CorrelationSeries:
    """Normalized cross-correlation evaluated at lags ``0..max_lag``.

    Attributes
    ----------
    values:
        ``corr(d)`` for ``d = 0..max_lag`` (index == lag in quanta).
    quantum:
        Quantum duration in seconds; ``lag_seconds`` converts lags.
    n:
        Length (in quanta) of the common window the correlation was
        computed over.
    degenerate:
        True when one input had zero variance (e.g. a silent edge); the
        values are then all zero and carry no causal information.
    """

    values: np.ndarray
    quantum: float
    n: int
    degenerate: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "values", np.asarray(self.values, dtype=np.float64)
        )

    @property
    def max_lag(self) -> int:
        return int(self.values.size - 1)

    @property
    def lags(self) -> np.ndarray:
        return np.arange(self.values.size, dtype=np.int64)

    def lag_seconds(self) -> np.ndarray:
        """Lag axis converted to seconds."""
        return self.lags * self.quantum

    def mean(self) -> float:
        return float(self.values.mean()) if self.values.size else 0.0

    def std(self) -> float:
        return float(self.values.std()) if self.values.size else 0.0


def _as_sparse(series: SeriesLike) -> DensityTimeSeries:
    if isinstance(series, RunLengthSeries):
        return series.to_sparse()
    return series


def _as_rle(series: SeriesLike) -> RunLengthSeries:
    if isinstance(series, DensityTimeSeries):
        return rle_encode(series)
    return series


def _effective_max_lag(n: int, max_lag: Optional[int]) -> int:
    if n <= 0:
        raise CorrelationError("cannot correlate over an empty window")
    if max_lag is None:
        return n - 1
    if max_lag < 0:
        raise CorrelationError(f"max_lag must be non-negative, got {max_lag}")
    return min(max_lag, n - 1)


def _normalize(
    lag_products: np.ndarray,
    x_prefix_mass: np.ndarray,
    y_suffix_mass: np.ndarray,
    n: int,
    mx: float,
    my: float,
    sx: float,
    sy: float,
    quantum: float,
) -> CorrelationSeries:
    """Apply mean corrections and normalization shared by all variants.

    ``lag_products[d]`` is ``sum_i x[i] * y[i+d]``; ``x_prefix_mass[d]`` is
    ``sum_{i=0}^{n-1-d} x[i]`` and ``y_suffix_mass[d]`` is
    ``sum_{i=d}^{n-1} y[i]``.
    """
    lags = np.arange(lag_products.size, dtype=np.float64)
    num = lag_products - mx * y_suffix_mass - my * x_prefix_mass + (n - lags) * mx * my
    denom = n * sx * sy
    if denom <= 0.0 or not np.isfinite(denom):
        return CorrelationSeries(
            np.zeros_like(lag_products), quantum, n, degenerate=True
        )
    return CorrelationSeries(num / denom, quantum, n)


def fold_correlation(
    lag_products: np.ndarray,
    n: int,
    x_total: float,
    x_energy: float,
    y_total: float,
    y_energy: float,
    quantum: float,
) -> CorrelationSeries:
    """Normalize a folded lag-product aggregate from span statistics.

    The materialized-summary fold: the lake accumulates per-block
    lag-product rows and marginal sums over an arbitrary past span, and
    this turns them into a normalized correlation without touching raw
    data.  Compared to :func:`_normalize` the per-lag boundary masses
    (``x_prefix``/``y_suffix``) are replaced by the whole-span totals --
    a relative ``O(max_lag / n)`` approximation that vanishes for the
    long spans summaries exist for (see ``repro.lake.summaries``).
    Deterministic: a pure function of the folded sums.
    """
    if n <= 0:
        raise CorrelationError(f"fold span must be positive, got {n} quanta")
    lag_products = np.asarray(lag_products, dtype=np.float64)
    mx = x_total / n
    my = y_total / n
    sx = float(np.sqrt(max(0.0, x_energy / n - mx * mx)))
    sy = float(np.sqrt(max(0.0, y_energy / n - my * my)))
    return _normalize(
        lag_products, x_total, y_total, n, mx, my, sx, sy, quantum
    )


# ---------------------------------------------------------------------------
# Dense reference implementation
# ---------------------------------------------------------------------------


def correlate_dense(
    x: SeriesLike, y: SeriesLike, max_lag: Optional[int] = None
) -> CorrelationSeries:
    """Reference O(n * max_lag) implementation over dense arrays."""
    xs, ys = aligned_windows(_as_sparse(x), _as_sparse(y))
    n = xs.length
    d_max = _effective_max_lag(n, max_lag)
    xd = xs.to_dense()
    yd = ys.to_dense()
    mx, my = xd.mean(), yd.mean()
    sx, sy = xd.std(), yd.std()
    values = np.empty(d_max + 1, dtype=np.float64)
    xc = xd - mx
    yc = yd - my
    denom = n * sx * sy
    if denom <= 0.0 or not np.isfinite(denom):
        return CorrelationSeries(np.zeros(d_max + 1), xs.quantum, n, degenerate=True)
    for d in range(d_max + 1):
        values[d] = np.dot(xc[: n - d], yc[d:]) / denom
    return CorrelationSeries(values, xs.quantum, n)


# ---------------------------------------------------------------------------
# Sparse (burst-compressed) implementation
# ---------------------------------------------------------------------------

#: Upper bound on the number of (x, y) sample pairs materialized per chunk,
#: to bound peak memory on pathological inputs.
_PAIR_CHUNK = 1 << 20

#: Modeled cost ratio of the density dispatch rule: one RLE run pair is
#: assumed ~4x the cost of one expected sparse sample pair, so a row goes
#: to the sparse batch kernel when ``sparse_units <= 4 * rle_units``.
#: The refresh ledger's measured per-unit EWMAs replace this constant
#: when ``PathmapConfig.measured_dispatch`` is on.
MODELED_RLE_COST_RATIO = 4.0


def sparse_dispatch_units(x_nnz: int, y_nnz: int, y_span: int, max_lag: int) -> float:
    """Dispatch cost units of the sparse batch kernel for one row.

    Proportional to the expected number of (x sample, y sample) pairs
    within ``max_lag``: every x sample sweeps a ``max_lag + 1`` wide
    window over a y series of density ``y_nnz / y_span``.
    """
    return x_nnz * (max_lag + 1) * y_nnz / max(y_span, 1)


def rle_dispatch_units(x_runs: int, y_runs: int) -> float:
    """Dispatch cost units of the RLE pair-product kernel for one row
    (the kernel's cost scales with the run-pair count, not samples)."""
    return float(x_runs * y_runs)


#: Modeled cost ratio of the FFT frontier: one FFT dispatch unit
#: (roughly one butterfly of the row's transforms, ``size * log2(size)``
#: units per row) is assumed to cost about the same as one expected
#: sparse sample pair.  Calibrated against this container's measured
#: ns/unit EWMAs; the refresh ledger replaces it under
#: ``PathmapConfig.measured_dispatch`` once the FFT EWMA warms up.
MODELED_FFT_COST_RATIO = 1.0


def choose_sparse_kernel(
    sparse_units: float,
    rle_units: float,
    ns_sparse: "float | None" = None,
    ns_rle: "float | None" = None,
) -> bool:
    """The density dispatch rule: sparse batch (True) or RLE (False).

    A pure function of the unit estimates (and, when both are given, the
    measured per-unit costs from the refresh ledger's EWMAs), so every
    caller -- grouped appends, history replays, thread workers and shard
    worker processes -- makes the identical choice for identical blocks.
    Both kernels produce bitwise-identical lag products, so the choice
    never changes analysis output, only where the time goes.
    """
    if ns_sparse is not None and ns_rle is not None:
        return sparse_units * ns_sparse <= rle_units * ns_rle
    return sparse_units <= MODELED_RLE_COST_RATIO * rle_units


def choose_batch_kernel(
    sparse_units: float,
    rle_units: float,
    fft_units: "float | None" = None,
    ns_sparse: "float | None" = None,
    ns_rle: "float | None" = None,
    ns_fft: "float | None" = None,
) -> str:
    """Three-way density dispatch: ``"sparse"``, ``"rle"`` or ``"fft"``.

    Extends :func:`choose_sparse_kernel` with the dense-regime FFT batch
    kernel.  Like the two-way rule it is a pure function of its inputs,
    so every host (serial engine, thread workers, shard processes) routes
    identical blocks to the identical kernel.  The measured FFT frontier
    is used only when all three per-unit EWMAs are warm; until then the
    modeled constants (:data:`MODELED_RLE_COST_RATIO`,
    :data:`MODELED_FFT_COST_RATIO`) decide.  Ties go to the direct
    kernels: their lag products are bit-exact, the FFT kernel's agree
    only to float tolerance (see ``docs/PERFORMANCE.md``).
    """
    sparse_wins = choose_sparse_kernel(sparse_units, rle_units, ns_sparse, ns_rle)
    direct = "sparse" if sparse_wins else "rle"
    if fft_units is None:
        return direct
    if ns_sparse is not None and ns_rle is not None and ns_fft is not None:
        direct_cost = sparse_units * ns_sparse if sparse_wins else rle_units * ns_rle
        return "fft" if fft_units * ns_fft < direct_cost else direct
    direct_cost = min(sparse_units, MODELED_RLE_COST_RATIO * rle_units)
    return "fft" if MODELED_FFT_COST_RATIO * fft_units < direct_cost else direct


def sparse_lag_products(
    x: DensityTimeSeries, y: DensityTimeSeries, max_lag: int
) -> np.ndarray:
    """Raw lag products ``S[d] = sum x[i] * y[j]`` over pairs with
    ``j - i = d`` for ``d = 0..max_lag``, using **absolute** indices.

    The two series need not share a window; this is the primitive the
    incremental correlator uses for cross-block products.
    """
    if max_lag < 0:
        raise CorrelationError(f"max_lag must be non-negative, got {max_lag}")
    out = np.zeros(max_lag + 1, dtype=np.float64)
    if x.nnz == 0 or y.nnz == 0:
        return out
    xi, xv = x.indices, x.values
    yi, yv = y.indices, y.values
    lo = np.searchsorted(yi, xi, side="left")
    hi = np.searchsorted(yi, xi + max_lag, side="right")
    pair_counts = hi - lo
    total_pairs = int(pair_counts.sum())
    if total_pairs == 0:
        return out

    # Process x entries in chunks bounded by _PAIR_CHUNK materialized pairs.
    cum_pairs = np.concatenate([[0], np.cumsum(pair_counts)])
    start = 0
    while start < xi.size:
        stop = int(
            np.searchsorted(cum_pairs, cum_pairs[start] + _PAIR_CHUNK, side="left")
        )
        stop = min(max(stop, start + 1), xi.size)
        counts = pair_counts[start:stop]
        chunk_total = int(counts.sum())
        if chunk_total > 0:
            # Expand (x index, y range) pairs for this chunk without a
            # Python loop: reps[k] repeats the x row, offsets walks each
            # row's y range lo[k]..hi[k]-1.
            rows = np.repeat(np.arange(start, stop), counts)
            local = np.arange(chunk_total) - np.repeat(
                cum_pairs[start:stop] - cum_pairs[start], counts
            )
            offsets = lo[rows] + local
            lags = yi[offsets] - xi[rows]
            weights = xv[rows] * yv[offsets]
            out += np.bincount(lags, weights=weights, minlength=max_lag + 1)[
                : max_lag + 1
            ]
        start = stop
    return out


def batch_lag_products(
    x: SeriesLike, ys: "list[SeriesLike]", max_lag: int
) -> np.ndarray:
    """Raw lag products of one ``x`` against ``F`` series sharing a window.

    Returns an ``(F, max_lag + 1)`` array whose row ``r`` equals
    ``sparse_lag_products(x, ys[r], max_lag)``. All ``ys`` must cover the
    same quantum range (the engine's reference-grouped append stacks the
    newest block of every edge correlated against one reference edge, and
    those blocks are aligned by construction).

    The batch is computed in a single vectorized pass: the ``ys`` samples
    are concatenated with a per-row key offset so one ``searchsorted``
    locates every (x sample, row) lag range, then all pairs are expanded
    chunk-by-chunk (bounded by ``_PAIR_CHUNK``) into one ``bincount`` over
    the flattened ``(row, lag)`` axis. Python-level cost is O(F) numpy
    calls instead of O(F) kernel invocations per x block.
    """
    if max_lag < 0:
        raise CorrelationError(f"max_lag must be non-negative, got {max_lag}")
    num_rows = len(ys)
    out = np.zeros((num_rows, max_lag + 1), dtype=np.float64)
    if num_rows == 0:
        return out
    xs = _as_sparse(x)
    sparse_ys = [_as_sparse(y) for y in ys]
    head = sparse_ys[0]
    for y in sparse_ys[1:]:
        if (
            y.start != head.start
            or y.length != head.length
            or y.quantum != head.quantum
        ):
            raise CorrelationError(
                "batch_lag_products requires all ys to share one window"
            )
    if xs.nnz == 0:
        return out
    row_nnz = np.array([y.nnz for y in sparse_ys], dtype=np.int64)
    if int(row_nnz.sum()) == 0:
        return out
    span = int(head.length)
    # Concatenated y samples with a per-row key offset; keys ascend by
    # construction (rows in order, indices sorted within each row).
    cat_rel = np.concatenate(
        [y.indices - head.start for y in sparse_ys if y.nnz]
    )
    cat_val = np.concatenate([y.values for y in sparse_ys if y.nnz])
    cat_row = np.repeat(np.arange(num_rows, dtype=np.int64), row_nnz)
    keys = cat_row * span + cat_rel

    xi, xv = xs.indices, xs.values
    nx = xi.size
    # Per-x-sample lag range, clipped into [0, span] so a query never
    # bleeds into a neighboring row's key range.
    rel_lo = np.clip(xi - head.start, 0, span)
    rel_hi = np.clip(xi - head.start + max_lag + 1, 0, span)
    bases = np.arange(num_rows, dtype=np.int64)[:, None] * span
    lo = np.searchsorted(keys, (bases + rel_lo[None, :]).ravel(), side="left")
    hi = np.searchsorted(keys, (bases + rel_hi[None, :]).ravel(), side="left")
    pair_counts = hi - lo
    if int(pair_counts.sum()) == 0:
        return out

    out_flat = out.reshape(-1)
    cum_pairs = np.concatenate([[0], np.cumsum(pair_counts)])
    start = 0
    while start < pair_counts.size:
        stop = int(
            np.searchsorted(cum_pairs, cum_pairs[start] + _PAIR_CHUNK, side="left")
        )
        stop = min(max(stop, start + 1), pair_counts.size)
        counts = pair_counts[start:stop]
        chunk_total = int(counts.sum())
        if chunk_total > 0:
            reps = np.repeat(np.arange(start, stop), counts)
            local = np.arange(chunk_total) - np.repeat(
                cum_pairs[start:stop] - cum_pairs[start], counts
            )
            offsets = lo[reps] + local
            xpos = reps % nx
            lags = cat_rel[offsets] + head.start - xi[xpos]
            weights = xv[xpos] * cat_val[offsets]
            flat = (reps // nx) * (max_lag + 1) + lags
            out_flat += np.bincount(
                flat, weights=weights, minlength=num_rows * (max_lag + 1)
            )[: num_rows * (max_lag + 1)]
        start = stop
    return out


def correlate_batch(
    x: SeriesLike, ys: "list[SeriesLike]", max_lag: Optional[int] = None
) -> "list[CorrelationSeries]":
    """Normalized correlation of one ``x`` against many ``ys`` at once.

    All inputs must already share one window (same start and length); the
    per-row result is identical, up to floating-point accumulation order,
    to ``correlate_sparse(x, ys[r], max_lag)``.
    """
    xs = _as_sparse(x)
    sparse_ys = [_as_sparse(y) for y in ys]
    for y in sparse_ys:
        if y.start != xs.start or y.length != xs.length:
            raise SeriesError(
                "correlate_batch requires x and every y to share one window"
            )
        if y.quantum != xs.quantum:
            raise SeriesError(
                f"quantum mismatch: {xs.quantum} vs {y.quantum}"
            )
    n = xs.length
    d_max = _effective_max_lag(n, max_lag)
    mats = batch_lag_products(xs, sparse_ys, d_max)
    lags = np.arange(d_max + 1, dtype=np.int64)
    x_prefix = _sparse_prefix_mass(xs, n - lags)
    mx, sx = xs.mean(), xs.std()
    results = []
    for row, y in enumerate(sparse_ys):
        y_suffix = y.total() - _sparse_prefix_mass(y, lags)
        results.append(
            _normalize(
                mats[row], x_prefix, y_suffix, n, mx, y.mean(), sx, y.std(), xs.quantum
            )
        )
    return results


def _sparse_prefix_mass(series: DensityTimeSeries, lengths: np.ndarray) -> np.ndarray:
    """Mass of the first ``lengths[k]`` quanta of the window, vectorized."""
    if series.nnz == 0:
        return np.zeros(lengths.size, dtype=np.float64)
    csum = np.concatenate([[0.0], np.cumsum(series.values)])
    pos = np.searchsorted(series.indices, series.start + lengths, side="left")
    return csum[pos]


def correlate_sparse(
    x: SeriesLike, y: SeriesLike, max_lag: Optional[int] = None
) -> CorrelationSeries:
    """Burst-compressed correlation: only non-zero sample pairs are touched."""
    xs, ys = aligned_windows(_as_sparse(x), _as_sparse(y))
    n = xs.length
    d_max = _effective_max_lag(n, max_lag)
    lag_products = sparse_lag_products(xs, ys, d_max)
    lags = np.arange(d_max + 1, dtype=np.int64)
    x_prefix = _sparse_prefix_mass(xs, n - lags)
    y_suffix = ys.total() - _sparse_prefix_mass(ys, lags)
    return _normalize(
        lag_products, x_prefix, y_suffix, n, xs.mean(), ys.mean(), xs.std(), ys.std(), xs.quantum
    )


# ---------------------------------------------------------------------------
# RLE implementation
# ---------------------------------------------------------------------------


def rle_lag_products(
    x: RunLengthSeries, y: RunLengthSeries, max_lag: int
) -> np.ndarray:
    """Raw lag products over run pairs via the second-difference trick.

    Each pair of runs ``(a, b)`` contributes ``a.value * b.value *
    overlap(d)`` where ``overlap`` is a trapezoid on the lag axis; the
    trapezoid is the double cumulative sum of four impulses, so each pair
    costs O(1) scatter work regardless of run lengths (the paper's
    "correlation of overlapping sequences ... computed in a single step").

    Works on absolute indices; the series need not share a window.
    """
    if max_lag < 0:
        raise CorrelationError(f"max_lag must be non-negative, got {max_lag}")
    if x.num_runs == 0 or y.num_runs == 0:
        return np.zeros(max_lag + 1, dtype=np.float64)

    xs_, xc, xv = x.starts, x.counts, x.values
    ys_, yc, yv = y.starts, y.counts, y.values
    x_ends = xs_ + xc
    y_ends = ys_ + yc

    # For x-run k, the candidate y-runs are those whose lag range
    # [y.start - x.end + 1, y.end - 1 - x.start] intersects [0, max_lag]:
    #   y.end > x.start          (lag range reaches >= 0)
    #   y.start <= x.end - 1 + max_lag
    lo = np.searchsorted(y_ends, xs_, side="right")
    hi = np.searchsorted(ys_, x_ends + max_lag, side="left")
    counts = np.maximum(hi - lo, 0)
    total = int(counts.sum())
    offset = int(xc.max() + yc.max())
    size = max_lag + offset + 2
    diff2 = np.zeros(size + 1, dtype=np.float64)
    if total == 0:
        return np.zeros(max_lag + 1, dtype=np.float64)

    cum = np.concatenate([[0], np.cumsum(counts)])
    reps = np.repeat(np.arange(xs_.size), counts)
    local = np.arange(total) - np.repeat(cum[:-1], counts)
    cols = lo[reps] + local
    w = xv[reps] * yv[cols]
    # First lag at which the pair overlaps: d0 = y.start - (x.end - 1).
    d0 = ys_[cols] - (x_ends[reps] - 1) + offset
    ca = xc[reps]
    cb = yc[cols]
    top = size  # clip: impulses beyond the slice cannot affect it

    np.add.at(diff2, np.minimum(d0, top), w)
    np.add.at(diff2, np.minimum(d0 + ca, top), -w)
    np.add.at(diff2, np.minimum(d0 + cb, top), -w)
    np.add.at(diff2, np.minimum(d0 + ca + cb, top), w)

    ramp = np.cumsum(np.cumsum(diff2))
    return ramp[offset : offset + max_lag + 1]


def _rle_prefix_mass(series: RunLengthSeries, lengths: np.ndarray) -> np.ndarray:
    """Mass of the first ``lengths[k]`` quanta of the window, vectorized."""
    if series.num_runs == 0:
        return np.zeros(lengths.size, dtype=np.float64)
    run_mass = series.counts * series.values
    csum = np.concatenate([[0.0], np.cumsum(run_mass)])
    cutoff = series.start + lengths  # exclusive absolute bound
    # Runs entirely before the cutoff contribute fully...
    full = np.searchsorted(series.starts + series.counts, cutoff, side="right")
    mass = csum[full]
    # ...plus the partial run straddling the cutoff, if any.
    part = np.searchsorted(series.starts, cutoff, side="left") - 1
    straddle = (part >= 0) & (part >= full)
    if np.any(straddle):
        p = part[straddle]
        overlap = np.minimum(cutoff[straddle], series.starts[p] + series.counts[p]) - series.starts[p]
        overlap = np.maximum(overlap, 0)
        mass = mass.astype(np.float64)
        mass[straddle] += overlap * series.values[p]
    return mass


def correlate_rle(
    x: SeriesLike, y: SeriesLike, max_lag: Optional[int] = None
) -> CorrelationSeries:
    """RLE correlation: O(run pairs) instead of O(sample pairs)."""
    xr = _as_rle(x)
    yr = _as_rle(y)
    if xr.quantum != yr.quantum:
        raise SeriesError(f"quantum mismatch: {xr.quantum} vs {yr.quantum}")
    start = max(xr.start, yr.start)
    end = min(xr.end, yr.end)
    if end <= start:
        raise SeriesError("series windows do not overlap")
    xr = xr.restricted(start, end - start)
    yr = yr.restricted(start, end - start)
    n = xr.length
    d_max = _effective_max_lag(n, max_lag)
    lag_products = rle_lag_products(xr, yr, d_max)
    lags = np.arange(d_max + 1, dtype=np.int64)
    x_prefix = _rle_prefix_mass(xr, n - lags)
    y_suffix = yr.total() - _rle_prefix_mass(yr, lags)
    return _normalize(
        lag_products, x_prefix, y_suffix, n, xr.mean(), yr.mean(), xr.std(), yr.std(), xr.quantum
    )


# ---------------------------------------------------------------------------
# FFT implementation (Eq. 2 / convolution baseline)
# ---------------------------------------------------------------------------


def fft_length(n: int) -> int:
    """Smallest 5-smooth integer ``>= n`` (a fast FFT plan size).

    numpy's pocketfft is O(n log n) only when ``n`` factors into small
    primes; padding to the next 5-smooth ("regular") length costs at most
    ~6% extra samples versus up to 2x for next-power-of-two padding, so
    every FFT kernel in this module plans its transforms with this size.
    """
    n = int(n)
    if n <= 1:
        return 1
    best = 1 << (n - 1).bit_length()
    p5 = 1
    while p5 < best:
        p35 = p5
        while p35 < best:
            quotient = -(-n // p35)
            candidate = p35 * (1 << (quotient - 1).bit_length())
            if candidate == n:
                return n
            if candidate < best:
                best = candidate
            p35 *= 3
        p5 *= 5
    return best


def fft_dispatch_units(n_quanta: int, size: Optional[int] = None) -> float:
    """Dispatch cost units of the FFT batch kernel for one row.

    Proportional to ``size * log2(size)``: each row pays one forward
    transform of its block plus its share of the batched inverse.  Unlike
    the sparse/RLE unit estimates this is independent of density -- the
    FFT cost is fixed by the window, which is exactly why it wins once
    rows go dense.
    """
    if size is None:
        size = fft_length(max(2 * int(n_quanta) - 1, 1))
    size = max(int(size), 2)
    return float(size) * math.log2(size)


def fft_lag_products(
    xd: np.ndarray, yd: np.ndarray, max_lag: int, size: Optional[int] = None
) -> np.ndarray:
    """Raw lag products via FFT (zero-padded, i.e. linear correlation).

    Returns exactly ``max_lag + 1`` values; lags beyond ``yd.size - 1``
    (where no sample pair can exist) are exact zeros rather than FFT
    roundoff noise.  The transform length is the smallest 5-smooth size
    that holds the full linear correlation (``len(xd) + len(yd) - 1``);
    pass ``size`` to share one precomputed plan length across a batch of
    same-shape calls.
    """
    if max_lag < 0:
        raise CorrelationError(f"max_lag must be non-negative, got {max_lag}")
    n = int(xd.size)
    m = int(yd.size)
    out = np.zeros(max_lag + 1, dtype=np.float64)
    if n == 0 or m == 0:
        return out
    full = n + m - 1
    if size is None:
        size = fft_length(full)
    elif size < full:
        raise CorrelationError(
            f"fft size {size} aliases a length-{full} linear correlation"
        )
    fx = np.fft.rfft(xd, size)
    fy = np.fft.rfft(yd, size)
    prod = np.fft.irfft(np.conj(fx) * fy, size)
    top = min(max_lag, m - 1)
    out[: top + 1] = prod[: top + 1]
    return out


class SpectrumCache:
    """Per-host cache of block ``rfft`` spectra, keyed by block identity.

    The online FFT kernel correlates the same reference block against
    many signal blocks and the same blocks again on the next refresh
    (overlap-add: only the newest dW block is new work), so spectra are
    cached across calls and across refreshes.  Keys are
    ``(id(block), transform size)`` and every entry keeps a strong
    reference to its block, so a block's ``id`` can never be recycled
    while its spectrum is alive.  Spectra are always computed by a single
    1-D ``rfft`` -- a pure function of (block contents, size) -- so a hit
    returns the bitwise-identical array a recompute would produce and
    caching can never change analysis output.  Under the thread-pooled
    engine two workers may race to fill the same entry; the loser's
    write replaces the winner's with a bitwise-equal array, so the race
    is benign.

    ``evict_before`` drops entries whose block slid out of the retained
    window; the engine calls it once per refresh, bounding resident
    spectra to the live block history (~``(size/2 + 1) * 16`` bytes per
    cached block).
    """

    __slots__ = ("hits", "misses", "_entries")

    def __init__(self) -> None:
        self._entries: "dict[tuple[int, int], tuple[object, np.ndarray]]" = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Resident bytes across all cached spectra."""
        return sum(spec.nbytes for _, spec in self._entries.values())

    def spectrum(self, block: SeriesLike, size: int) -> np.ndarray:
        """The length-``size`` ``rfft`` of ``block``'s dense samples."""
        key = (id(block), int(size))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry[1]
        spec = np.fft.rfft(block.to_dense(), int(size))
        self._entries[key] = (block, spec)
        self.misses += 1
        return spec

    def peek(self, block: SeriesLike, size: int) -> Optional[np.ndarray]:
        """The cached spectrum for ``(block, size)``, or None; never
        computes and never moves the hit/miss counters (used by the lake
        to persist warm spectra at block-eviction time)."""
        entry = self._entries.get((id(block), int(size)))
        return entry[1] if entry is not None else None

    def seed(self, block: SeriesLike, size: int, spectrum: np.ndarray) -> None:
        """Insert an externally computed spectrum for ``(block, size)``.

        The shard dispatch path ships the parent's per-block ``rfft``
        results to every worker so process shards stop recomputing them.
        The seeded array must be what :meth:`spectrum` would compute --
        ``np.fft.rfft(block.to_dense(), size)`` -- which the shipper
        guarantees by computing it with exactly that expression; a wrong
        seed would change analysis output, so this is not a public
        tuning knob.  Counters are untouched: a later lookup records the
        hit it is.
        """
        self._entries[(id(block), int(size))] = (block, spectrum)

    def evict_before(self, start: int) -> int:
        """Drop entries whose block starts before quantum ``start``."""
        stale = [
            key
            for key, (block, _) in self._entries.items()
            if block.start < start
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()


def fft_batch_lag_products(
    x: SeriesLike,
    ys: "list[SeriesLike]",
    max_lag: int,
    size: Optional[int] = None,
    cache: Optional[SpectrumCache] = None,
) -> np.ndarray:
    """Raw lag products of one ``x`` block against ``F`` blocks sharing a
    window, via one batched 2-D inverse FFT.

    Row ``r`` equals ``sparse_lag_products(x, ys[r], max_lag)`` up to
    float roundoff (documented tolerance: relative ~1e-12 of the block
    mass scale; see ``docs/PERFORMANCE.md``).  Like the sparse primitive
    this works on **absolute** indices -- ``x`` need not share the ys'
    window -- which is what the incremental correlator's cross-block
    products require.  Lags outside the blocks' overlap support are exact
    zeros, never FFT roundoff read from the padded transform.

    Per-block forward spectra come from ``cache`` when given (each a
    single 1-D ``rfft``, so cached and fresh spectra are bitwise equal);
    the inverse transform runs once over the stacked rows.  ``size``
    shares a precomputed 5-smooth plan length across calls.
    """
    if max_lag < 0:
        raise CorrelationError(f"max_lag must be non-negative, got {max_lag}")
    num_rows = len(ys)
    out = np.zeros((num_rows, max_lag + 1), dtype=np.float64)
    if num_rows == 0:
        return out
    head = ys[0]
    for y in ys[1:]:
        if (
            y.start != head.start
            or y.length != head.length
            or y.quantum != head.quantum
        ):
            raise CorrelationError(
                "fft_batch_lag_products requires all ys to share one window"
            )
    if x.quantum != head.quantum:
        raise SeriesError(f"quantum mismatch: {x.quantum} vs {head.quantum}")
    lx = int(x.length)
    ly = int(head.length)
    if lx == 0 or ly == 0:
        return out
    # Absolute-lag support of this block pair: a sample pair at lag d
    # exists iff some x index i and y index j = i + d - (head.start -
    # x.start relative shift) both fall inside their blocks.
    delta = int(head.start) - int(x.start)
    d0 = max(0, delta - (lx - 1))
    d1 = min(max_lag, delta + ly - 1)
    if d1 < d0:
        return out
    full = lx + ly - 1
    if size is None:
        size = fft_length(full)
    elif size < full:
        raise CorrelationError(
            f"fft size {size} aliases a length-{full} linear correlation"
        )
    size = int(size)
    local_cache = cache if cache is not None else SpectrumCache()
    fx = local_cache.spectrum(x, size)
    spectra = np.empty((num_rows, size // 2 + 1), dtype=np.complex128)
    for row, y in enumerate(ys):
        spectra[row] = local_cache.spectrum(y, size)
    prod = np.fft.irfft(np.conj(fx)[None, :] * spectra, size, axis=1)
    # Relative lag r = d - delta may be negative (x block newer than y);
    # circular correlation parks negative lags at the tail of the
    # transform, so gather modulo size.
    idx = (np.arange(d0, d1 + 1) - delta) % size
    out[:, d0 : d1 + 1] = prod[:, idx]
    return out


def correlate_fft_batch(
    x: SeriesLike,
    ys: "list[SeriesLike]",
    max_lag: Optional[int] = None,
    cache: Optional[SpectrumCache] = None,
) -> "list[CorrelationSeries]":
    """Normalized correlation of one ``x`` against many ``ys`` via FFT.

    The FFT analogue of :func:`correlate_batch`: all inputs must share
    one window, and per-row results equal ``correlate_sparse`` up to the
    documented float tolerance.
    """
    xs = _as_sparse(x)
    for y in ys:
        if y.start != xs.start or y.length != xs.length:
            raise SeriesError(
                "correlate_fft_batch requires x and every y to share one window"
            )
        if y.quantum != xs.quantum:
            raise SeriesError(f"quantum mismatch: {xs.quantum} vs {y.quantum}")
    n = xs.length
    d_max = _effective_max_lag(n, max_lag)
    mats = fft_batch_lag_products(x, list(ys), d_max, cache=cache)
    lags = np.arange(d_max + 1, dtype=np.int64)
    x_prefix = _sparse_prefix_mass(xs, n - lags)
    mx, sx = xs.mean(), xs.std()
    results = []
    for row, y in enumerate(ys):
        ysp = _as_sparse(y)
        y_suffix = ysp.total() - _sparse_prefix_mass(ysp, lags)
        results.append(
            _normalize(
                mats[row], x_prefix, y_suffix, n, mx, ysp.mean(), sx, ysp.std(), xs.quantum
            )
        )
    return results


def correlate_fft(
    x: SeriesLike, y: SeriesLike, max_lag: Optional[int] = None
) -> CorrelationSeries:
    """FFT-based correlation (the paper's Eq. 2; baseline in Figure 9).

    Unlike the direct variants, FFT inherently computes the full lag range;
    ``max_lag`` only truncates the returned slice.
    """
    xs, ys = aligned_windows(_as_sparse(x), _as_sparse(y))
    n = xs.length
    d_max = _effective_max_lag(n, max_lag)
    xd = xs.to_dense()
    yd = ys.to_dense()
    lag_products = fft_lag_products(xd, yd, d_max)
    lags = np.arange(d_max + 1, dtype=np.int64)
    x_prefix = _sparse_prefix_mass(xs, n - lags)
    y_suffix = ys.total() - _sparse_prefix_mass(ys, lags)
    return _normalize(
        lag_products, x_prefix, y_suffix, n, xs.mean(), ys.mean(), xs.std(), ys.std(), xs.quantum
    )


# ---------------------------------------------------------------------------
# Dispatcher
# ---------------------------------------------------------------------------

_METHODS = {
    "dense": correlate_dense,
    "sparse": correlate_sparse,
    "rle": correlate_rle,
    "fft": correlate_fft,
}


def cross_correlate(
    x: SeriesLike,
    y: SeriesLike,
    max_lag: Optional[int] = None,
    method: str = "auto",
) -> CorrelationSeries:
    """Compute the normalized cross-correlation with the chosen ``method``.

    ``method="auto"`` picks RLE when both inputs are already run-length
    encoded (the streamed wire format), sparse otherwise.
    """
    if method == "auto":
        if isinstance(x, RunLengthSeries) and isinstance(y, RunLengthSeries):
            method = "rle"
        else:
            method = "sparse"
    try:
        impl = _METHODS[method]
    except KeyError:
        raise CorrelationError(
            f"unknown correlation method {method!r}; choose from {sorted(_METHODS)}"
        ) from None
    return impl(x, y, max_lag)
