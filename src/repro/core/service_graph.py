"""Service graph and service path abstractions (paper Sections 3.1-3.2).

A *service graph* is the output of pathmap for one service class: a
directed graph rooted at a front-end node, whose vertices are service
nodes and whose edges carry the causal delay(s) discovered by
cross-correlation.

Edge delay semantics (paper Section 3.3): the label of edge
``S_i -> d_s`` is the **cumulative** latency from the moment a request of
this class arrives at the front end until its induced message arrives at
``d_s`` -- "the sum of the time taken by the request to arrive at node
S_i, the processing delay at node S_i, and the communication delay in the
path from S_i to d_s". An edge may carry several delays (one per spike)
when the class reaches ``S_i`` via several upstream paths.

The per-node *computation delay* is the difference between the smallest
outgoing and the smallest incoming cumulative delay (this includes the
outgoing link's network latency, which is negligible on a LAN -- same
approximation as the paper).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.spikes import Spike
from repro.errors import AnalysisError

NodeId = str
EdgeKey = Tuple[NodeId, NodeId]


@dataclasses.dataclass
class ServiceEdge:
    """A causal edge discovered by pathmap.

    Attributes
    ----------
    src, dst:
        Endpoint node ids.
    delays:
        Cumulative delays in seconds, one per correlation spike, sorted
        ascending. Multiple entries mean the service class reaches this
        edge along multiple upstream paths.
    spikes:
        The raw spikes backing ``delays`` (same order).
    quality:
        Transport-health annotation
        (:class:`~repro.tracing.transport.DataQuality`) when the edge's
        signal was degraded or stale this window; None for fresh data
        (and for analyses that bypass the transport layer).
    """

    src: NodeId
    dst: NodeId
    delays: List[float] = dataclasses.field(default_factory=list)
    spikes: List[Spike] = dataclasses.field(default_factory=list)
    quality: Optional[object] = None

    @property
    def key(self) -> EdgeKey:
        return (self.src, self.dst)

    @property
    def min_delay(self) -> float:
        if not self.delays:
            raise AnalysisError(f"edge {self.src}->{self.dst} has no delays")
        return min(self.delays)

    @property
    def max_delay(self) -> float:
        if not self.delays:
            raise AnalysisError(f"edge {self.src}->{self.dst} has no delays")
        return max(self.delays)

    def strongest_spike(self) -> Optional[Spike]:
        if not self.spikes:
            return None
        return max(self.spikes, key=lambda s: s.height)


@dataclasses.dataclass(frozen=True)
class ServicePath:
    """One root-to-leaf path through a service graph.

    ``nodes[0]`` is the client node; ``cumulative_delays[k]`` is the delay
    label of the edge ``nodes[k] -> nodes[k+1]`` (so it has one fewer entry
    than ``nodes``; the client edge has delay 0 by convention, as the
    request's arrival at the front end is the time origin).
    """

    nodes: Tuple[NodeId, ...]
    cumulative_delays: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) < 2:
            raise AnalysisError("a service path needs at least two nodes")
        if len(self.cumulative_delays) != len(self.nodes) - 1:
            raise AnalysisError(
                "cumulative_delays must have exactly len(nodes) - 1 entries"
            )

    @property
    def total_delay(self) -> float:
        """Cumulative delay at the deepest edge of the path."""
        return self.cumulative_delays[-1]

    def hop_delays(self) -> Tuple[float, ...]:
        """Per-hop delays: consecutive differences of the cumulative labels."""
        out = [self.cumulative_delays[0]]
        for prev, cur in zip(self.cumulative_delays, self.cumulative_delays[1:]):
            out.append(cur - prev)
        return tuple(out)

    def __str__(self) -> str:
        parts = [self.nodes[0]]
        for node, delay in zip(self.nodes[1:], self.cumulative_delays):
            parts.append(f"-[{delay * 1e3:.1f}ms]-> {node}")
        return " ".join(parts)


class ServiceGraph:
    """The causal graph of one service class, rooted at a front-end node."""

    def __init__(self, client: NodeId, root: NodeId) -> None:
        self.client = client
        self.root = root
        #: Steady-state confidence report
        #: (:class:`~repro.core.confidence.ConfidenceReport`) stamped by
        #: :meth:`PathmapResult.annotate_confidence`; None when ungraded.
        self.confidence: Optional[object] = None
        self._nodes: Set[NodeId] = {client, root}
        self._edges: Dict[EdgeKey, ServiceEdge] = {}
        self._out: Dict[NodeId, List[NodeId]] = {client: [root], root: []}
        # The client edge exists by construction (Algorithm 1 adds
        # E_c(V_c -> S_i) before calling ComputePath) with delay 0: request
        # arrival at the front end is the time origin of all labels.
        self._edges[(client, root)] = ServiceEdge(client, root, [0.0], [])

    # -- construction -----------------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        if node not in self._nodes:
            self._nodes.add(node)
            self._out[node] = []

    def add_edge(
        self,
        src: NodeId,
        dst: NodeId,
        delays: Sequence[float],
        spikes: Sequence[Spike] = (),
    ) -> ServiceEdge:
        """Add (or extend) a causal edge labelled with spike delays."""
        if not delays:
            raise AnalysisError(f"edge {src}->{dst} must carry at least one delay")
        self.add_node(src)
        self.add_node(dst)
        key = (src, dst)
        edge = self._edges.get(key)
        if edge is None:
            edge = ServiceEdge(src, dst, sorted(delays), list(spikes))
            self._edges[key] = edge
            self._out[src].append(dst)
        else:
            edge.delays = sorted(set(edge.delays) | set(delays))
            edge.spikes.extend(spikes)
        return edge

    # -- inspection ---------------------------------------------------------------

    @property
    def nodes(self) -> Set[NodeId]:
        return set(self._nodes)

    @property
    def edges(self) -> List[ServiceEdge]:
        return list(self._edges.values())

    def edge(self, src: NodeId, dst: NodeId) -> ServiceEdge:
        try:
            return self._edges[(src, dst)]
        except KeyError:
            raise AnalysisError(f"no edge {src}->{dst} in service graph") from None

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        return (src, dst) in self._edges

    def edge_set(self) -> Set[EdgeKey]:
        return set(self._edges)

    def successors(self, node: NodeId) -> List[NodeId]:
        return list(self._out.get(node, []))

    def predecessors(self, node: NodeId) -> List[NodeId]:
        return [src for (src, dst) in self._edges if dst == node]

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"ServiceGraph(client={self.client!r}, root={self.root!r}, "
            f"nodes={len(self._nodes)}, edges={len(self._edges)})"
        )

    # -- delay attribution ------------------------------------------------------------

    def incoming_delay(self, node: NodeId) -> Optional[float]:
        """Smallest cumulative delay over incoming edges, or None."""
        delays = [
            edge.min_delay for edge in self._edges.values() if edge.dst == node
        ]
        return min(delays) if delays else None

    def outgoing_delay(self, node: NodeId) -> Optional[float]:
        """Smallest cumulative delay over outgoing edges, or None."""
        delays = [
            edge.min_delay
            for edge in self._edges.values()
            if edge.src == node and edge.dst != self.client
        ]
        return min(delays) if delays else None

    def node_delay(self, node: NodeId) -> Optional[float]:
        """Per-node computation delay (paper Section 3.3).

        The difference between the node's smallest outgoing and smallest
        incoming cumulative delays; includes the outgoing link latency.
        Returns None for the client, for leaves, and for unreached nodes.
        """
        if node == self.client:
            return None
        incoming = self.incoming_delay(node)
        outgoing = self.outgoing_delay(node)
        if incoming is None or outgoing is None:
            return None
        return max(0.0, outgoing - incoming)

    def node_delays(self) -> Dict[NodeId, float]:
        """Computation delay for every node where it is defined."""
        out: Dict[NodeId, float] = {}
        for node in self._nodes:
            delay = self.node_delay(node)
            if delay is not None:
                out[node] = delay
        return out

    def end_to_end_delay(self) -> float:
        """Largest cumulative delay over all edges: the end-to-end latency
        from request arrival at the front end to the deepest observed
        message (for request-response paths whose return edges were
        discovered, this is the front-end response time)."""
        if not self._edges:
            raise AnalysisError("empty service graph")
        return max(edge.max_delay for edge in self._edges.values())

    # -- path enumeration ---------------------------------------------------------------

    def paths(self, max_paths: int = 1000) -> List[ServicePath]:
        """Enumerate root-to-leaf causal paths by increasing delay labels.

        An edge continues a path only when it carries a delay no smaller
        than the delay at which the path reached its source (causality
        moves forward in time); each node is visited at most once per path
        (cycle unrolling as in the paper's Figure 5).
        """
        results: List[ServicePath] = []

        def walk(node: NodeId, visited: Tuple[NodeId, ...], delays: Tuple[float, ...]) -> None:
            if len(results) >= max_paths:
                return
            reached_at = delays[-1] if delays else 0.0
            extended = False
            for nxt in self._out.get(node, []):
                if nxt in visited:
                    continue
                edge = self._edges[(node, nxt)]
                feasible = [d for d in edge.delays if d >= reached_at]
                if not feasible:
                    continue
                extended = True
                walk(nxt, visited + (nxt,), delays + (min(feasible),))
            if not extended and len(visited) >= 2:
                results.append(ServicePath(visited, delays))

        walk(self.client, (self.client,), ())
        # Continue from root: the walk above starts at the client whose
        # only edge is client -> root with delay 0.
        return results

    def to_dict(self) -> Dict:
        """JSON-serializable representation."""
        return {
            "client": self.client,
            "root": self.root,
            # Like edge quality below, the confidence verdict is exported
            # only when the window was flagged unsteady.
            **(
                {"confidence": self.confidence.to_dict()}
                if self.confidence is not None and not self.confidence.ok
                else {}
            ),
            "nodes": sorted(self._nodes),
            "edges": [
                {
                    "src": e.src,
                    "dst": e.dst,
                    "delays": list(e.delays),
                    # Quality annotations ride along only when the edge
                    # was flagged, keeping fresh-run exports unchanged.
                    **(
                        {"quality": e.quality.to_dict()}
                        if e.quality is not None
                        else {}
                    ),
                }
                for e in self._edges.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ServiceGraph":
        graph = cls(data["client"], data["root"])
        for node in data.get("nodes", []):
            graph.add_node(node)
        for edge in data.get("edges", []):
            if (edge["src"], edge["dst"]) == (data["client"], data["root"]):
                continue  # constructed implicitly
            graph.add_edge(edge["src"], edge["dst"], edge["delays"])
        return graph
