"""Clock-skew estimation between service nodes (paper Section 3.8).

"We can estimate time skew between two service nodes (say x and y) by
cross-correlating the time series T^x_{x->y} and T^y_{x->y} streamed from
x and y respectively. The resultant cross-correlation series will have a
spike at position d, where d is equal to the sum of the time by which x
lags behind y and the network delay."

Both signals describe the *same* packets, timestamped at the two ends of
one link, so the spike lag is ``network_delay + skew(y) - skew(x)``.
Subtracting an externally measured network delay (passive techniques,
paper ref [16] -- in the simulator we know it) yields the relative skew.
Because only non-negative lags are correlated, both orientations are
tried and the stronger spike decides the sign.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.config import PathmapConfig
from repro.core.correlation import cross_correlate
from repro.core.spikes import detect_spikes, strongest_spike
from repro.core.timeseries import build_density_series
from repro.errors import AnalysisError
from repro.tracing.collector import TraceCollector
from repro.tracing.records import NodeId


@dataclasses.dataclass(frozen=True)
class SkewEstimate:
    """Result of clock-skew estimation over one edge.

    ``skew`` is the estimated amount by which the destination's clock is
    ahead of the source's clock (seconds; negative = behind), after
    removing ``network_delay``.
    """

    src: NodeId
    dst: NodeId
    skew: float
    raw_lag: float
    spike_height: float
    network_delay: float


def estimate_clock_skew(
    collector: TraceCollector,
    src: NodeId,
    dst: NodeId,
    config: PathmapConfig,
    end_time: float,
    start_time: Optional[float] = None,
    network_delay: float = 0.0,
) -> SkewEstimate:
    """Estimate the relative clock skew across edge ``src -> dst``.

    Uses the collector's captures of the same packets at both endpoints
    over the window ``[start_time, end_time)``.
    """
    if start_time is None:
        start_time = end_time - config.window
    source_side = collector.edge_timestamps(src, dst, prefer_destination=False)
    dest_side = collector.edge_timestamps(src, dst, prefer_destination=True)
    if source_side is dest_side:
        raise AnalysisError(
            f"edge {src!r}->{dst!r} was captured on only one side; "
            "skew estimation needs both endpoints traced"
        )

    tau = config.quantum
    window_start = int(start_time / tau)
    length = max(1, int(round((end_time - start_time) / tau)))

    def series(stamps):
        return build_density_series(
            stamps,
            quantum=tau,
            sampling_quanta=config.sampling_quanta,
            window_start=window_start,
            window_length=length,
        )

    src_series = series(source_side)
    dst_series = series(dest_side)

    best_spike = None
    best_sign = 1.0
    for x, y, sign in ((src_series, dst_series, 1.0), (dst_series, src_series, -1.0)):
        corr = cross_correlate(x, y, max_lag=config.max_lag_quanta)
        spike = strongest_spike(
            detect_spikes(
                corr,
                sigma=config.spike_sigma,
                resolution_quanta=config.resolution_quanta,
            )
        )
        if spike is not None and (best_spike is None or spike.height > best_spike.height):
            best_spike = spike
            best_sign = sign
    if best_spike is None:
        raise AnalysisError(
            f"no correlation spike between the two sides of {src!r}->{dst!r}; "
            "skew may exceed the correlation lag bound"
        )

    raw_lag = best_sign * best_spike.delay
    return SkewEstimate(
        src=src,
        dst=dst,
        skew=raw_lag - network_delay,
        raw_lag=raw_lag,
        spike_height=best_spike.height,
        network_delay=network_delay,
    )
