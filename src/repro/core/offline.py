"""Offline sliding-window replay over a stored trace.

The paper's Delta study analyzes "a week long trace collected from this
subsystem" offline, but the *algorithm* is the same sliding-window
process as the online engine. :func:`analyze_sliding` replays that
process over a collector: one analysis per refresh interval, each over
the trailing window -- producing the same (time, result) stream the
online engine emits, from data at rest.
"""

from __future__ import annotations

import logging
import time
from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Tuple

from repro.config import PathmapConfig
from repro.core.pathmap import PathmapResult, compute_service_graphs
from repro.errors import AnalysisError
from repro.tracing.collector import TraceCollector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry
    from repro.obs.spans import SpanTracer

logger = logging.getLogger(__name__)


def analyze_sliding(
    collector: TraceCollector,
    config: PathmapConfig,
    start_time: float,
    end_time: float,
    method: str = "auto",
    step: Optional[float] = None,
    metrics: Optional["MetricsRegistry"] = None,
    tracer: Optional["SpanTracer"] = None,
) -> Iterator[Tuple[float, PathmapResult]]:
    """Yield ``(refresh_time, PathmapResult)`` for every refresh in
    ``[start_time + W, end_time]``.

    The first refresh fires once a full window of trace is available;
    subsequent refreshes advance by ``step`` (default: the config's
    refresh interval; offline replays of long traces often subsample with
    a larger step). Lazy: callers can stop early (e.g. once a diagnosis
    is found in a week-long trace).
    """
    if step is None:
        step = config.refresh_interval
    if step <= 0:
        raise AnalysisError(f"step must be positive, got {step}")
    if end_time <= start_time:
        raise AnalysisError(
            f"empty replay range: [{start_time}, {end_time}]"
        )
    refresh = start_time + config.window
    if refresh > end_time:
        raise AnalysisError(
            "replay range shorter than one analysis window "
            f"({end_time - start_time:.1f}s < {config.window:.1f}s)"
        )
    hist = (
        metrics.histogram(
            "replay_refresh_seconds",
            "Wall-clock seconds per offline replay refresh",
        )
        if metrics is not None
        else None
    )
    if tracer is None:
        from repro.obs.spans import NULL_TRACER

        tracer = NULL_TRACER
    while refresh <= end_time:
        started = time.perf_counter()
        with tracer.span("replay.refresh", time=refresh):
            window = collector.window(
                config, end_time=refresh, start_time=refresh - config.window
            )
            result = compute_service_graphs(
                window, config, method=method, metrics=metrics, tracer=tracer
            )
        if hist is not None:
            hist.observe(time.perf_counter() - started)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "replay refresh at t=%.3f: %d graphs, %.1f ms",
                refresh,
                len(result.graphs),
                (time.perf_counter() - started) * 1e3,
            )
        yield refresh, result
        refresh += step


def replay_into(
    collector: TraceCollector,
    config: PathmapConfig,
    start_time: float,
    end_time: float,
    *subscribers: Callable[[float, PathmapResult], None],
    method: str = "auto",
    step: Optional[float] = None,
    metrics: Optional["MetricsRegistry"] = None,
    tracer: Optional["SpanTracer"] = None,
) -> List[Tuple[float, PathmapResult]]:
    """Run :func:`analyze_sliding` and feed every refresh to the given
    subscribers (change detectors, anomaly detectors, monitors...), so the
    exact online tooling runs against offline data. Returns the collected
    (time, result) list."""
    out: List[Tuple[float, PathmapResult]] = []
    for when, result in analyze_sliding(
        collector, config, start_time, end_time, method, step,
        metrics=metrics, tracer=tracer,
    ):
        for subscriber in subscribers:
            subscriber(when, result)
        out.append((when, result))
    return out
