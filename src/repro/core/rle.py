"""Run-length encoded time series (paper Section 3.5).

The paper observes that density time series of enterprise traces contain
many repeated values, and compresses them with run-length encoding: the
series becomes a sequence of 3-tuples ``(t, c, n)`` where ``t`` is the
quantum index of the first entry of the run, ``c`` is the run length, and
``n`` is the (constant) density value of the run.

Zero runs are never stored -- RLE composes with the burst-compression
optimization: quiet regions are simply gaps between runs.

The crucial property (exploited by :mod:`repro.core.correlation`) is that
the cross-correlation contribution of a *pair of runs* can be accumulated in
O(1) amortized time using the second-difference trick, instead of O(c_a *
c_b) per-sample multiplications.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List

import numpy as np

from repro.core.timeseries import DensityTimeSeries
from repro.errors import SeriesError


@dataclasses.dataclass(frozen=True)
class Run:
    """One RLE run: ``value`` repeated over quanta ``[start, start + count)``."""

    start: int
    count: int
    value: float

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SeriesError(f"run count must be >= 1, got {self.count}")
        if self.value <= 0:
            raise SeriesError(f"run value must be positive, got {self.value}")

    @property
    def end(self) -> int:
        """One past the last quantum of the run."""
        return self.start + self.count


class RunLengthSeries:
    """A non-negative series stored as maximal runs of equal positive values.

    Structurally equivalent to :class:`DensityTimeSeries` (same window
    semantics: absolute quanta in ``[start, start + length)``, unlisted
    quanta are zero), but grouped into runs.
    """

    __slots__ = (
        "starts", "counts", "values", "start", "length", "quantum",
        "_sparse", "_moments",
    )

    def __init__(
        self,
        starts: np.ndarray,
        counts: np.ndarray,
        values: np.ndarray,
        start: int,
        length: int,
        quantum: float,
    ) -> None:
        starts = np.asarray(starts, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if not (starts.shape == counts.shape == values.shape) or starts.ndim != 1:
            raise SeriesError("starts, counts and values must be 1-D and equal length")
        if length < 0:
            raise SeriesError(f"length must be non-negative, got {length}")
        if quantum <= 0:
            raise SeriesError(f"quantum must be positive, got {quantum}")
        if starts.size:
            if np.any(counts < 1):
                raise SeriesError("run counts must be >= 1")
            if np.any(values <= 0):
                raise SeriesError("run values must be strictly positive")
            ends = starts + counts
            if np.any(starts[1:] < ends[:-1]):
                raise SeriesError("runs must be sorted and non-overlapping")
            if starts[0] < start or ends[-1] > start + length:
                raise SeriesError(
                    f"runs fall outside the window [{start}, {start + length})"
                )
        self.starts = starts
        self.counts = counts
        self.values = values
        self.start = int(start)
        self.length = int(length)
        self.quantum = float(quantum)
        # Blocks are immutable once constructed and shared by every
        # correlator whose window covers them, so the sparse expansion and
        # the (total, energy) moments are computed lazily once per block
        # rather than once per correlator per refresh.
        self._sparse: object = None
        self._moments: object = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls, start: int, length: int, quantum: float) -> "RunLengthSeries":
        return cls(
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.float64),
            start,
            length,
            quantum,
        )

    @classmethod
    def from_runs(
        cls, runs: Iterable[Run], start: int, length: int, quantum: float
    ) -> "RunLengthSeries":
        runs = sorted(runs, key=lambda r: r.start)
        return cls(
            np.array([r.start for r in runs], dtype=np.int64),
            np.array([r.count for r in runs], dtype=np.int64),
            np.array([r.value for r in runs], dtype=np.float64),
            start,
            length,
            quantum,
        )

    # -- protocol -------------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Run]:
        for s, c, v in zip(self.starts.tolist(), self.counts.tolist(), self.values.tolist()):
            yield Run(s, c, v)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunLengthSeries):
            return NotImplemented
        return (
            self.start == other.start
            and self.length == other.length
            and self.quantum == other.quantum
            and np.array_equal(self.starts, other.starts)
            and np.array_equal(self.counts, other.counts)
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:
        return (
            f"RunLengthSeries(start={self.start}, length={self.length}, "
            f"runs={self.starts.size}, quantum={self.quantum})"
        )

    @property
    def num_runs(self) -> int:
        return int(self.starts.size)

    @property
    def end(self) -> int:
        return self.start + self.length

    @property
    def nnz(self) -> int:
        """Number of non-zero quanta covered by runs."""
        return int(self.counts.sum())

    # -- statistics (over the full window, zeros included) --------------------

    def total(self) -> float:
        return self._window_moments()[0]

    def energy(self) -> float:
        return self._window_moments()[1]

    def _window_moments(self) -> "Tuple[float, float]":
        moments = self._moments
        if moments is None:
            moments = (
                float(np.dot(self.counts, self.values)),
                float(np.dot(self.counts, self.values * self.values)),
            )
            self._moments = moments
        return moments

    def mean(self) -> float:
        if self.length == 0:
            return 0.0
        return self.total() / self.length

    def variance(self) -> float:
        if self.length == 0:
            return 0.0
        mu = self.mean()
        return max(0.0, self.energy() / self.length - mu * mu)

    def std(self) -> float:
        return float(np.sqrt(self.variance()))

    def compression_factor(self) -> float:
        """The paper's ``r``: non-zero samples per stored run tuple."""
        if self.num_runs == 0:
            return 1.0
        return self.nnz / self.num_runs

    def overall_compression(self) -> float:
        """Window quanta per stored run tuple (``k * r`` in the paper)."""
        if self.num_runs == 0:
            return float(self.length) if self.length else 1.0
        return self.length / self.num_runs

    # -- conversions -----------------------------------------------------------

    def to_sparse(self) -> DensityTimeSeries:
        """Expand runs back into a sparse density series (exact inverse).

        The expansion is cached: repeated calls return the same
        :class:`DensityTimeSeries` object.
        """
        cached = self._sparse
        if cached is None:
            if self.num_runs == 0:
                cached = DensityTimeSeries.empty(self.start, self.length, self.quantum)
            else:
                indices = np.concatenate(
                    [np.arange(s, s + c, dtype=np.int64) for s, c in zip(self.starts, self.counts)]
                )
                values = np.repeat(self.values, self.counts)
                cached = DensityTimeSeries(
                    indices, values, self.start, self.length, self.quantum
                )
            self._sparse = cached
        return cached

    def to_dense(self) -> np.ndarray:
        return self.to_sparse().to_dense()

    def restricted(self, start: int, length: int) -> "RunLengthSeries":
        """Return the sub-series over ``[start, start + length)``, splitting runs."""
        if length < 0:
            raise SeriesError(f"length must be non-negative, got {length}")
        end = start + length
        out: List[Run] = []
        for run in self:
            s = max(run.start, start)
            e = min(run.end, end)
            if e > s:
                out.append(Run(s, e - s, run.value))
        return RunLengthSeries.from_runs(out, start, length, self.quantum)

    def shifted(self, offset: int) -> "RunLengthSeries":
        return RunLengthSeries(
            self.starts + offset,
            self.counts.copy(),
            self.values.copy(),
            self.start + offset,
            self.length,
            self.quantum,
        )

    def concatenated(self, other: "RunLengthSeries") -> "RunLengthSeries":
        """Append an adjacent series, merging a run that spans the boundary."""
        if other.quantum != self.quantum:
            raise SeriesError(f"quantum mismatch: {self.quantum} vs {other.quantum}")
        if other.start != self.end:
            raise SeriesError(f"series are not adjacent: {self.end} != {other.start}")
        runs = list(self) + list(other)
        merged: List[Run] = []
        for run in runs:
            if (
                merged
                and merged[-1].end == run.start
                and merged[-1].value == run.value
            ):
                prev = merged.pop()
                run = Run(prev.start, prev.count + run.count, run.value)
            merged.append(run)
        return RunLengthSeries.from_runs(
            merged, self.start, self.length + other.length, self.quantum
        )


def rle_encode(series: DensityTimeSeries, value_tolerance: float = 0.0) -> RunLengthSeries:
    """Encode a sparse density series into maximal runs.

    Consecutive quanta form one run when their values are equal (or within
    ``value_tolerance``, in which case the run stores the first value --
    lossy, off by default).
    """
    if series.nnz == 0:
        return RunLengthSeries.empty(series.start, series.length, series.quantum)

    idx = series.indices
    val = series.values
    # A run breaks where indices are non-contiguous or values differ.
    contiguous = np.diff(idx) == 1
    if value_tolerance > 0:
        same_value = np.abs(np.diff(val)) <= value_tolerance
    else:
        same_value = val[1:] == val[:-1]
    breaks = np.flatnonzero(~(contiguous & same_value)) + 1
    bounds = np.concatenate([[0], breaks, [idx.size]])

    starts = idx[bounds[:-1]]
    counts = bounds[1:] - bounds[:-1]
    values = val[bounds[:-1]]
    return RunLengthSeries(
        starts, counts, values, series.start, series.length, series.quantum
    )


def rle_decode(series: RunLengthSeries) -> DensityTimeSeries:
    """Inverse of :func:`rle_encode` (exact when encoding was lossless)."""
    return series.to_sparse()
