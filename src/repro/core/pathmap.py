"""The pathmap algorithm (paper Section 3.3, Algorithm 1).

Pathmap discovers, for every (front-end node, client node) pair, the
causal service graph of that client's service class:

1. ``ServiceRoot`` seeds one :class:`~repro.core.service_graph.ServiceGraph`
   per pair, rooted at the front end, with the implicit client edge.
2. ``ComputePath`` cross-correlates the class's *reference signal* (the
   time series of the client's requests arriving at the front end,
   ``T^{S_i}_{V_c -> S_i}``) against the signal of every edge leaving the
   current node, observed at the edge's destination. Correlation spikes
   identify causal edges; spike lags become cumulative delay labels.
3. Recursion proceeds depth-first into nodes not yet visited for this
   class (cycles from request-response return paths are unrolled).

The algorithm is black-box: its only input is a :class:`TraceWindow`
(per-edge message time series for one sliding window), which the tracing
subsystem assembles from passively captured packet timestamps. No
application cooperation, source code, or instrumentation is required.
"""

from __future__ import annotations

import abc
import concurrent.futures
import dataclasses
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

from repro.config import PathmapConfig
from repro.core.correlation import CorrelationSeries, SeriesLike, cross_correlate
from repro.core.service_graph import NodeId, ServiceGraph
from repro.core.spikes import Spike, detect_spikes
from repro.errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.confidence import ConfidenceReport
    from repro.obs.ledger import RefreshLedger
    from repro.obs.registry import MetricsRegistry
    from repro.obs.spans import SpanTracer
    from repro.tracing.transport import DataQuality


class TraceWindow(abc.ABC):
    """One sliding window of per-edge traffic signals.

    This is the boundary between the tracing substrate and the analysis:
    anything that can answer these five queries can be analyzed by
    pathmap (network packet traces, application access logs, simulated
    traffic...).
    """

    @abc.abstractmethod
    def front_end_nodes(self) -> List[NodeId]:
        """Service nodes that receive requests directly from clients."""

    @abc.abstractmethod
    def clients_of(self, node: NodeId) -> List[NodeId]:
        """Client nodes connected to a front-end node in this window."""

    @abc.abstractmethod
    def destinations_of(self, node: NodeId) -> List[NodeId]:
        """Nodes that ``node`` sent at least one message to in this window
        (may include client nodes, for response edges)."""

    @abc.abstractmethod
    def edge_series(self, src: NodeId, dst: NodeId) -> SeriesLike:
        """Density time series of messages ``src -> dst``, timestamped at
        the destination when the destination is traced, else at the source
        (client nodes are never traced -- paper Section 3.3)."""

    @abc.abstractmethod
    def is_client(self, node: NodeId) -> bool:
        """True when ``node`` is a client node (never recursed into)."""


def class_pairs(window: TraceWindow) -> List[Tuple[NodeId, NodeId]]:
    """Every ``(client, front_end)`` service class, in analysis order.

    The order is canonical (sorted, deterministic).

    This is the unit both of the DFS loop and of consistent-hash
    sharding: the engine partitions exactly this list across shard
    worker processes, so the disjoint per-shard unions reconstruct the
    serial pass bit-for-bit.
    """
    return [
        (client, root)
        for root in window.front_end_nodes()
        for client in window.clients_of(root)
    ]


@dataclasses.dataclass
class PathmapStats:
    """Work counters for one analysis pass (feeds the Figure 9 benchmark)."""

    correlations: int = 0
    spikes: int = 0
    edges_discovered: int = 0
    graphs: int = 0
    nodes_visited: int = 0
    elapsed_seconds: float = 0.0


@dataclasses.dataclass
class PathmapResult:
    """All service graphs recovered from one window, plus work stats.

    When the engine runs over the fault-tolerant transport, the result
    also carries transport-health annotations: ``edge_quality`` maps each
    tracked edge to its :class:`~repro.tracing.transport.DataQuality`
    (fresh / degraded / stale + gap ratio) and ``quality`` is the
    overall window score in ``[0, 1]`` (1.0 means every signal was
    complete and live). Paths built on degraded edges are annotated --
    never silently dropped -- so subscribers can weigh them.
    """

    graphs: Dict[Tuple[NodeId, NodeId], ServiceGraph]
    stats: PathmapStats
    #: Per-edge transport-data quality (empty without transport).
    edge_quality: Dict[Tuple[NodeId, NodeId], "DataQuality"] = dataclasses.field(
        default_factory=dict
    )
    #: Overall data-quality score of the window (1.0 = fully fresh).
    quality: float = 1.0
    #: Per-class steady-state confidence (empty until annotated).
    class_confidence: Dict[Tuple[NodeId, NodeId], "ConfidenceReport"] = (
        dataclasses.field(default_factory=dict)
    )
    #: Overall steady-state confidence of the window: the minimum class
    #: score, 1.0 when nothing was graded (no classes, scoring off).
    confidence: float = 1.0
    #: Per-stage / per-kernel cost accounting of the refresh that built
    #: this result (:class:`repro.obs.ledger.RefreshLedger`; None for
    #: results computed outside an engine, e.g. one-shot analysis).
    ledger: Optional["RefreshLedger"] = None

    def annotate_ledger(self, ledger: "RefreshLedger") -> None:
        """Attach the producing refresh's cost ledger to this result."""
        self.ledger = ledger

    def annotate_confidence(
        self, class_confidence: Dict[Tuple[NodeId, NodeId], "ConfidenceReport"]
    ) -> None:
        """Attach per-class steady-state confidence reports and stamp
        each onto its service graph. The overall score is the minimum --
        one unsteady class makes the whole window suspect for comparison
        across refreshes, while per-class verdicts stay available."""
        self.class_confidence = dict(class_confidence)
        if self.class_confidence:
            self.confidence = min(
                report.score for report in self.class_confidence.values()
            )
        for class_key, graph in self.graphs.items():
            report = self.class_confidence.get(class_key)
            if report is not None:
                graph.confidence = report

    def low_confidence_classes(
        self,
    ) -> Dict[Tuple[NodeId, NodeId], "ConfidenceReport"]:
        """Classes whose window violated the steady-state assumption."""
        return {k: r for k, r in self.class_confidence.items() if not r.ok}

    def annotate_quality(
        self,
        edge_quality: Dict[Tuple[NodeId, NodeId], "DataQuality"],
        quality: float,
    ) -> None:
        """Attach transport-health verdicts to this result and stamp the
        non-fresh ones onto the matching discovered graph edges."""
        self.edge_quality = dict(edge_quality)
        self.quality = quality
        for graph in self.graphs.values():
            for edge in graph.edges:
                verdict = self.edge_quality.get(edge.key)
                if verdict is not None and not verdict.ok:
                    edge.quality = verdict

    def degraded_edges(self) -> Dict[Tuple[NodeId, NodeId], "DataQuality"]:
        """Edges whose signal was degraded or stale this window."""
        return {k: q for k, q in self.edge_quality.items() if not q.ok}

    def graph_for(self, client: NodeId, root: Optional[NodeId] = None) -> ServiceGraph:
        """The service graph of one client (and optionally one root)."""
        matches = [
            g
            for (c, r), g in self.graphs.items()
            if c == client and (root is None or r == root)
        ]
        if not matches:
            raise AnalysisError(f"no service graph for client {client!r}")
        if len(matches) > 1:
            raise AnalysisError(
                f"client {client!r} has {len(matches)} service graphs; "
                "specify the root"
            )
        return matches[0]


#: Signature of a pluggable correlation provider: given the reference and
#: edge signals plus their identifying keys, return a correlation series.
#: The online engine plugs in a provider backed by incremental correlators.
CorrelationProvider = Callable[
    [SeriesLike, SeriesLike, Tuple[NodeId, NodeId], Tuple[NodeId, NodeId]],
    "CorrelationSeries",
]


class Pathmap:
    """Configured pathmap analyzer.

    Parameters
    ----------
    config:
        Algorithm parameters (W, dW, tau, omega, T_u, spike threshold).
    method:
        Correlation implementation: ``"auto"``, ``"dense"``, ``"sparse"``,
        ``"rle"`` or ``"fft"`` (see :mod:`repro.core.correlation`).
    correlation_provider:
        Optional override for how edge correlations are produced. Receives
        ``(reference_series, edge_series, (client, root), (src, dst))`` and
        returns a :class:`~repro.core.correlation.CorrelationSeries`. Used
        by the online engine to substitute cached incremental correlators.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving,
        per analysis pass, the DFS work counters
        (``pathmap_correlations_total``, ``pathmap_spikes_total``,
        ``pathmap_edges_total``, ``pathmap_nodes_visited_total``) and a
        per-service-class wall-time histogram
        (``pathmap_class_seconds{class="C1@WS"}``).
    tracer:
        Optional :class:`~repro.obs.spans.SpanTracer`: when enabled, each
        service class's DFS runs under a ``pathmap.class`` span (labelled
        ``client@root``) with its work counters as span attributes.
    """

    def __init__(
        self,
        config: PathmapConfig,
        method: str = "auto",
        correlation_provider: Optional[CorrelationProvider] = None,
        metrics: Optional["MetricsRegistry"] = None,
        tracer: Optional["SpanTracer"] = None,
    ) -> None:
        self.config = config
        self.method = method
        self._provider = correlation_provider or self._default_provider
        self._metrics = metrics
        if tracer is None:
            from repro.obs.spans import NULL_TRACER

            tracer = NULL_TRACER
        self._tracer = tracer
        # Spike-scan memo: when the provider returns the *same*
        # CorrelationSeries object as last time for a (class, edge) pair --
        # the incremental correlator's dirty-flag cache does exactly that
        # for quiet edges -- the previous detect_spikes result is reused.
        # Holding a strong reference to the series makes the identity check
        # safe (the id cannot be recycled while the entry lives). Each key
        # is only ever touched by its own service class's DFS, so the memo
        # needs no locking under parallel analyze().
        self._spike_cache: Dict[
            Tuple[Tuple[NodeId, NodeId], Tuple[NodeId, NodeId]],
            Tuple["CorrelationSeries", List[Spike]],
        ] = {}

    def _default_provider(
        self,
        reference: SeriesLike,
        signal: SeriesLike,
        ref_key: Tuple[NodeId, NodeId],
        edge_key: Tuple[NodeId, NodeId],
    ) -> "CorrelationSeries":
        return cross_correlate(
            reference, signal, max_lag=self.config.max_lag_quanta, method=self.method
        )

    # -- Algorithm 1: ServiceRoot ------------------------------------------------

    def analyze(
        self,
        window: TraceWindow,
        workers: int = 1,
        executor: Optional[concurrent.futures.Executor] = None,
        pairs: Optional[List[Tuple[NodeId, NodeId]]] = None,
    ) -> PathmapResult:
        """Compute the service graphs of every service class in ``window``.

        ``workers > 1`` parallelizes the inner loop of ServiceRoot across
        a thread pool -- the paper's Section 3.7 scalability note ("The
        pathmap algorithm can easily be made more scalable by parallely
        computing the service graph of each client node"). The numpy
        correlation kernels release the GIL, so threads give real
        speedup; results are identical to the serial order. Passing a
        persistent ``executor`` (the online engine keeps one across its
        whole attach/detach lifetime) avoids re-spawning a pool on every
        refresh.

        ``pairs`` restricts the pass to an explicit subset of
        ``(client, root)`` service classes -- how a shard worker process
        computes only its owned partition. Defaults to every class in
        the window (:func:`class_pairs`), so a partitioned union over
        disjoint subsets merges to exactly the full result.
        """
        started = time.perf_counter()
        stats = PathmapStats()
        if pairs is None:
            pairs = class_pairs(window)

        def analyze_pair(pair: Tuple[NodeId, NodeId]) -> Tuple[Tuple[NodeId, NodeId], ServiceGraph, PathmapStats]:
            client, root = pair
            pair_started = time.perf_counter()
            graph = ServiceGraph(client, root)
            local = PathmapStats()
            with self._tracer.span(
                "pathmap.class", service_class=f"{client}@{root}"
            ) as span:
                reference = window.edge_series(client, root)
                visited: Set[NodeId] = set()
                self._compute_path(graph, reference, root, visited, window, local)
                span.set_attribute("correlations", local.correlations)
                span.set_attribute("spikes", local.spikes)
                span.set_attribute("edges", local.edges_discovered)
                span.set_attribute("nodes_visited", local.nodes_visited)
            local.graphs = 1
            if self._metrics is not None:
                self._metrics.histogram(
                    "pathmap_class_seconds",
                    "Wall-clock seconds to compute one service class's graph",
                    labels={"class": f"{client}@{root}"},
                ).observe(time.perf_counter() - pair_started)
            return pair, graph, local

        graphs: Dict[Tuple[NodeId, NodeId], ServiceGraph] = {}
        if workers > 1 and len(pairs) > 1:
            if executor is not None:
                outcomes = list(executor.map(analyze_pair, pairs))
            else:
                with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(analyze_pair, pairs))
        else:
            outcomes = [analyze_pair(pair) for pair in pairs]
        for pair, graph, local in outcomes:
            graphs[pair] = graph
            stats.correlations += local.correlations
            stats.spikes += local.spikes
            stats.edges_discovered += local.edges_discovered
            stats.graphs += local.graphs
            stats.nodes_visited += local.nodes_visited
        stats.elapsed_seconds = time.perf_counter() - started
        if self._metrics is not None:
            self._record_stats(stats)
        return PathmapResult(graphs, stats)

    def _record_stats(self, stats: PathmapStats) -> None:
        m = self._metrics
        m.counter(
            "pathmap_correlations_total", "Edge correlations evaluated by the DFS"
        ).inc(stats.correlations)
        m.counter(
            "pathmap_spikes_total", "Correlation spikes detected"
        ).inc(stats.spikes)
        m.counter(
            "pathmap_edges_total", "Causal edges discovered"
        ).inc(stats.edges_discovered)
        m.counter(
            "pathmap_nodes_visited_total", "Nodes the DFS recursed into"
        ).inc(stats.nodes_visited)
        m.histogram(
            "pathmap_analysis_seconds", "Wall-clock seconds per full analysis pass"
        ).observe(stats.elapsed_seconds)

    # -- Algorithm 1: ComputePath --------------------------------------------------

    def _compute_path(
        self,
        graph: ServiceGraph,
        reference: SeriesLike,
        node: NodeId,
        visited: Set[NodeId],
        window: TraceWindow,
        stats: PathmapStats,
    ) -> None:
        visited.add(node)
        stats.nodes_visited += 1
        ref_key = (graph.client, graph.root)
        for dest in window.destinations_of(node):
            # Response edges back to client nodes are correlated too (they
            # expose the end-to-end latency) but never extend the recursion.
            spikes = self._correlate_edge(
                reference, window.edge_series(node, dest), ref_key, (node, dest), stats
            )
            if not spikes:
                continue
            graph.add_edge(node, dest, [s.delay for s in spikes], spikes)
            stats.edges_discovered += 1
            if dest not in visited and not window.is_client(dest):
                self._compute_path(graph, reference, dest, visited, window, stats)

    def _correlate_edge(
        self,
        reference: SeriesLike,
        signal: SeriesLike,
        ref_key: Tuple[NodeId, NodeId],
        edge_key: Tuple[NodeId, NodeId],
        stats: PathmapStats,
    ) -> List[Spike]:
        cfg = self.config
        corr = self._provider(reference, signal, ref_key, edge_key)
        stats.correlations += 1
        if corr.n < cfg.min_overlap_samples:
            return []
        memo_key = (ref_key, edge_key)
        memo = self._spike_cache.get(memo_key)
        if memo is not None and memo[0] is corr:
            spikes = memo[1]
        else:
            spikes = detect_spikes(
                corr,
                sigma=cfg.spike_sigma,
                resolution_quanta=cfg.resolution_quanta,
                min_height=cfg.min_spike_height,
            )
            self._spike_cache[memo_key] = (corr, spikes)
        stats.spikes += len(spikes)
        return spikes


def compute_service_graphs(
    window: TraceWindow,
    config: PathmapConfig,
    method: str = "auto",
    workers: int = 1,
    metrics: Optional["MetricsRegistry"] = None,
    tracer: Optional["SpanTracer"] = None,
) -> PathmapResult:
    """Convenience wrapper: one-shot pathmap analysis of a window."""
    return Pathmap(config, method=method, metrics=metrics, tracer=tracer).analyze(
        window, workers=workers
    )
