"""Spike detection in cross-correlation series (paper Section 3.3).

"Spikes in the cross-correlation series are detected by finding points
that are local maximas and exceed a threshold (mean + 3 x Std.Dev.). In
traces with some noise, there may exist spikes that are very close to each
other. To address this issue, we define a resolution threshold window that
chooses only the tallest spike in a particular window."
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.core.correlation import CorrelationSeries


@dataclasses.dataclass(frozen=True)
class Spike:
    """A detected correlation spike.

    Attributes
    ----------
    lag:
        Lag position in quanta.
    delay:
        The same position converted to seconds -- the causal delay the
        spike denotes.
    height:
        Correlation value at the spike.
    prominence:
        Height above the detection threshold (``height - threshold``);
        useful for ranking competing spikes.
    """

    lag: int
    delay: float
    height: float
    prominence: float


def detect_spikes(
    corr: CorrelationSeries,
    sigma: float = 3.0,
    resolution_quanta: int = 1,
    max_spikes: int | None = None,
    min_height: float = 0.0,
) -> List[Spike]:
    """Find spikes: local maxima exceeding ``mean + sigma * std``.

    Parameters
    ----------
    corr:
        A correlation series (lags ``0..max_lag``).
    sigma:
        Threshold multiplier; the paper uses 3.
    resolution_quanta:
        Width of the resolution window: among spikes whose lags are within
        this many quanta of a taller spike, only the tallest survives.
    max_spikes:
        Optionally keep only the ``max_spikes`` tallest spikes.
    min_height:
        Absolute floor on the correlation value of a spike (0.0 keeps the
        paper's pure relative rule; a small positive value suppresses
        chance alignments on unrelated edges).

    Returns
    -------
    list of :class:`Spike`, sorted by lag.

    Degenerate correlation series (zero-variance inputs) yield no spikes,
    as do series too short for a meaningful threshold.
    """
    if corr.degenerate:
        return []
    values = corr.values
    if values.size < 3:
        return []
    mean = float(values.mean())
    std = float(values.std())
    if std == 0.0:
        # A perfectly flat series carries no causal information.
        return []
    threshold = max(mean + sigma * std, min_height)

    candidates = _local_maxima_above(values, threshold)
    if not candidates:
        return []
    survivors = _apply_resolution_window(values, candidates, resolution_quanta)
    spikes = [
        Spike(
            lag=int(lag),
            delay=float(lag) * corr.quantum,
            height=float(values[lag]),
            prominence=float(values[lag] - threshold),
        )
        for lag in survivors
    ]
    if max_spikes is not None and len(spikes) > max_spikes:
        spikes = sorted(spikes, key=lambda s: -s.height)[:max_spikes]
    return sorted(spikes, key=lambda s: s.lag)


def _local_maxima_above(values: np.ndarray, threshold: float) -> List[int]:
    """Indices that are local maxima (plateau-aware) and exceed threshold."""
    n = values.size
    above = values > threshold
    if not np.any(above):
        return []
    out: List[int] = []
    i = 0
    while i < n:
        if not above[i]:
            i += 1
            continue
        # Expand a plateau of equal values.
        j = i
        while j + 1 < n and values[j + 1] == values[i]:
            j += 1
        left_ok = i == 0 or values[i - 1] < values[i]
        right_ok = j == n - 1 or values[j + 1] < values[i]
        if left_ok and right_ok:
            # Report the centre of the plateau.
            out.append((i + j) // 2)
        i = j + 1
    return out


def _apply_resolution_window(
    values: np.ndarray, candidates: Sequence[int], resolution_quanta: int
) -> List[int]:
    """Among candidates within ``resolution_quanta`` of each other, keep the
    tallest (ties broken toward the smaller lag)."""
    if resolution_quanta <= 1 or len(candidates) <= 1:
        return list(candidates)
    # Greedy by height: tallest spikes claim their window first.
    order = sorted(candidates, key=lambda i: (-values[i], i))
    kept: List[int] = []
    for cand in order:
        if all(abs(cand - k) >= resolution_quanta for k in kept):
            kept.append(cand)
    return sorted(kept)


def strongest_spike(spikes: Sequence[Spike]) -> Spike | None:
    """The tallest spike, or None when the list is empty."""
    if not spikes:
        return None
    return max(spikes, key=lambda s: s.height)


def earliest_spike(spikes: Sequence[Spike]) -> Spike | None:
    """The spike with the smallest lag, or None when the list is empty."""
    if not spikes:
        return None
    return min(spikes, key=lambda s: s.lag)
