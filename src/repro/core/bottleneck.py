"""Bottleneck identification (paper Section 4.1.1).

"The major sources of delay are automatically detected by E2EProf and
marked in grey (i.e., the EJB servers in the figure)."

Given a service graph, the per-node computation delays are ranked; nodes
whose delay exceeds a configurable share of the path total are flagged as
bottlenecks (the grey nodes of Figures 5 and 6).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.service_graph import NodeId, ServiceGraph
from repro.errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class BottleneckReport:
    """Ranked per-node delay attribution for one service class."""

    client: NodeId
    node_delays: Dict[NodeId, float]
    bottlenecks: List[NodeId]
    total_delay: float

    def share(self, node: NodeId) -> float:
        """Fraction of the total attributed delay spent at ``node``."""
        if self.total_delay <= 0:
            return 0.0
        return self.node_delays.get(node, 0.0) / self.total_delay

    def dominant(self) -> NodeId:
        """The single largest contributor."""
        if not self.node_delays:
            raise AnalysisError("no node delays to rank")
        return max(self.node_delays, key=self.node_delays.get)


def find_bottlenecks(
    graph: ServiceGraph, threshold_share: float = 0.30
) -> BottleneckReport:
    """Flag nodes contributing more than ``threshold_share`` of the
    summed per-node delay of a service graph.

    The paper's figures mark exactly these nodes grey. A share threshold
    (rather than a fixed count) naturally flags multiple nodes when delay
    is concentrated in a tier, and none when it is evenly spread.
    """
    if not 0 < threshold_share <= 1:
        raise AnalysisError(
            f"threshold_share must be in (0, 1], got {threshold_share}"
        )
    delays = graph.node_delays()
    total = sum(delays.values())
    bottlenecks = sorted(
        (node for node, delay in delays.items() if total > 0 and delay / total >= threshold_share),
        key=lambda node: -delays[node],
    )
    return BottleneckReport(
        client=graph.client,
        node_delays=delays,
        bottlenecks=bottlenecks,
        total_delay=total,
    )


def rank_nodes(graph: ServiceGraph) -> List[NodeId]:
    """All nodes with defined computation delay, slowest first."""
    delays = graph.node_delays()
    return sorted(delays, key=lambda node: -delays[node])
