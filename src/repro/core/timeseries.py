"""Density time series (paper Section 3.5).

Message traces collected at service nodes are converted to time series with
a *density function*::

    d(i) = sqrt(#messages in [i*tau - omega/2, i*tau + omega/2])

where ``tau`` is the time quantum and ``omega`` the rectangular sampling
window (an integral multiple of ``tau``). The square root damps the
dominance of large bursts, and the boxcar window suppresses jitter noise.

Following the paper's "burst compression" optimization, series are stored
**sparsely**: quanta whose density is zero are simply not recorded. The
sparse form is what makes direct cross-correlation cheap on bursty traffic
(Section 3.4, optimization 3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

import numpy as np

from repro.errors import SeriesError


class DensityTimeSeries:
    """A sparse, non-negative time series over a window of quanta.

    Parameters
    ----------
    indices:
        Absolute quantum indices of the non-zero samples, sorted strictly
        increasing.
    values:
        Strictly positive sample values, one per index.
    start:
        Absolute index of the first quantum of the window.
    length:
        Number of quanta in the window. Samples exist for indices in
        ``[start, start + length)``; indices not listed have value zero.
    quantum:
        Quantum duration in seconds (used only to convert lags back to
        seconds; the series itself is index-based).
    """

    __slots__ = ("indices", "values", "start", "length", "quantum")

    def __init__(
        self,
        indices: np.ndarray,
        values: np.ndarray,
        start: int,
        length: int,
        quantum: float,
    ) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.ndim != 1 or values.ndim != 1:
            raise SeriesError("indices and values must be one-dimensional")
        if indices.shape != values.shape:
            raise SeriesError(
                f"indices and values length mismatch: {indices.shape} vs {values.shape}"
            )
        if length < 0:
            raise SeriesError(f"length must be non-negative, got {length}")
        if quantum <= 0:
            raise SeriesError(f"quantum must be positive, got {quantum}")
        if indices.size:
            if np.any(np.diff(indices) <= 0):
                raise SeriesError("indices must be strictly increasing")
            if indices[0] < start or indices[-1] >= start + length:
                raise SeriesError(
                    "indices fall outside the window "
                    f"[{start}, {start + length}): "
                    f"[{indices[0]}, {indices[-1]}]"
                )
            if np.any(values <= 0):
                raise SeriesError("sparse values must be strictly positive")
        self.indices = indices
        self.values = values
        self.start = int(start)
        self.length = int(length)
        self.quantum = float(quantum)

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls, start: int, length: int, quantum: float) -> "DensityTimeSeries":
        """An all-zero series over ``[start, start + length)``."""
        return cls(np.empty(0, np.int64), np.empty(0, np.float64), start, length, quantum)

    @classmethod
    def from_dense(
        cls, dense: Sequence[float], start: int, quantum: float
    ) -> "DensityTimeSeries":
        """Build from a dense array; zero entries are dropped."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 1:
            raise SeriesError("dense input must be one-dimensional")
        if np.any(dense < 0):
            raise SeriesError("density values must be non-negative")
        nz = np.flatnonzero(dense)
        return cls(nz + start, dense[nz], start, dense.size, quantum)

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[int, float]],
        start: int,
        length: int,
        quantum: float,
    ) -> "DensityTimeSeries":
        """Build from ``(index, value)`` pairs (any order; zeros dropped)."""
        items = sorted((int(i), float(v)) for i, v in pairs if v != 0.0)
        if items:
            indices = np.array([i for i, _ in items], dtype=np.int64)
            values = np.array([v for _, v in items], dtype=np.float64)
        else:
            indices = np.empty(0, np.int64)
            values = np.empty(0, np.float64)
        return cls(indices, values, start, length, quantum)

    # -- basic protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return zip(self.indices.tolist(), self.values.tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DensityTimeSeries):
            return NotImplemented
        return (
            self.start == other.start
            and self.length == other.length
            and self.quantum == other.quantum
            and np.array_equal(self.indices, other.indices)
            and np.array_equal(self.values, other.values)
        )

    def __repr__(self) -> str:
        return (
            f"DensityTimeSeries(start={self.start}, length={self.length}, "
            f"nnz={self.indices.size}, quantum={self.quantum})"
        )

    # -- statistics (over the FULL window, zeros included) -------------------

    @property
    def nnz(self) -> int:
        """Number of non-zero samples."""
        return int(self.indices.size)

    @property
    def end(self) -> int:
        """One past the last quantum index of the window."""
        return self.start + self.length

    def total(self) -> float:
        """Sum of all samples."""
        return float(self.values.sum())

    def energy(self) -> float:
        """Sum of squared samples."""
        return float(np.dot(self.values, self.values))

    def mean(self) -> float:
        """Mean over the whole window (zeros included)."""
        if self.length == 0:
            return 0.0
        return self.total() / self.length

    def variance(self) -> float:
        """Population variance over the whole window (zeros included)."""
        if self.length == 0:
            return 0.0
        mu = self.mean()
        return max(0.0, self.energy() / self.length - mu * mu)

    def std(self) -> float:
        """Population standard deviation over the whole window."""
        return float(np.sqrt(self.variance()))

    def compression_factor(self) -> float:
        """The paper's ``k``: window length over number of stored samples."""
        if self.nnz == 0:
            return float(self.length) if self.length else 1.0
        return self.length / self.nnz

    # -- transformations ------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialize the full window as a dense float array."""
        dense = np.zeros(self.length, dtype=np.float64)
        if self.indices.size:
            dense[self.indices - self.start] = self.values
        return dense

    def shifted(self, offset: int) -> "DensityTimeSeries":
        """Return a copy translated by ``offset`` quanta."""
        return DensityTimeSeries(
            self.indices + offset,
            self.values.copy(),
            self.start + offset,
            self.length,
            self.quantum,
        )

    def restricted(self, start: int, length: int) -> "DensityTimeSeries":
        """Return the sub-series over ``[start, start + length)``.

        The requested window may extend beyond this series' window; samples
        only exist where the two overlap.
        """
        if length < 0:
            raise SeriesError(f"length must be non-negative, got {length}")
        lo = np.searchsorted(self.indices, start, side="left")
        hi = np.searchsorted(self.indices, start + length, side="left")
        return DensityTimeSeries(
            self.indices[lo:hi].copy(),
            self.values[lo:hi].copy(),
            start,
            length,
            self.quantum,
        )

    def concatenated(self, other: "DensityTimeSeries") -> "DensityTimeSeries":
        """Append ``other``, which must start exactly where this series ends."""
        if other.quantum != self.quantum:
            raise SeriesError(
                f"quantum mismatch: {self.quantum} vs {other.quantum}"
            )
        if other.start != self.end:
            raise SeriesError(
                f"series are not adjacent: {self.end} != {other.start}"
            )
        return DensityTimeSeries(
            np.concatenate([self.indices, other.indices]),
            np.concatenate([self.values, other.values]),
            self.start,
            self.length + other.length,
            self.quantum,
        )

    def scaled(self, factor: float) -> "DensityTimeSeries":
        """Return a copy with every sample multiplied by ``factor > 0``."""
        if factor <= 0:
            raise SeriesError(f"scale factor must be positive, got {factor}")
        return DensityTimeSeries(
            self.indices.copy(),
            self.values * factor,
            self.start,
            self.length,
            self.quantum,
        )


def quantize_timestamps(
    timestamps: Sequence[float], quantum: float, origin: float = 0.0
) -> np.ndarray:
    """Map timestamps (seconds) to absolute quantum indices.

    ``origin`` anchors index 0; timestamps before the origin yield negative
    indices, which callers typically exclude via the window bounds.
    """
    ts = np.asarray(timestamps, dtype=np.float64)
    if quantum <= 0:
        raise SeriesError(f"quantum must be positive, got {quantum}")
    return np.floor((ts - origin) / quantum).astype(np.int64)


def build_density_series(
    timestamps: Sequence[float],
    quantum: float,
    sampling_quanta: int,
    window_start: int,
    window_length: int,
    origin: float = 0.0,
) -> DensityTimeSeries:
    """Compute the paper's density function over a window of quanta.

    Parameters
    ----------
    timestamps:
        Message timestamps in seconds (any order).
    quantum:
        ``tau`` in seconds.
    sampling_quanta:
        ``omega / tau`` -- the width of the rectangular sampling window in
        quanta (>= 1). The count at quantum ``i`` includes all messages whose
        quantum lies within ``sampling_quanta`` consecutive quanta centred
        on ``i``.
    window_start, window_length:
        The absolute quantum range ``[window_start, window_start +
        window_length)`` covered by the resulting series.
    origin:
        Timestamp (seconds) of quantum index 0.

    Returns
    -------
    DensityTimeSeries
        ``d(i) = sqrt(boxcar-count at i)`` with zero entries dropped.
    """
    if sampling_quanta < 1:
        raise SeriesError(f"sampling_quanta must be >= 1, got {sampling_quanta}")
    if window_length < 0:
        raise SeriesError(f"window_length must be non-negative, got {window_length}")
    if window_length == 0:
        return DensityTimeSeries.empty(window_start, 0, quantum)

    half_lo = sampling_quanta // 2
    half_hi = sampling_quanta - half_lo - 1  # centred boxcar, total width = omega

    indices = quantize_timestamps(timestamps, quantum, origin)
    # The boxcar at quantum i covers [i - half_lo, i + half_hi], so messages
    # up to half a sampling window outside the range still contribute to
    # boundary quanta.
    lo = window_start - half_lo
    hi = window_start + window_length + half_hi
    indices = indices[(indices >= lo) & (indices < hi)]
    if indices.size == 0:
        return DensityTimeSeries.empty(window_start, window_length, quantum)

    counts = np.bincount(indices - lo, minlength=hi - lo).astype(np.float64)
    if sampling_quanta > 1:
        # Boxcar at absolute quantum i sums counts over [i - half_lo,
        # i + half_hi]; `counts[0]` corresponds to absolute index `lo`.
        csum = np.concatenate([[0.0], np.cumsum(counts)])
        base = window_start - lo
        starts = np.arange(window_length) + base - half_lo
        stops = starts + sampling_quanta
        starts = np.clip(starts, 0, counts.size)
        stops = np.clip(stops, 0, counts.size)
        out = csum[stops] - csum[starts]
    else:
        base = window_start - lo
        out = counts[base : base + window_length]

    dense = np.sqrt(out)
    return DensityTimeSeries.from_dense(dense, window_start, quantum)


def aligned_windows(
    a: DensityTimeSeries, b: DensityTimeSeries
) -> Tuple[DensityTimeSeries, DensityTimeSeries]:
    """Restrict both series to their common window.

    Raises :class:`SeriesError` when the series use different quanta or do
    not overlap at all.
    """
    if a.quantum != b.quantum:
        raise SeriesError(f"quantum mismatch: {a.quantum} vs {b.quantum}")
    start = max(a.start, b.start)
    end = min(a.end, b.end)
    if end <= start:
        raise SeriesError(
            f"series windows do not overlap: [{a.start},{a.end}) vs [{b.start},{b.end})"
        )
    length = end - start
    return a.restricted(start, length), b.restricted(start, length)
