"""Incremental cross-correlation over a sliding window (paper Section 3.4).

The paper's second optimization: "direct cross-correlation is incremental
... it can be computed over only the newly appended trace of size dW."

The sliding window of ``W = m * dW`` is kept as a deque of ``m`` blocks of
``dW`` worth of quanta each. For each ordered pair of blocks whose quanta
can be at most ``max_lag`` apart, the raw lag-product vector
``S[d] = sum x[i] * y[i + d]`` is computed once and cached. Appending a new
block therefore only computes the pair products that involve the new block
(a constant amount of work per refresh, which is why the 'incremental'
curve in Figure 9 is flat in ``W``), and evicting the oldest block
subtracts its cached vectors.

The result is *exactly* equal (to floating-point accumulation error) to
running :func:`repro.core.correlation.correlate_sparse` over the full
concatenated window, which is the invariant the test suite checks.
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Deque, Dict, Optional, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

from repro.core.correlation import (
    CorrelationSeries,
    _normalize,
    _sparse_prefix_mass,
    rle_lag_products,
    sparse_lag_products,
)
from repro.core.rle import RunLengthSeries
from repro.core.timeseries import DensityTimeSeries
from repro.errors import CorrelationError, SeriesError

Block = Union[DensityTimeSeries, RunLengthSeries]


def _pair_products(x: Block, y: Block, max_lag: int) -> np.ndarray:
    """Raw lag products between two blocks, picking the right kernel."""
    if isinstance(x, RunLengthSeries) and isinstance(y, RunLengthSeries):
        return rle_lag_products(x, y, max_lag)
    xs = x.to_sparse() if isinstance(x, RunLengthSeries) else x
    ys = y.to_sparse() if isinstance(y, RunLengthSeries) else y
    return sparse_lag_products(xs, ys, max_lag)


class IncrementalCorrelator:
    """Maintains ``corr(x, y)`` over a sliding window of blocks.

    Parameters
    ----------
    max_lag:
        Lag bound in quanta (``T_u / tau``).
    num_blocks:
        ``m = W / dW`` -- how many refresh intervals make up the window.
    quantum:
        Quantum duration in seconds.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        ``correlator_pair_products_total`` (block-pair lag-product vectors
        actually computed), ``correlator_correlations_served_total``
        (queries answered from the cached aggregates),
        ``correlator_evictions_total`` and the ``correlator_window_blocks``
        gauge. Many correlators may share one registry; the counters
        aggregate across them.

    Usage::

        corr = IncrementalCorrelator(max_lag=60_000, num_blocks=3, quantum=1e-3)
        for x_block, y_block in stream:   # each spanning dW quanta
            corr.append(x_block, y_block)
            series = corr.correlation()
    """

    def __init__(
        self,
        max_lag: int,
        num_blocks: int,
        quantum: float,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if max_lag < 0:
            raise CorrelationError(f"max_lag must be non-negative, got {max_lag}")
        if num_blocks < 1:
            raise CorrelationError(f"num_blocks must be >= 1, got {num_blocks}")
        if quantum <= 0:
            raise CorrelationError(f"quantum must be positive, got {quantum}")
        self.max_lag = int(max_lag)
        self.num_blocks = int(num_blocks)
        self.quantum = float(quantum)
        self._x_blocks: Deque[Tuple[int, Block]] = collections.deque()
        self._y_blocks: Deque[Tuple[int, Block]] = collections.deque()
        self._next_block_id = 0
        self._block_quanta: Optional[int] = None
        # Aggregate lag products over all live block pairs.
        self._lag_products = np.zeros(self.max_lag + 1, dtype=np.float64)
        # Cache of per-pair vectors, keyed by (x block id, y block id),
        # needed to subtract a block's contributions on eviction.
        self._pair_cache: Dict[Tuple[int, int], np.ndarray] = {}
        # Running window statistics, maintained on append/evict so that
        # normalization never needs the full window (what keeps the
        # per-refresh cost flat in W -- Figure 9's 'incremental' curve).
        self._x_total = 0.0
        self._x_energy = 0.0
        self._y_total = 0.0
        self._y_energy = 0.0
        if metrics is not None:
            self._m_pairs = metrics.counter(
                "correlator_pair_products_total",
                "Block-pair lag-product vectors computed (not served from cache)",
            )
            self._m_served = metrics.counter(
                "correlator_correlations_served_total",
                "Correlation queries answered from cached lag-product aggregates",
            )
            self._m_evictions = metrics.counter(
                "correlator_evictions_total",
                "Blocks evicted from sliding correlator windows",
            )
            self._m_depth = metrics.gauge(
                "correlator_window_blocks",
                "Window depth (blocks) of the most recently updated correlator",
            )
        else:
            self._m_pairs = None
            self._m_served = None
            self._m_evictions = None
            self._m_depth = None

    # -- bookkeeping ---------------------------------------------------------

    @property
    def window_start(self) -> Optional[int]:
        """Absolute quantum index of the start of the current window."""
        if not self._x_blocks:
            return None
        return self._x_blocks[0][1].start

    @property
    def window_length(self) -> int:
        """Number of quanta currently in the window."""
        return sum(block.length for _, block in self._x_blocks)

    @property
    def block_reach(self) -> int:
        """How many blocks back a lag of ``max_lag`` can reach."""
        if self._block_quanta is None:
            return 0
        return (self.max_lag + self._block_quanta - 1) // self._block_quanta

    def _validate_block(self, block: Block) -> None:
        if block.quantum != self.quantum:
            raise SeriesError(
                f"block quantum {block.quantum} != correlator quantum {self.quantum}"
            )
        if self._block_quanta is None:
            if block.length < 1:
                raise SeriesError("blocks must span at least one quantum")
            self._block_quanta = block.length
        elif block.length != self._block_quanta:
            raise SeriesError(
                f"block length {block.length} != established block length "
                f"{self._block_quanta}"
            )
        if self._x_blocks:
            expected = self._x_blocks[-1][1].end
            if block.start != expected:
                raise SeriesError(
                    f"blocks must be adjacent: expected start {expected}, got {block.start}"
                )

    # -- the sliding-window protocol ------------------------------------------

    def append(self, x_block: Block, y_block: Block) -> None:
        """Slide the window forward by one block (one refresh interval).

        ``x_block`` and ``y_block`` must cover the same quantum range, be
        adjacent to the previously appended blocks, and all blocks must have
        equal length.
        """
        if (
            x_block.start != y_block.start
            or x_block.length != y_block.length
            or x_block.quantum != y_block.quantum
        ):
            raise SeriesError("x and y blocks must cover the same window")
        self._validate_block(x_block)

        block_id = self._next_block_id
        self._next_block_id += 1

        # New pairs: (x_p, y_new) for every live x block p within lag reach
        # (older x blocks cannot reach the new y quanta within max_lag).
        reach = self.block_reach
        computed = 0
        for p_id, p_block in self._x_blocks:
            if block_id - p_id > reach:
                continue
            vec = _pair_products(p_block, y_block, self.max_lag)
            self._pair_cache[(p_id, block_id)] = vec
            self._lag_products += vec
            computed += 1
        # The diagonal pair (x_new, y_new).
        vec = _pair_products(x_block, y_block, self.max_lag)
        self._pair_cache[(block_id, block_id)] = vec
        self._lag_products += vec
        computed += 1

        self._x_blocks.append((block_id, x_block))
        self._y_blocks.append((block_id, y_block))
        self._x_total += x_block.total()
        self._x_energy += x_block.energy()
        self._y_total += y_block.total()
        self._y_energy += y_block.energy()

        while len(self._x_blocks) > self.num_blocks:
            self._evict_oldest()
        if self._m_pairs is not None:
            self._m_pairs.inc(computed)
            self._m_depth.set(len(self._x_blocks))

    def _evict_oldest(self) -> None:
        old_id, old_x = self._x_blocks.popleft()
        _, old_y = self._y_blocks.popleft()
        self._x_total -= old_x.total()
        self._x_energy -= old_x.energy()
        self._y_total -= old_y.total()
        self._y_energy -= old_y.energy()
        # Remove every cached pair involving the evicted block. Because
        # blocks are evicted in FIFO order, the evicted id is the smallest
        # live id, so it can only appear as the x side (x_old paired with
        # same-or-newer y) or as the diagonal.
        stale = [key for key in self._pair_cache if old_id in key]
        for key in stale:
            self._lag_products -= self._pair_cache.pop(key)
        if self._m_evictions is not None:
            self._m_evictions.inc()

    # -- queries ----------------------------------------------------------------

    def _concat(self, blocks: Deque[Tuple[int, Block]]) -> DensityTimeSeries:
        sparse = [
            b.to_sparse() if isinstance(b, RunLengthSeries) else b
            for _, b in blocks
        ]
        indices = np.concatenate([s.indices for s in sparse]) if sparse else np.empty(0, np.int64)
        values = np.concatenate([s.values for s in sparse]) if sparse else np.empty(0, np.float64)
        start = sparse[0].start if sparse else 0
        length = sum(s.length for s in sparse)
        return DensityTimeSeries(indices, values, start, length, self.quantum)

    def window_series(self) -> Tuple[DensityTimeSeries, DensityTimeSeries]:
        """The full x and y series over the current window (for testing)."""
        return self._concat(self._x_blocks), self._concat(self._y_blocks)

    def _edge_blocks(
        self, blocks: Deque[Tuple[int, Block]], quanta_needed: int, newest: bool
    ) -> DensityTimeSeries:
        """Concatenate just enough blocks from one end of the window to
        cover ``quanta_needed`` quanta (head for ``newest=False``)."""
        picked = []
        covered = 0
        source = reversed(blocks) if newest else iter(blocks)
        for _, block in source:
            picked.append(block)
            covered += block.length
            if covered >= quanta_needed:
                break
        if newest:
            picked.reverse()
        sparse = [
            b.to_sparse() if isinstance(b, RunLengthSeries) else b for b in picked
        ]
        indices = np.concatenate([s.indices for s in sparse])
        values = np.concatenate([s.values for s in sparse])
        return DensityTimeSeries(
            indices, values, sparse[0].start, covered, self.quantum
        )

    def correlation(self) -> CorrelationSeries:
        """Normalized correlation over the current window.

        Equal to ``correlate_sparse(x_window, y_window, max_lag)`` up to
        floating-point accumulation error. Cost is O(max_lag + head/tail
        block sizes), independent of the window length.
        """
        if not self._x_blocks:
            raise CorrelationError("no blocks appended yet")
        if self._m_served is not None:
            self._m_served.inc()
        n = self.window_length
        d_max = min(self.max_lag, n - 1)
        lags = np.arange(d_max + 1, dtype=np.int64)

        # x_prefix(d) = mass of the first n-d quanta of x
        #             = total_x - mass of the last d quanta (tail blocks).
        x_tail = self._edge_blocks(self._x_blocks, d_max, newest=True)
        tail_len = x_tail.length
        x_last = x_tail.total() - _sparse_prefix_mass(x_tail, tail_len - lags)
        x_prefix = self._x_total - x_last
        # y_suffix(d) = total_y - mass of the first d quanta (head blocks).
        y_head = self._edge_blocks(self._y_blocks, d_max, newest=False)
        y_suffix = self._y_total - _sparse_prefix_mass(y_head, lags)

        mx = self._x_total / n
        my = self._y_total / n
        sx = float(np.sqrt(max(0.0, self._x_energy / n - mx * mx)))
        sy = float(np.sqrt(max(0.0, self._y_energy / n - my * my)))
        return _normalize(
            self._lag_products[: d_max + 1],
            x_prefix,
            y_suffix,
            n,
            mx,
            my,
            sx,
            sy,
            self.quantum,
        )
