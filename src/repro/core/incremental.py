"""Incremental cross-correlation over a sliding window (paper Section 3.4).

The paper's second optimization: "direct cross-correlation is incremental
... it can be computed over only the newly appended trace of size dW."

The sliding window of ``W = m * dW`` is kept as a deque of ``m`` blocks of
``dW`` worth of quanta each. For each ordered pair of blocks whose quanta
can be at most ``max_lag`` apart, the raw lag-product vector
``S[d] = sum x[i] * y[i + d]`` is computed once and cached. Appending a new
block therefore only computes the pair products that involve the new block
(a constant amount of work per refresh, which is why the 'incremental'
curve in Figure 9 is flat in ``W``), and evicting the oldest block
subtracts its cached vectors.

The result is *exactly* equal (to floating-point accumulation error) to
running :func:`repro.core.correlation.correlate_sparse` over the full
concatenated window, which is the invariant the test suite checks.

Two steady-state optimizations (on by default, ``optimized=False`` for
the legacy behavior) keep quiet edges nearly free: pair products against
an empty block are skipped outright (their contribution is identically
zero), and :meth:`IncrementalCorrelator.correlation` caches its result
behind a dirty flag so an unchanged correlator re-serves the same
``CorrelationSeries`` object. ``append`` also accepts externally computed
``pair_vectors`` so the engine can feed many correlators that share one
reference edge from a single :func:`~repro.core.correlation.batch_lag_products`
pass (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.registry import MetricsRegistry

from repro.core.correlation import (
    CorrelationSeries,
    _normalize,
    _sparse_prefix_mass,
    rle_lag_products,
    sparse_lag_products,
)
from repro.core.rle import RunLengthSeries
from repro.core.timeseries import DensityTimeSeries
from repro.errors import CorrelationError, SeriesError

Block = Union[DensityTimeSeries, RunLengthSeries]


def _pair_products(x: Block, y: Block, max_lag: int) -> np.ndarray:
    """Raw lag products between two blocks, picking the right kernel."""
    if isinstance(x, RunLengthSeries) and isinstance(y, RunLengthSeries):
        return rle_lag_products(x, y, max_lag)
    xs = x.to_sparse() if isinstance(x, RunLengthSeries) else x
    ys = y.to_sparse() if isinstance(y, RunLengthSeries) else y
    return sparse_lag_products(xs, ys, max_lag)


def block_is_quiet(block: Block) -> bool:
    """True when the block carries no samples (its lag products with any
    other block are identically zero)."""
    if isinstance(block, RunLengthSeries):
        return block.num_runs == 0
    return block.nnz == 0


class IncrementalCorrelator:
    """Maintains ``corr(x, y)`` over a sliding window of blocks.

    Parameters
    ----------
    max_lag:
        Lag bound in quanta (``T_u / tau``).
    num_blocks:
        ``m = W / dW`` -- how many refresh intervals make up the window.
    quantum:
        Quantum duration in seconds.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        ``correlator_pair_products_total`` (block-pair lag-product vectors
        actually computed), ``correlator_skips_total`` (pair products
        skipped because one side was quiet),
        ``correlator_correlations_served_total`` (queries answered from
        the cached aggregates), ``correlation_cache_hits_total``
        (queries served from the dirty-flag result cache),
        ``correlator_evictions_total`` and the ``correlator_window_blocks``
        gauge. Many correlators may share one registry; the counters
        aggregate across them.
    optimized:
        When True (the default), pair products against a quiet (empty)
        block are skipped -- their contribution is identically zero -- and
        :meth:`correlation` memoizes its result behind a dirty flag so an
        unchanged correlator returns the *same* ``CorrelationSeries``
        object until an append actually changes the answer. Set False for
        the legacy always-compute behavior (used as the benchmark
        baseline). Both modes produce numerically identical results;
        callers must not mutate a returned series in place.

    Usage::

        corr = IncrementalCorrelator(max_lag=60_000, num_blocks=3, quantum=1e-3)
        for x_block, y_block in stream:   # each spanning dW quanta
            corr.append(x_block, y_block)
            series = corr.correlation()
    """

    def __init__(
        self,
        max_lag: int,
        num_blocks: int,
        quantum: float,
        metrics: Optional["MetricsRegistry"] = None,
        optimized: bool = True,
        evict_hook: Optional[
            "collections.abc.Callable[[Block, Block, Optional[np.ndarray]], None]"
        ] = None,
    ) -> None:
        if max_lag < 0:
            raise CorrelationError(f"max_lag must be non-negative, got {max_lag}")
        if num_blocks < 1:
            raise CorrelationError(f"num_blocks must be >= 1, got {num_blocks}")
        if quantum <= 0:
            raise CorrelationError(f"quantum must be positive, got {quantum}")
        self.max_lag = int(max_lag)
        self.num_blocks = int(num_blocks)
        self.quantum = float(quantum)
        self._x_blocks: Deque[Tuple[int, Block]] = collections.deque()
        self._y_blocks: Deque[Tuple[int, Block]] = collections.deque()
        self._next_block_id = 0
        self._block_quanta: Optional[int] = None
        # Aggregate lag products over all live block pairs.
        self._lag_products = np.zeros(self.max_lag + 1, dtype=np.float64)
        # Cache of per-pair vectors, keyed by (x block id, y block id),
        # needed to subtract a block's contributions on eviction.
        self._pair_cache: Dict[Tuple[int, int], np.ndarray] = {}
        # Running window statistics, maintained on append/evict so that
        # normalization never needs the full window (what keeps the
        # per-refresh cost flat in W -- Figure 9's 'incremental' curve).
        self._x_total = 0.0
        self._x_energy = 0.0
        self._y_total = 0.0
        self._y_energy = 0.0
        self.optimized = bool(optimized)
        # Eviction callback: called as hook(old_x, old_y, contribution)
        # whenever a block pair leaves the window, where contribution is
        # the summed lag-product vector being subtracted (None when the
        # evicted pair contributed identically zero).  The engine uses it
        # to materialize correlation summaries into the trace lake.
        self._evict_hook = evict_hook
        # Dirty-flag result cache: when an append provably leaves the
        # normalized correlation unchanged (see append()), _dirty stays
        # False and correlation() re-serves _corr_cache as-is.
        self._dirty = True
        self._corr_cache: Optional[CorrelationSeries] = None
        #: True when the last correlation() call was served from the cache.
        self.last_served_from_cache = False
        if metrics is not None:
            self._m_pairs = metrics.counter(
                "correlator_pair_products_total",
                "Block-pair lag-product vectors computed (not served from cache)",
            )
            self._m_served = metrics.counter(
                "correlator_correlations_served_total",
                "Correlation queries answered from cached lag-product aggregates",
            )
            self._m_evictions = metrics.counter(
                "correlator_evictions_total",
                "Blocks evicted from sliding correlator windows",
            )
            self._m_depth = metrics.gauge(
                "correlator_window_blocks",
                "Window depth (blocks) of the most recently updated correlator",
            )
            self._m_skips = metrics.counter(
                "correlator_skips_total",
                "Block-pair lag products skipped because one side was quiet",
            )
            self._m_cache_hits = metrics.counter(
                "correlation_cache_hits_total",
                "Correlation queries served from the dirty-flag result cache",
            )
        else:
            self._m_pairs = None
            self._m_served = None
            self._m_evictions = None
            self._m_depth = None
            self._m_skips = None
            self._m_cache_hits = None

    # -- bookkeeping ---------------------------------------------------------

    @property
    def window_start(self) -> Optional[int]:
        """Absolute quantum index of the start of the current window."""
        if not self._x_blocks:
            return None
        return self._x_blocks[0][1].start

    @property
    def window_length(self) -> int:
        """Number of quanta currently in the window."""
        return sum(block.length for _, block in self._x_blocks)

    @property
    def block_reach(self) -> int:
        """How many blocks back a lag of ``max_lag`` can reach."""
        if self._block_quanta is None:
            return 0
        return (self.max_lag + self._block_quanta - 1) // self._block_quanta

    def _validate_block(self, block: Block) -> None:
        if block.quantum != self.quantum:
            raise SeriesError(
                f"block quantum {block.quantum} != correlator quantum {self.quantum}"
            )
        if self._block_quanta is None:
            if block.length < 1:
                raise SeriesError("blocks must span at least one quantum")
            self._block_quanta = block.length
        elif block.length != self._block_quanta:
            raise SeriesError(
                f"block length {block.length} != established block length "
                f"{self._block_quanta}"
            )
        if self._x_blocks:
            expected = self._x_blocks[-1][1].end
            if block.start != expected:
                raise SeriesError(
                    f"blocks must be adjacent: expected start {expected}, got {block.start}"
                )

    # -- the sliding-window protocol ------------------------------------------

    def pending_pair_blocks(self) -> List[Block]:
        """The live x blocks that will pair with the next appended block
        (window order, excluding the diagonal pair).

        The engine's reference-grouped batch append uses this to assemble
        the shared x side of one :func:`~repro.core.correlation.batch_lag_products`
        call per pending block.
        """
        reach = self.block_reach
        if reach <= 0 or not self._x_blocks:
            return []
        return [block for _, block in self._x_blocks][-reach:]

    def _result_preserved(self, x_block: Block, y_block: Block) -> bool:
        """Whether appending (x_block, y_block) provably leaves the
        normalized correlation value-identical (checked *before* the
        window slides).

        The window sums are unchanged exactly when the appended and
        evicted blocks are all quiet, but the boundary mass corrections
        (``x_prefix``/``y_suffix`` in ``_normalize``) also slide with the
        window: they stay identical only if the old window's last
        ``max_lag`` quanta of x and the new window's first ``max_lag``
        quanta of y are quiet too (checked conservatively at block
        granularity).
        """
        if not self.optimized or self._dirty or self._corr_cache is None:
            return False
        if len(self._x_blocks) != self.num_blocks:
            return False
        if not (block_is_quiet(x_block) and block_is_quiet(y_block)):
            return False
        # The eviction that this append triggers must remove quiet blocks.
        if not (
            block_is_quiet(self._x_blocks[0][1])
            and block_is_quiet(self._y_blocks[0][1])
        ):
            return False
        reach = min(self.block_reach, len(self._x_blocks))
        if reach == 0:
            return True
        x_blocks = [block for _, block in self._x_blocks]
        y_blocks = [block for _, block in self._y_blocks]
        tail_quiet = all(block_is_quiet(b) for b in x_blocks[-reach:])
        head_quiet = all(block_is_quiet(b) for b in y_blocks[1 : 1 + reach])
        return tail_quiet and head_quiet

    def append(
        self,
        x_block: Block,
        y_block: Block,
        pair_vectors: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> int:
        """Slide the window forward by one block (one refresh interval).

        ``x_block`` and ``y_block`` must cover the same quantum range, be
        adjacent to the previously appended blocks, and all blocks must have
        equal length.

        ``pair_vectors`` optionally injects precomputed lag-product vectors
        (e.g. from :func:`~repro.core.correlation.batch_lag_products`): one
        entry per :meth:`pending_pair_blocks` block plus a final entry for
        the diagonal ``(x_block, y_block)`` pair, where ``None`` marks an
        identically-zero vector that should be skipped outright.

        Returns the number of pair products skipped (0 when every pair was
        computed or injected).
        """
        if (
            x_block.start != y_block.start
            or x_block.length != y_block.length
            or x_block.quantum != y_block.quantum
        ):
            raise SeriesError("x and y blocks must cover the same window")
        self._validate_block(x_block)
        if (
            pair_vectors is None
            and self.optimized
            and len(self._x_blocks) == self.num_blocks
            and not self._pair_cache
            and block_is_quiet(y_block)
            and block_is_quiet(x_block)
            and block_is_quiet(self._x_blocks[0][1])
            and block_is_quiet(self._y_blocks[0][1])
        ):
            return self._quiet_slide(x_block, y_block)
        preserved = self._result_preserved(x_block, y_block)

        block_id = self._next_block_id
        self._next_block_id += 1

        # New pairs: (x_p, y_new) for every live x block p within lag reach
        # (older x blocks cannot reach the new y quanta within max_lag).
        reach = self.block_reach
        pending = [
            (p_id, p_block)
            for p_id, p_block in self._x_blocks
            if block_id - p_id <= reach
        ]
        if pair_vectors is not None and len(pair_vectors) != len(pending) + 1:
            raise CorrelationError(
                f"pair_vectors must have {len(pending) + 1} entries "
                f"(pending pairs + diagonal), got {len(pair_vectors)}"
            )
        y_quiet = self.optimized and block_is_quiet(y_block)
        computed = 0
        skipped = 0
        for slot, (p_id, p_block) in enumerate(pending):
            if pair_vectors is not None:
                vec = pair_vectors[slot]
            elif y_quiet or (self.optimized and block_is_quiet(p_block)):
                vec = None
            else:
                vec = _pair_products(p_block, y_block, self.max_lag)
            if vec is None:
                skipped += 1
                continue
            self._pair_cache[(p_id, block_id)] = vec
            self._lag_products += vec
            computed += 1
        # The diagonal pair (x_new, y_new).
        if pair_vectors is not None:
            vec = pair_vectors[-1]
        elif y_quiet or (self.optimized and block_is_quiet(x_block)):
            vec = None
        else:
            vec = _pair_products(x_block, y_block, self.max_lag)
        if vec is None:
            skipped += 1
        else:
            self._pair_cache[(block_id, block_id)] = vec
            self._lag_products += vec
            computed += 1

        self._x_blocks.append((block_id, x_block))
        self._y_blocks.append((block_id, y_block))
        self._x_total += x_block.total()
        self._x_energy += x_block.energy()
        self._y_total += y_block.total()
        self._y_energy += y_block.energy()

        while len(self._x_blocks) > self.num_blocks:
            self._evict_oldest()
        if not preserved:
            self._dirty = True
        if self._m_pairs is not None:
            self._m_pairs.inc(computed)
            self._m_depth.set(len(self._x_blocks))
            if skipped:
                self._m_skips.inc(skipped)
        return skipped

    def _quiet_slide(self, x_block: Block, y_block: Block) -> int:
        """O(1) append for the dormant case: full window, empty pair cache,
        quiet incoming and quiet outgoing blocks.

        Every pair slot would be skipped (the y side is quiet), the evicted
        blocks contribute zero to the window sums, and there are no cached
        pair vectors to sweep -- so the append reduces to rotating the block
        deques. State after this call is identical to the general path.
        """
        # Same preservation rule as _result_preserved: the appended/evicted
        # blocks are already known quiet, so only the cache validity and the
        # boundary blocks remain to check.
        if self._dirty or self._corr_cache is None:
            self._dirty = True
        else:
            reach = min(self.block_reach, len(self._x_blocks))
            if reach:
                tail_quiet = all(
                    block_is_quiet(b) for _, b in list(self._x_blocks)[-reach:]
                )
                head_quiet = all(
                    block_is_quiet(b)
                    for _, b in list(self._y_blocks)[1 : 1 + reach]
                )
                if not (tail_quiet and head_quiet):
                    self._dirty = True
        block_id = self._next_block_id
        self._next_block_id += 1
        skipped = min(self.block_reach, len(self._x_blocks)) + 1
        self._x_blocks.append((block_id, x_block))
        self._y_blocks.append((block_id, y_block))
        _, old_x = self._x_blocks.popleft()
        _, old_y = self._y_blocks.popleft()
        if self._evict_hook is not None:
            # Quiet pair: zero products, zero mass -- but its length still
            # counts toward a summary fold's normalization span.
            self._evict_hook(old_x, old_y, None)
        if self._m_pairs is not None:
            self._m_skips.inc(skipped)
            self._m_depth.set(len(self._x_blocks))
            self._m_evictions.inc()
        return skipped

    def _evict_oldest(self) -> None:
        old_id, old_x = self._x_blocks.popleft()
        _, old_y = self._y_blocks.popleft()
        self._x_total -= old_x.total()
        self._x_energy -= old_x.energy()
        self._y_total -= old_y.total()
        self._y_energy -= old_y.energy()
        # Remove every cached pair involving the evicted block. Because
        # blocks are evicted in FIFO order, the evicted id is the smallest
        # live id, so it can only appear as the x side (x_old paired with
        # same-or-newer y) or as the diagonal.
        stale = [key for key in self._pair_cache if old_id in key]
        contribution: Optional[np.ndarray] = None
        for key in stale:
            vec = self._pair_cache.pop(key)
            self._lag_products -= vec
            if self._evict_hook is not None:
                contribution = (
                    vec.copy() if contribution is None else contribution + vec
                )
        if self._evict_hook is not None:
            self._evict_hook(old_x, old_y, contribution)
        if self._m_evictions is not None:
            self._m_evictions.inc()

    # -- queries ----------------------------------------------------------------

    def _concat(self, blocks: Deque[Tuple[int, Block]]) -> DensityTimeSeries:
        sparse = [
            b.to_sparse() if isinstance(b, RunLengthSeries) else b
            for _, b in blocks
        ]
        indices = np.concatenate([s.indices for s in sparse]) if sparse else np.empty(0, np.int64)
        values = np.concatenate([s.values for s in sparse]) if sparse else np.empty(0, np.float64)
        start = sparse[0].start if sparse else 0
        length = sum(s.length for s in sparse)
        return DensityTimeSeries(indices, values, start, length, self.quantum)

    def window_series(self) -> Tuple[DensityTimeSeries, DensityTimeSeries]:
        """The full x and y series over the current window (for testing)."""
        return self._concat(self._x_blocks), self._concat(self._y_blocks)

    def _edge_blocks(
        self, blocks: Deque[Tuple[int, Block]], quanta_needed: int, newest: bool
    ) -> DensityTimeSeries:
        """Concatenate just enough blocks from one end of the window to
        cover ``quanta_needed`` quanta (head for ``newest=False``)."""
        picked = []
        covered = 0
        source = reversed(blocks) if newest else iter(blocks)
        for _, block in source:
            picked.append(block)
            covered += block.length
            if covered >= quanta_needed:
                break
        if newest:
            picked.reverse()
        sparse = [
            b.to_sparse() if isinstance(b, RunLengthSeries) else b for b in picked
        ]
        indices = np.concatenate([s.indices for s in sparse])
        values = np.concatenate([s.values for s in sparse])
        return DensityTimeSeries(
            indices, values, sparse[0].start, covered, self.quantum
        )

    def correlation(self) -> CorrelationSeries:
        """Normalized correlation over the current window.

        Equal to ``correlate_sparse(x_window, y_window, max_lag)`` up to
        floating-point accumulation error. Cost is O(max_lag + head/tail
        block sizes), independent of the window length.
        """
        if not self._x_blocks:
            raise CorrelationError("no blocks appended yet")
        if self._m_served is not None:
            self._m_served.inc()
        if self.optimized and not self._dirty and self._corr_cache is not None:
            self.last_served_from_cache = True
            if self._m_cache_hits is not None:
                self._m_cache_hits.inc()
            return self._corr_cache
        self.last_served_from_cache = False
        n = self.window_length
        d_max = min(self.max_lag, n - 1)
        lags = np.arange(d_max + 1, dtype=np.int64)

        # x_prefix(d) = mass of the first n-d quanta of x
        #             = total_x - mass of the last d quanta (tail blocks).
        x_tail = self._edge_blocks(self._x_blocks, d_max, newest=True)
        tail_len = x_tail.length
        x_last = x_tail.total() - _sparse_prefix_mass(x_tail, tail_len - lags)
        x_prefix = self._x_total - x_last
        # y_suffix(d) = total_y - mass of the first d quanta (head blocks).
        y_head = self._edge_blocks(self._y_blocks, d_max, newest=False)
        y_suffix = self._y_total - _sparse_prefix_mass(y_head, lags)

        mx = self._x_total / n
        my = self._y_total / n
        sx = float(np.sqrt(max(0.0, self._x_energy / n - mx * mx)))
        sy = float(np.sqrt(max(0.0, self._y_energy / n - my * my)))
        result = _normalize(
            self._lag_products[: d_max + 1],
            x_prefix,
            y_suffix,
            n,
            mx,
            my,
            sx,
            sy,
            self.quantum,
        )
        if self.optimized:
            self._corr_cache = result
            self._dirty = False
        return result
