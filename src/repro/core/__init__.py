"""The paper's contribution: pathmap and its supporting signal analysis."""

from repro.core.anomaly import ALARM, OK, WARNING, Anomaly, AnomalyDetector
from repro.core.bottleneck import BottleneckReport, find_bottlenecks, rank_nodes
from repro.core.change_detection import ChangeDetector, ChangeEvent, DelaySample
from repro.core.clock_skew import SkewEstimate, estimate_clock_skew
from repro.core.correlation import (
    CorrelationSeries,
    correlate_dense,
    correlate_fft,
    correlate_rle,
    correlate_sparse,
    cross_correlate,
)
from repro.core.engine import E2EProfEngine
from repro.core.incremental import IncrementalCorrelator
from repro.core.link_latency import (
    decompose_node_delays,
    estimate_link_latency,
    measure_link_latencies,
)
from repro.core.offline import analyze_sliding, replay_into
from repro.core.pathmap import Pathmap, PathmapResult, PathmapStats, TraceWindow, compute_service_graphs
from repro.core.rle import Run, RunLengthSeries, rle_decode, rle_encode
from repro.core.service_graph import ServiceEdge, ServiceGraph, ServicePath
from repro.core.spikes import Spike, detect_spikes, earliest_spike, strongest_spike
from repro.core.timeseries import (
    DensityTimeSeries,
    aligned_windows,
    build_density_series,
    quantize_timestamps,
)
