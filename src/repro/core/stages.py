"""Shared pipeline-stage machinery for analysis hosts.

The online engine's refresh is four explicit stages -- **ingest ->
correlate -> DFS -> publish**, the exact stage names the refresh ledger
records (:data:`repro.obs.ledger.PIPELINE_STAGES`). The middle two
stages operate on one bundle of state: the aligned per-edge block
history, the incremental correlator cache keyed ``(reference, edge)``,
and the kernels that append fresh blocks into those correlators.

That bundle lives here, as :class:`PipelineCore` -- a mixin hosted by
two different owners:

* :class:`repro.core.engine.E2EProfEngine` itself (serial and thread
  modes run everything in-process), and
* :class:`repro.core.shards.ShardWorkerState`, the per-process state of
  one consistent-hash shard under ``parallel="processes"`` -- every
  worker mirrors the full block history (blocks arrive zero-copy via
  shared memory) but maintains correlators only for its owned service
  classes.

Both hosts run byte-for-byte the same append/replay/dispatch code, which
is what makes the sharded refresh bit-identical to the serial one: a
correlator's contents depend only on the block history and the append
order, never on which process performed the appends.

Host contract (attributes every :class:`PipelineCore` host provides):

``config`` (:class:`~repro.config.PathmapConfig`), ``metrics``
(:class:`~repro.obs.registry.MetricsRegistry`), ``tracer``
(:class:`~repro.obs.spans.SpanTracer`), ``ledger``
(:class:`~repro.obs.ledger.LedgerRecorder`), ``batched`` /
``measured_dispatch`` (bools), ``fft_dispatch`` (``"auto"`` / ``"off"``
/ ``"force"``), ``_spectra`` (a
:class:`~repro.core.correlation.SpectrumCache` of block FFT spectra),
``_pool`` (optional thread executor), ``_clients`` (set of client node
ids), ``_blocks`` / ``_correlators`` (the window state),
``_num_blocks`` / ``_block_quanta`` / ``_refreshes`` (window geometry),
``_tally_lock`` plus the per-refresh ``_refresh_*`` tallies, and the
``_m_batch`` / ``_m_cache_hits`` / ``_m_cache_misses`` instruments.
"""

from __future__ import annotations

import collections
import time
from typing import Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.correlation import (
    CorrelationSeries,
    SeriesLike,
    batch_lag_products,
    choose_batch_kernel,
    fft_batch_lag_products,
    fft_dispatch_units,
    fft_length,
    rle_dispatch_units,
    sparse_dispatch_units,
)
from repro.core.incremental import IncrementalCorrelator, _pair_products, block_is_quiet
from repro.core.pathmap import TraceWindow
from repro.core.rle import RunLengthSeries
from repro.core.timeseries import DensityTimeSeries
from repro.errors import AnalysisError
from repro.obs.ledger import (
    KERNEL_FFT_BATCH,
    KERNEL_LEGACY,
    KERNEL_RLE,
    KERNEL_SPARSE_BATCH,
)
from repro.tracing.records import NodeId

EdgeKey = Tuple[NodeId, NodeId]
RefKey = Tuple[NodeId, NodeId]


class PipelineCore:
    """Block-history + correlator machinery shared by analysis hosts.

    See the module docstring for the host attribute contract. Every
    method is deterministic given the host's window state; none of them
    publish events or touch host-specific bookkeeping (gap tracking,
    transport health, flight recording stay in the engine).
    """

    # -- block history ---------------------------------------------------------

    def _store_blocks(
        self, fresh: Dict[EdgeKey, RunLengthSeries], block_start: int
    ) -> None:
        empty = RunLengthSeries.empty(block_start, self._block_quanta, self.config.quantum)
        for edge in set(self._blocks) | set(fresh):
            deque_ = self._blocks.get(edge)
            if deque_ is None:
                # Newly seen edge: backfill silence so every deque is
                # aligned on the same block boundaries.
                deque_ = self._backfilled_deque(
                    block_start - self._block_quanta,
                    min(self._refreshes - 1, self._num_blocks),
                )
                self._blocks[edge] = deque_
            deque_.append(fresh.get(edge, empty))
        # Blocks older than the window floor have rotated out of every
        # deque; their cached FFT spectra can never be used again.
        self._spectra.evict_before(
            block_start - (self._num_blocks - 1) * self._block_quanta
        )

    def _backfilled_deque(
        self, last_start: int, rounds: int
    ) -> Deque[RunLengthSeries]:
        """An aligned deque of ``rounds`` empty blocks ending at
        ``last_start`` (inclusive)."""
        tau = self.config.quantum
        deque_: Deque[RunLengthSeries] = collections.deque(maxlen=self._num_blocks)
        for k in range(rounds - 1, -1, -1):
            start = last_start - k * self._block_quanta
            deque_.append(RunLengthSeries.empty(start, self._block_quanta, tau))
        return deque_

    def _splice_block(
        self, edge: EdgeKey, block: RunLengthSeries, block_start: int
    ) -> bool:
        """Splice one re-sequenced late block back into window history.

        Blocks carry their own window position, so a block that arrives
        a round (or several) behind schedule replaces the silence that
        was stored in its place; correlators touching the edge are
        invalidated and rebuilt lazily from the corrected history.
        Returns True when the block landed inside the current window.
        """
        deque_ = self._blocks.get(edge)
        if deque_ is None:
            # First-ever block of an edge arrived late: materialize
            # an aligned, silence-filled history to patch into.
            deque_ = self._backfilled_deque(
                block_start, min(self._refreshes, self._num_blocks)
            )
            self._blocks[edge] = deque_
        oldest = deque_[0].start if deque_ else None
        if oldest is None:
            return False
        index = (block.start - oldest) // self._block_quanta
        if index < 0 or index >= len(deque_):
            return False  # already rotated out of the window
        if deque_[index].start != block.start:
            return False
        deque_[index] = block
        self._invalidate_correlators(edge)
        return True

    def _blank_history(self, cutoff_quantum: int) -> int:
        """Replace every block ending at or before ``cutoff_quantum``
        with silence and invalidate the correlators touching it (the
        core of change-point re-windowing; the engine wraps this with
        event/metric bookkeeping). Returns non-empty blocks blanked."""
        tau = self.config.quantum
        blanked = 0
        for edge, deque_ in self._blocks.items():
            touched = False
            for index, block in enumerate(deque_):
                if block.start + self._block_quanta > cutoff_quantum:
                    break
                if block.num_runs:
                    deque_[index] = RunLengthSeries.empty(
                        block.start, self._block_quanta, tau
                    )
                    blanked += 1
                    touched = True
            if touched:
                self._invalidate_correlators(edge)
        return blanked

    def _invalidate_correlators(self, edge: EdgeKey) -> None:
        stale = [
            key
            for key in self._correlators
            if key[0] == edge or key[1] == edge
        ]
        for key in stale:
            del self._correlators[key]

    # -- correlate stage -------------------------------------------------------

    def _append_to_correlators(self) -> None:
        if not self.batched:
            self._append_per_pair()
            return
        started = time.perf_counter()
        # Reference-grouped batch path: correlators sharing one reference
        # edge hold identical x-side windows (they replay the same block
        # history), so all their new pair products can come from one
        # batch_lag_products call per pending x block.
        groups: Dict[RefKey, List[Tuple[EdgeKey, IncrementalCorrelator]]] = {}
        for (ref_edge, edge), correlator in self._correlators.items():
            groups.setdefault(ref_edge, []).append((edge, correlator))
        if self._pool is not None and len(groups) > 1:
            skipped = sum(self._pool.map(self._append_group, groups.items()))
        else:
            skipped = sum(self._append_group(item) for item in groups.items())
        self._refresh_skips = skipped
        self._m_batch.observe(time.perf_counter() - started)

    def _append_per_pair(self) -> None:
        """Legacy refresh: one kernel invocation per (reference, edge) pair.

        The whole loop is ledgered as one ``legacy_pair`` kernel sample
        (rows = correlator appends) -- per-append timing would cost more
        than the appends themselves on quiet windows.
        """
        kernel_started = time.perf_counter()
        try:
            if self.tracer.enabled:
                # Traced path: one span per correlator update, labelled by the
                # (reference, edge) pair it maintains.
                for (ref_edge, edge), correlator in self._correlators.items():
                    with self.tracer.span(
                        "correlator.append",
                        ref=f"{ref_edge[0]}->{ref_edge[1]}",
                        edge=f"{edge[0]}->{edge[1]}",
                    ):
                        correlator.append(self._blocks[ref_edge][-1], self._blocks[edge][-1])
                return
            # Untraced hot path: kept span-free so the disabled-tracing
            # overhead stays at one attribute check per refresh, not per edge.
            for (ref_edge, edge), correlator in self._correlators.items():
                ref_block = self._blocks[ref_edge][-1]
                edge_block = self._blocks[edge][-1]
                correlator.append(ref_block, edge_block)
        finally:
            self.ledger.record_kernel(
                KERNEL_LEGACY,
                rows=len(self._correlators),
                seconds=time.perf_counter() - kernel_started,
            )

    def _group_vectors(
        self,
        x_block: RunLengthSeries,
        y_blocks: List[RunLengthSeries],
        ys_sparse: List[SeriesLike],
        max_lag: int,
    ) -> Optional[np.ndarray]:
        """Pair-product rows of one pending x block against every batched
        group member, dispatched by a density cost model.

        The sparse batch kernel touches every (x sample, y sample) pair
        within ``max_lag``, so its cost explodes on smeared (near-dense)
        blocks, where the run-length kernel -- whose cost scales with run
        counts, not sample counts -- stays flat. Spike trains are the
        opposite regime. Once rows go genuinely dense (flash crowd, batch
        surge) even the RLE kernel's run-pair count blows up, and the
        batched FFT kernel -- whose ``size * log2(size)`` cost is fixed
        by the window, independent of density -- takes over. All three
        estimates are pure functions of the blocks, so grouped appends,
        history replays and parallel shards all make the identical choice
        and stay bit-for-bit reproducible.

        With ``measured_dispatch`` on (and the kernel EWMAs warmed), the
        comparison weighs each side's dispatch units by the ledger's
        *measured* ns/unit instead of the modeled constants. The sparse
        and RLE kernels produce bitwise-identical lag products, so their
        choice never changes the output; FFT rows agree to the documented
        float tolerance (``fft_dispatch="off"`` keeps everything
        bit-exact).

        Kernel timing is recorded per dispatch group (a handful of
        ``perf_counter`` calls per pending x block), never per row.
        """
        if block_is_quiet(x_block):
            return None
        xs = x_block.to_sparse()
        rows: List[Optional[np.ndarray]] = [None] * len(y_blocks)
        batched_rows: List[int] = []
        rle_rows: List[int] = []
        fft_rows: List[int] = []
        sparse_units_total = 0.0
        rle_units_total = 0.0
        ns_sparse = ns_rle = ns_fft = None
        if self.measured_dispatch:
            ns_sparse = self.ledger.ns_per_unit(KERNEL_SPARSE_BATCH)
            ns_rle = self.ledger.ns_per_unit(KERNEL_RLE)
            ns_fft = self.ledger.ns_per_unit(KERNEL_FFT_BATCH)
        fft_mode = self.fft_dispatch
        fft_size = 0
        fft_units_row: Optional[float] = None
        if fft_mode != "off" and y_blocks:
            # One shared 5-smooth plan length for the whole group: every
            # member block covers the same window as the head block.
            fft_size = fft_length(int(x_block.length) + int(y_blocks[0].length) - 1)
            fft_units_row = fft_dispatch_units(int(y_blocks[0].length), fft_size)
        for i, (y_block, ys) in enumerate(zip(y_blocks, ys_sparse)):
            if fft_mode == "force":
                fft_rows.append(i)
                continue
            span = max(int(ys.indices[-1]) - int(ys.indices[0]) + 1, 1)
            sparse_units = sparse_dispatch_units(
                xs.indices.size, ys.indices.size, span, max_lag
            )
            rle_units = rle_dispatch_units(x_block.num_runs, y_block.num_runs)
            kernel = choose_batch_kernel(
                sparse_units, rle_units, fft_units_row, ns_sparse, ns_rle, ns_fft
            )
            if kernel == "fft":
                fft_rows.append(i)
            elif kernel == "sparse":
                batched_rows.append(i)
                sparse_units_total += sparse_units
            else:
                rle_rows.append(i)
                rle_units_total += rle_units
        record = self.ledger.record_kernel if self.ledger.enabled else None
        if fft_rows:
            fft_started = time.perf_counter()
            mat_fft = fft_batch_lag_products(
                x_block,
                [y_blocks[i] for i in fft_rows],
                max_lag,
                size=fft_size or None,
                cache=self._spectra,
            )
            full_fft: Optional[np.ndarray] = None
            if len(fft_rows) == len(y_blocks):
                full_fft = mat_fft
            else:
                for r, i in enumerate(fft_rows):
                    rows[i] = mat_fft[r]
            if record is not None:
                # Dense samples transformed: 8 bytes per quantum of the x
                # block plus every routed y block (spectra cache hits skip
                # the transform but still read the padded product row).
                record(
                    KERNEL_FFT_BATCH,
                    rows=len(fft_rows),
                    seconds=time.perf_counter() - fft_started,
                    work_units=(fft_units_row or 0.0) * len(fft_rows),
                    bytes_touched=8 * (
                        int(x_block.length)
                        + int(y_blocks[0].length) * len(fft_rows)
                    ),
                )
            if full_fft is not None:
                return full_fft
        if rle_rows:
            rle_started = time.perf_counter()
            for i in rle_rows:
                rows[i] = _pair_products(x_block, y_blocks[i], max_lag)
            if record is not None:
                # RunLengthSeries data: starts + counts (int64) + values
                # (float64) = 24 bytes per run.
                record(
                    KERNEL_RLE,
                    rows=len(rle_rows),
                    seconds=time.perf_counter() - rle_started,
                    work_units=rle_units_total,
                    bytes_touched=24 * (
                        x_block.num_runs * len(rle_rows)
                        + sum(y_blocks[i].num_runs for i in rle_rows)
                    ),
                )
        if not batched_rows:
            return np.stack(rows)
        batch_started = time.perf_counter()
        if len(batched_rows) == len(y_blocks):
            mat = batch_lag_products(xs, ys_sparse, max_lag)
            out: Optional[np.ndarray] = mat
        else:
            mat = batch_lag_products(
                xs, [ys_sparse[i] for i in batched_rows], max_lag
            )
            for r, i in enumerate(batched_rows):
                rows[i] = mat[r]
            out = None
        if record is not None:
            # DensityTimeSeries data: indices (int64) + values (float64)
            # = 16 bytes per nonzero.
            record(
                KERNEL_SPARSE_BATCH,
                rows=len(batched_rows),
                seconds=time.perf_counter() - batch_started,
                work_units=sparse_units_total,
                bytes_touched=16 * (
                    xs.indices.size
                    + sum(ys_sparse[i].indices.size for i in batched_rows)
                ),
            )
        return out if out is not None else np.stack(rows)

    def _append_group(
        self,
        group: Tuple[RefKey, List[Tuple[EdgeKey, IncrementalCorrelator]]],
    ) -> int:
        """Append the newest blocks to every correlator of one reference
        group, batching all non-quiet edges into shared kernels. Returns
        the number of pair products skipped as quiet."""
        ref_edge, members = group
        x_new = self._blocks[ref_edge][-1]
        traced = self.tracer.enabled
        skipped = 0
        # Split the group: quiet newest edge blocks produce zero vectors
        # only (the plain optimized append skips every kernel for them);
        # the rest share one batch per pending x block. A member whose
        # window disagrees with the group's (cannot happen through the
        # normal refresh cycle, but cheap to guard) also takes the plain
        # path, which computes its own kernels.
        batch: List[Tuple[EdgeKey, IncrementalCorrelator, RunLengthSeries]] = []
        plain: List[Tuple[EdgeKey, IncrementalCorrelator, RunLengthSeries]] = []
        canonical: Optional[List[SeriesLike]] = None
        for edge, correlator in members:
            y_new = self._blocks[edge][-1]
            if block_is_quiet(y_new):
                plain.append((edge, correlator, y_new))
                continue
            pending = correlator.pending_pair_blocks()
            if canonical is None:
                canonical = pending
            elif len(pending) != len(canonical) or any(
                a is not b for a, b in zip(pending, canonical)
            ):
                plain.append((edge, correlator, y_new))
                continue
            batch.append((edge, correlator, y_new))
        if batch:
            max_lag = self.config.max_lag_quanta
            y_blocks = [y for _, _, y in batch]
            ys = [
                y.to_sparse() if isinstance(y, RunLengthSeries) else y
                for y in y_blocks
            ]
            mats = [
                self._group_vectors(x_p, y_blocks, ys, max_lag)
                for x_p in list(canonical or []) + [x_new]
            ]
            for row, (edge, correlator, y_new) in enumerate(batch):
                vectors = [None if m is None else m[row].copy() for m in mats]
                if traced:
                    with self.tracer.span(
                        "correlator.append",
                        ref=f"{ref_edge[0]}->{ref_edge[1]}",
                        edge=f"{edge[0]}->{edge[1]}",
                    ):
                        skipped += correlator.append(x_new, y_new, pair_vectors=vectors)
                else:
                    skipped += correlator.append(x_new, y_new, pair_vectors=vectors)
        if plain:
            # Quiet / mismatched members take the per-pair append path
            # (which computes its own kernels); ledger them as one
            # legacy_pair sample per group.
            plain_started = time.perf_counter()
            for edge, correlator, y_new in plain:
                if traced:
                    with self.tracer.span(
                        "correlator.append",
                        ref=f"{ref_edge[0]}->{ref_edge[1]}",
                        edge=f"{edge[0]}->{edge[1]}",
                    ):
                        skipped += correlator.append(x_new, y_new)
                else:
                    skipped += correlator.append(x_new, y_new)
            self.ledger.record_kernel(
                KERNEL_LEGACY,
                rows=len(plain),
                seconds=time.perf_counter() - plain_started,
            )
        return skipped

    # -- correlation provider (plugged into pathmap) ---------------------------

    def _provide_correlation(
        self,
        reference: SeriesLike,
        signal: SeriesLike,
        ref_key: RefKey,
        edge_key: EdgeKey,
    ) -> CorrelationSeries:
        correlator = self._correlators.get((ref_key, edge_key))
        if correlator is None:
            with self._tally_lock:
                self._refresh_cache_misses += 1
            self._m_cache_misses.inc()
            correlator = self._create_correlator(ref_key, edge_key)
        else:
            with self._tally_lock:
                self._refresh_cache_hits += 1
            self._m_cache_hits.inc()
        series = correlator.correlation()
        if correlator.last_served_from_cache:
            with self._tally_lock:
                self._refresh_corr_cache_hits += 1
        return series

    def _summary_hook(self, ref_key: RefKey, edge_key: EdgeKey):
        """Optional eviction hook for new correlators. The engine
        overrides this to materialize trace-lake summaries; the shared
        core (and shard workers) have no lake, so the default is None."""
        return None

    def _create_correlator(self, ref_key: RefKey, edge_key: EdgeKey) -> IncrementalCorrelator:
        ref_blocks = self._blocks.get(ref_key)
        edge_blocks = self._blocks.get(edge_key)
        if ref_blocks is None or edge_blocks is None:
            raise AnalysisError(
                f"no block history for correlator {ref_key} x {edge_key}"
            )
        correlator = IncrementalCorrelator(
            max_lag=self.config.max_lag_quanta,
            num_blocks=self._num_blocks,
            quantum=self.config.quantum,
            metrics=self.metrics,
            optimized=self.batched,
            evict_hook=self._summary_hook(ref_key, edge_key),
        )
        for ref_block, edge_block in zip(ref_blocks, edge_blocks):
            if self.batched:
                # Replay through the same batch kernel the grouped append
                # uses, so a correlator rebuilt from history (new service
                # class, transport late-block invalidation) is bit-identical
                # to one maintained incrementally across refreshes.
                self._batched_replay(correlator, ref_block, edge_block)
            else:
                correlator.append(ref_block, edge_block)
        self._correlators[(ref_key, edge_key)] = correlator
        return correlator

    def _batched_replay(
        self,
        correlator: IncrementalCorrelator,
        x_block: RunLengthSeries,
        y_block: RunLengthSeries,
    ) -> int:
        """One append computed via single-row :meth:`_group_vectors` calls
        (the quiet-skip and kernel-dispatch structure mirrors the grouped
        path exactly, so a replayed correlator is bit-identical to a
        maintained one)."""
        if block_is_quiet(y_block):
            return correlator.append(x_block, y_block)
        max_lag = self.config.max_lag_quanta
        y_blocks = [y_block]
        ys = [y_block.to_sparse() if isinstance(y_block, RunLengthSeries) else y_block]
        vectors: List[Optional[np.ndarray]] = []
        for x_p in correlator.pending_pair_blocks() + [x_block]:
            mat = self._group_vectors(x_p, y_blocks, ys, max_lag)
            vectors.append(None if mat is None else mat[0])
        return correlator.append(x_block, y_block, pair_vectors=vectors)

    # -- window state queried by the pathmap DFS -------------------------------

    def _active_edges(self) -> Set[EdgeKey]:
        return {
            edge
            for edge, blocks in self._blocks.items()
            if any(block.num_runs for block in blocks)
        }

    def _edge_series(self, edge: EdgeKey) -> DensityTimeSeries:
        blocks = self._blocks.get(edge)
        if not blocks:
            raise AnalysisError(f"no blocks for edge {edge}")
        # Single-pass concatenation (mirrors IncrementalCorrelator._concat):
        # the pairwise concatenated() chain re-copied the growing prefix
        # for every block, i.e. quadratic in the window depth.
        sparse = [block.to_sparse() for block in blocks]
        return DensityTimeSeries(
            np.concatenate([s.indices for s in sparse]),
            np.concatenate([s.values for s in sparse]),
            sparse[0].start,
            sum(s.length for s in sparse),
            sparse[0].quantum,
        )

    @property
    def correlator_count(self) -> int:
        return len(self._correlators)


class HostWindow(TraceWindow):
    """TraceWindow view over a :class:`PipelineCore` host's block history.

    Works identically over the engine and over a shard worker's mirrored
    state -- both expose ``_active_edges`` / ``_clients`` /
    ``_edge_series`` -- so parent and workers derive the same class
    pairs from the same window.
    """

    def __init__(self, host: PipelineCore) -> None:
        self._host = host
        self._active = host._active_edges()
        self._clients = host._clients

    def front_end_nodes(self) -> List[NodeId]:
        return sorted(
            {
                dst
                for (src, dst) in self._active
                if src in self._clients and dst not in self._clients
            }
        )

    def clients_of(self, node: NodeId) -> List[NodeId]:
        return sorted(
            src for (src, dst) in self._active if dst == node and src in self._clients
        )

    def destinations_of(self, node: NodeId) -> List[NodeId]:
        return sorted(dst for (src, dst) in self._active if src == node)

    def is_client(self, node: NodeId) -> bool:
        return node in self._clients

    def edge_series(self, src: NodeId, dst: NodeId) -> DensityTimeSeries:
        return self._host._edge_series((src, dst))
