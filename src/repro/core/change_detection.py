"""Per-edge performance change detection (paper Section 4.1.2).

"One of the goals of online service path analysis is to detect changes in
path performance. We are interested not only in cumulative end-to-end
delays, but also in fluctuations in per-edge performance."

:class:`ChangeDetector` subscribes to the online engine (or is fed
:class:`~repro.core.pathmap.PathmapResult` objects directly), keeps a
history of every edge's delay per refresh, and flags refreshes where an
edge's delay deviates from its trailing baseline -- the capability behind
Figure 7, where the staircase delay injected at EJB2 is tracked edge by
edge while other edges stay flat.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.pathmap import PathmapResult
from repro.core.service_graph import NodeId
from repro.errors import AnalysisError
from repro.obs.events import EVENT_CHANGE, EventBus

logger = logging.getLogger(__name__)

EdgeKey = Tuple[NodeId, NodeId]
ClassKey = Tuple[NodeId, NodeId]  # (client, root)


@dataclasses.dataclass(frozen=True)
class DelaySample:
    """One edge's delay at one refresh."""

    time: float
    delay: float


@dataclasses.dataclass(frozen=True)
class ChangeEvent:
    """A detected per-edge performance change."""

    time: float
    class_key: ClassKey
    edge: EdgeKey
    previous: float
    current: float

    @property
    def magnitude(self) -> float:
        """Absolute delay change in seconds."""
        return self.current - self.previous

    @property
    def relative(self) -> float:
        """Relative change against the previous baseline."""
        if self.previous == 0.0:
            return float("inf") if self.current else 0.0
        return (self.current - self.previous) / self.previous


class ChangeDetector:
    """Tracks per-edge delays across refreshes and flags shifts.

    Parameters
    ----------
    absolute_threshold:
        Minimum absolute delay change (seconds) to report.
    relative_threshold:
        Minimum relative change against the trailing baseline to report.
        Both thresholds must be exceeded.
    baseline_refreshes:
        How many previous refreshes form the trailing baseline (their mean
        delay is the reference).
    events:
        Optional :class:`~repro.obs.events.EventBus`: every detected
        change is also published as an ``EVENT_CHANGE`` diagnostic event.
        ``subscribe_to`` adopts the engine's bus when none was given.
    """

    def __init__(
        self,
        absolute_threshold: float = 0.005,
        relative_threshold: float = 0.25,
        baseline_refreshes: int = 3,
        events: Optional[EventBus] = None,
    ) -> None:
        if baseline_refreshes < 1:
            raise AnalysisError(
                f"baseline_refreshes must be >= 1, got {baseline_refreshes}"
            )
        self.absolute_threshold = absolute_threshold
        self.relative_threshold = relative_threshold
        self.baseline_refreshes = baseline_refreshes
        self.event_bus = events
        self._history: Dict[Tuple[ClassKey, EdgeKey], List[DelaySample]] = {}
        self._events: List[ChangeEvent] = []
        self._callbacks: List[Callable[[ChangeEvent], None]] = []

    # -- feeding -------------------------------------------------------------------

    def record(self, time: float, result: PathmapResult) -> List[ChangeEvent]:
        """Ingest one refresh; returns the change events it triggered."""
        fresh: List[ChangeEvent] = []
        for class_key, graph in result.graphs.items():
            for edge in graph.edges:
                key = (class_key, (edge.src, edge.dst))
                history = self._history.setdefault(key, [])
                current = edge.min_delay
                event = self._check(time, class_key, (edge.src, edge.dst), history, current)
                if event is not None:
                    fresh.append(event)
                history.append(DelaySample(time, current))
        self._events.extend(fresh)
        for event in fresh:
            logger.debug(
                "change on %s->%s (%s@%s): %.4fs -> %.4fs",
                event.edge[0],
                event.edge[1],
                event.class_key[0],
                event.class_key[1],
                event.previous,
                event.current,
            )
            if self.event_bus is not None:
                self.event_bus.publish(
                    EVENT_CHANGE,
                    time,
                    edge=f"{event.edge[0]}->{event.edge[1]}",
                    service_class=f"{event.class_key[0]}@{event.class_key[1]}",
                    previous=event.previous,
                    current=event.current,
                    magnitude=event.magnitude,
                )
            for callback in self._callbacks:
                callback(event)
        return fresh

    def on_change(self, callback: Callable[[ChangeEvent], None]) -> None:
        """Register a callback invoked for every fresh change event --
        how the adaptive controller triggers re-windowing."""
        self._callbacks.append(callback)

    def subscribe_to(self, engine: "object") -> None:
        """Convenience: hook into an :class:`E2EProfEngine`.

        Adopts the engine's diagnostic event bus when this detector was
        constructed without one."""
        if self.event_bus is None:
            self.event_bus = getattr(engine, "events", None)
        engine.subscribe(lambda now, result: self.record(now, result))

    def _check(
        self,
        time: float,
        class_key: ClassKey,
        edge: EdgeKey,
        history: List[DelaySample],
        current: float,
    ) -> Optional[ChangeEvent]:
        if len(history) < self.baseline_refreshes:
            return None
        baseline = float(
            np.mean([s.delay for s in history[-self.baseline_refreshes :]])
        )
        change = abs(current - baseline)
        if change < self.absolute_threshold:
            return None
        if baseline > 0 and change / baseline < self.relative_threshold:
            return None
        return ChangeEvent(time, class_key, edge, baseline, current)

    # -- queries ----------------------------------------------------------------------

    def history(self, class_key: ClassKey, edge: EdgeKey) -> List[DelaySample]:
        """All recorded samples of one edge's delay, in refresh order."""
        return list(self._history.get((class_key, edge), []))

    def delay_series(
        self, class_key: ClassKey, edge: EdgeKey
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(times, delays) arrays for plotting (the Figure 7 curve)."""
        samples = self.history(class_key, edge)
        return (
            np.array([s.time for s in samples]),
            np.array([s.delay for s in samples]),
        )

    def events(self) -> List[ChangeEvent]:
        return list(self._events)

    def events_for(self, edge: EdgeKey) -> List[ChangeEvent]:
        return [e for e in self._events if e.edge == edge]

    def tracked_edges(self) -> List[Tuple[ClassKey, EdgeKey]]:
        return sorted(self._history)
