"""Process-parallel correlate/DFS sharding for the online engine.

``parallel="processes"`` scales the refresh past the GIL: the engine
partitions its **service classes** -- the ``(client, front_end)`` pairs
that key both the reference-grouped correlator batches and the pathmap
DFS loop -- across worker *processes* with a consistent-hash shard map,
ships each refresh's fresh blocks to every worker through one
``multiprocessing.shared_memory`` segment (the RLE columns are already
contiguous ``int64``/``float64`` arrays, so workers get zero-copy
views), and merges the disjoint per-shard partial pathmaps back into the
global result.

Design points that make the sharded refresh **bit-identical to serial**:

* The shard unit is the service class. A correlator group shares one
  reference edge -- the class key -- so an entire group (and the DFS of
  the class it feeds) lands on exactly one shard, and the group's batch
  kernels run with exactly the serial membership.
* Every worker mirrors the *full* block history (store/patch/blank all
  follow the parent, via :class:`~repro.core.stages.PipelineCore`), but
  maintains correlators only for classes it owns. Rebalancing therefore
  never moves state: a reassigned class is rebuilt lazily from mirrored
  history through the same replay path that already guarantees
  bit-identical correlators (``PipelineCore._create_correlator``).
* Workers ship exact per-refresh tallies (cache hits/misses, quiet
  skips, correlation-cache hits) and counter *deltas* from their own
  metrics registries, which the parent folds into its registry -- so
  observable counters match the serial run to the integer.

Fault handling: a worker that dies mid-refresh loses only its shard's
classes for that refresh. The parent completes the merge without them,
marks the affected edges :data:`~repro.tracing.transport.QUALITY_DEGRADED`,
publishes :data:`~repro.obs.events.EVENT_SHARD_LOST`, and respawns the
shard from its own mirrored history before the next refresh.
"""

from __future__ import annotations

import collections
import dataclasses
import hashlib
import logging
import multiprocessing
import threading
import time
import traceback
from bisect import bisect_right
from multiprocessing import shared_memory
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config import PathmapConfig
from repro.core.pathmap import Pathmap, class_pairs
from repro.core.correlation import SpectrumCache
from repro.core.rle import RunLengthSeries
from repro.core.stages import EdgeKey, HostWindow, PipelineCore, RefKey
from repro.errors import AnalysisError
from repro.obs.instruments import Counter
from repro.obs.ledger import LedgerRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer

logger = logging.getLogger(__name__)

#: Virtual nodes per shard on the consistent-hash ring. More vnodes give
#: a smoother key distribution; 64 keeps ring rebuilds trivially cheap
#: while bounding per-shard imbalance to a few percent at realistic
#: class counts.
DEFAULT_VNODES = 64

#: How long (seconds) ``close`` waits for a worker to acknowledge before
#: escalating to terminate/kill.
_CLOSE_GRACE = 5.0


def _hash64(data: bytes) -> int:
    """Stable 64-bit hash. ``hashlib.blake2b`` rather than ``hash()``:
    Python string hashing is salted per process, and shard ownership
    must agree across the parent and every worker."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def _key_bytes(key: Tuple[object, ...]) -> bytes:
    """Canonical byte form of a class key (tuple of node ids)."""
    return "\x1f".join(str(part) for part in key).encode("utf-8")


class ShardMap:
    """Consistent-hash assignment of class keys to ``num_shards`` shards.

    Each shard owns :data:`DEFAULT_VNODES` points on a 64-bit ring; a key
    belongs to the shard owning the first ring point at or after the
    key's hash (wrapping). Because shard ``i``'s points depend only on
    ``i``, growing the map from ``n`` to ``n + 1`` shards leaves every
    point of shards ``0..n-1`` in place: a key changes owner **only** by
    moving to the new shard ``n`` (and shrinking is the exact inverse).
    That is the "rebalance without recompute" property -- roughly
    ``K / N`` of ``K`` keys move per step, and the rest keep their
    correlator state where it is.
    """

    def __init__(self, num_shards: int, vnodes: int = DEFAULT_VNODES) -> None:
        if num_shards < 1:
            raise AnalysisError(f"num_shards must be >= 1, got {num_shards}")
        if vnodes < 1:
            raise AnalysisError(f"vnodes must be >= 1, got {vnodes}")
        self.num_shards = int(num_shards)
        self.vnodes = int(vnodes)
        points: List[Tuple[int, int]] = []
        for shard in range(self.num_shards):
            for v in range(self.vnodes):
                points.append((_hash64(f"shard:{shard}:vnode:{v}".encode()), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def owner(self, key: Tuple[object, ...]) -> int:
        """The shard that owns ``key`` (deterministic across processes)."""
        if self.num_shards == 1:
            return 0
        h = _hash64(_key_bytes(key))
        index = bisect_right(self._points, h)
        if index == len(self._points):
            index = 0  # wrap past the highest ring point
        return self._owners[index]

    def partition(
        self, keys: Sequence[Tuple[object, ...]]
    ) -> Dict[int, List[Tuple[object, ...]]]:
        """Split ``keys`` into per-shard lists (every shard present,
        possibly empty; input order preserved within each shard)."""
        out: Dict[int, List[Tuple[object, ...]]] = {
            shard: [] for shard in range(self.num_shards)
        }
        for key in keys:
            out[self.owner(key)].append(key)
        return out


# -- shared-memory block shipment ----------------------------------------------

#: Per-edge shipment header:
#: (edge, start, length, quantum, num_runs, offset, spec_offset, spec_size).
#: ``spec_offset`` is -1 (and ``spec_size`` 0) when no warm FFT spectrum
#: rides along for the edge's block.
BlockHeader = Tuple[EdgeKey, int, int, float, int, int, int, int]


def pack_blocks(
    fresh: Dict[EdgeKey, RunLengthSeries],
    spectra: Optional[Dict[EdgeKey, Tuple[int, np.ndarray]]] = None,
) -> Tuple[Optional[shared_memory.SharedMemory], List[BlockHeader]]:
    """Lay one refresh's fresh blocks into a single shared-memory segment.

    Layout per edge, 8-byte aligned by construction (24 bytes per run):
    ``starts`` (int64) | ``counts`` (int64) | ``values`` (float64). The
    tiny header travels over the control pipe; only the columnar arrays
    go through shared memory. Returns ``(None, header)`` when there are
    no runs to ship (workers then rebuild every block as empty).

    ``spectra`` optionally maps edges to ``(fft_size, rfft spectrum)``
    pairs (complex128). They are appended after the run payload and the
    header records where, so every shard worker can seed its
    :class:`~repro.core.correlation.SpectrumCache` instead of
    re-transforming the same fresh block once per shard.
    """
    spectra = spectra or {}
    header: List[BlockHeader] = []
    offset = 0
    for edge in sorted(fresh):
        block = fresh[edge]
        runs = int(block.num_runs)
        header.append(
            (edge, int(block.start), int(block.length), float(block.quantum), runs, offset)
        )
        offset += 24 * runs
    if offset == 0:
        return None, [entry + (-1, 0) for entry in header]
    # Spectrum payload rides after the runs, 16-byte aligned for the
    # complex128 views.
    full_header: List[BlockHeader] = []
    spec_plan: List[Tuple[EdgeKey, int, int, np.ndarray]] = []
    for entry in header:
        edge = entry[0]
        shipped = spectra.get(edge)
        if shipped is None:
            full_header.append(entry + (-1, 0))
            continue
        size, spec = shipped
        offset = (offset + 15) & ~15
        full_header.append(entry + (offset, int(size)))
        spec_plan.append((edge, offset, int(spec.size), spec))
        offset += 16 * spec.size
    shm = shared_memory.SharedMemory(create=True, size=offset)
    for (edge, _, _, _, runs, off, _, _) in full_header:
        if not runs:
            continue
        block = fresh[edge]
        out = np.frombuffer(shm.buf, dtype=np.int64, count=runs, offset=off)
        out[:] = block.starts
        out = np.frombuffer(shm.buf, dtype=np.int64, count=runs, offset=off + 8 * runs)
        out[:] = block.counts
        out = np.frombuffer(shm.buf, dtype=np.float64, count=runs, offset=off + 16 * runs)
        out[:] = block.values
        del out  # drop the buffer export before the segment is ever closed
    for (_, off, count, spec) in spec_plan:
        out = np.frombuffer(shm.buf, dtype=np.complex128, count=count, offset=off)
        out[:] = spec
        del out
    return shm, full_header


def unpack_blocks(
    shm: Optional[shared_memory.SharedMemory], header: List[BlockHeader]
) -> Dict[EdgeKey, RunLengthSeries]:
    """Rebuild the fresh-block dict from a shipment, as zero-copy views.

    ``RunLengthSeries`` passes arrays through ``np.asarray``, so the
    views returned here alias the shared segment directly -- the worker
    never copies block data it only reads.
    """
    fresh: Dict[EdgeKey, RunLengthSeries] = {}
    for (edge, start, length, quantum, runs, off, *_rest) in header:
        if runs and shm is not None:
            starts = np.frombuffer(shm.buf, dtype=np.int64, count=runs, offset=off)
            counts = np.frombuffer(shm.buf, dtype=np.int64, count=runs, offset=off + 8 * runs)
            values = np.frombuffer(shm.buf, dtype=np.float64, count=runs, offset=off + 16 * runs)
        else:
            starts = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
            values = np.empty(0, dtype=np.float64)
        fresh[tuple(edge)] = RunLengthSeries(starts, counts, values, start, length, quantum)
    return fresh


def seed_spectra(
    shm: Optional[shared_memory.SharedMemory],
    header: List[BlockHeader],
    fresh: Dict[EdgeKey, RunLengthSeries],
    cache: SpectrumCache,
) -> int:
    """Seed a worker's spectrum cache from a shipment's spectra payload.

    Copies each shipped spectrum out of the segment (a memcpy, versus
    the ``rfft`` it replaces) so the cache never pins the mapping, and
    seeds it against the *unpacked block object* -- the same object that
    lands in block history and reaches the batch kernels, which is what
    the cache's identity keying requires. Returns how many spectra were
    seeded.
    """
    if shm is None:
        return 0
    seeded = 0
    for entry in header:
        if len(entry) < 8:
            continue
        edge, _, _, _, _, _, spec_off, spec_size = entry
        if spec_off < 0:
            continue
        count = spec_size // 2 + 1
        view = np.frombuffer(
            shm.buf, dtype=np.complex128, count=count, offset=spec_off
        )
        cache.seed(fresh[tuple(edge)], int(spec_size), view.copy())
        del view
        seeded += 1
    return seeded


def block_tuple(block: RunLengthSeries) -> tuple:
    """Picklable copy of one block (detached from any shared segment) --
    the bootstrap/late-block wire form on the control pipe."""
    return (
        np.array(block.starts, dtype=np.int64),
        np.array(block.counts, dtype=np.int64),
        np.array(block.values, dtype=np.float64),
        int(block.start),
        int(block.length),
        float(block.quantum),
    )


def block_from_tuple(doc: tuple) -> RunLengthSeries:
    starts, counts, values, start, length, quantum = doc
    return RunLengthSeries(starts, counts, values, start, length, quantum)


# -- worker protocol -----------------------------------------------------------


@dataclasses.dataclass
class ShardPartial:
    """One shard worker's complete contribution to one refresh."""

    shard: int
    graphs: Dict[RefKey, object]
    correlations: int = 0
    spikes: int = 0
    edges_discovered: int = 0
    graph_count: int = 0
    nodes_visited: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    skips: int = 0
    corr_cache_hits: int = 0
    correlators: int = 0
    classes: int = 0
    correlate_seconds: float = 0.0
    dfs_seconds: float = 0.0
    #: kernel -> (rows, seconds, work_units, bytes_touched) this refresh.
    kernels: Dict[str, Tuple[int, float, float, int]] = dataclasses.field(
        default_factory=dict
    )
    #: Counter increments this refresh: (name, labels_key, help, delta).
    counters: List[Tuple[str, tuple, str, float]] = dataclasses.field(
        default_factory=list
    )


class ShardWorkerState(PipelineCore):
    """Per-process analysis state of one shard (runs in the worker).

    Hosts the same :class:`~repro.core.stages.PipelineCore` machinery as
    the engine, over a mirrored full block history, with correlators for
    owned classes only. Owns a private metrics registry and ledger whose
    per-refresh movements are shipped back to the parent.
    """

    def __init__(self, spec: dict) -> None:
        self.config: PathmapConfig = spec["config"]
        self._clients: Set[object] = set(spec["clients"])
        self.batched: bool = spec["batched"]
        self.measured_dispatch: bool = spec["measured_dispatch"]
        self.fft_dispatch: str = spec["fft_dispatch"]
        self._spectra = SpectrumCache()
        self.metrics = MetricsRegistry(enabled=spec["metrics_enabled"])
        self.tracer = SpanTracer()
        self.ledger = LedgerRecorder(enabled=spec["ledger_enabled"])
        self.shard: int = spec["shard"]
        self.map = ShardMap(spec["num_shards"])
        self._pool = None
        self._num_blocks: int = spec["num_blocks"]
        self._block_quanta: int = spec["block_quanta"]
        self._refreshes: int = spec["refreshes"]
        self._blocks: Dict[EdgeKey, Deque[RunLengthSeries]] = {
            tuple(edge): collections.deque(
                (block_from_tuple(doc) for doc in docs), maxlen=self._num_blocks
            )
            for edge, docs in spec["history"].items()
        }
        self._correlators: Dict[Tuple[RefKey, EdgeKey], object] = {}
        self._tally_lock = threading.Lock()
        self._refresh_cache_hits = 0
        self._refresh_cache_misses = 0
        self._refresh_skips = 0
        self._refresh_corr_cache_hits = 0
        m = self.metrics
        self._m_batch = m.histogram(
            "correlator_batch_seconds",
            "Seconds per refresh spent in the reference-grouped batch append",
        )
        self._m_cache_hits = m.counter(
            "engine_correlator_cache_hits_total",
            "Correlations served by an existing incremental correlator",
        )
        self._m_cache_misses = m.counter(
            "engine_correlator_cache_misses_total",
            "Correlations that had to build a correlator from block history",
        )
        self._pathmap = Pathmap(
            self.config,
            correlation_provider=self._provide_correlation,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        # Counter values already shipped to the parent, keyed
        # (name, labels_key): the next delta is value - mark.
        self._counter_marks: Dict[Tuple[str, tuple], float] = {}
        # Attached shipment segments, oldest first. A view of a segment
        # can live in block history (and correlator windows) for up to
        # _num_blocks refreshes, so mappings are released only once the
        # window has provably slid past them.
        self._segments: Deque[shared_memory.SharedMemory] = collections.deque()

    # -- refresh ---------------------------------------------------------------

    def refresh(self, msg: dict) -> ShardPartial:
        self._refreshes = msg["refreshes"]
        self._clients |= msg["clients"]
        shm: Optional[shared_memory.SharedMemory] = None
        if msg["shm"] is not None:
            shm = _attach_segment(msg["shm"])
            self._segments.append(shm)
            while len(self._segments) > self._num_blocks + 2:
                segment = self._segments.popleft()
                try:
                    segment.close()
                except BufferError:
                    # A view outlived the modeled retention; keep the
                    # mapping around and retry on a later refresh.
                    self._segments.append(segment)
                    break
        fresh = unpack_blocks(shm, msg["header"])
        if self.fft_dispatch != "off":
            # Warm spectra shipped by the parent: one rfft per block per
            # refresh fleet-wide instead of one per block per shard.
            seed_spectra(shm, msg["header"], fresh, self._spectra)
        pairs = msg["pairs"]
        self._refresh_cache_hits = 0
        self._refresh_cache_misses = 0
        self._refresh_skips = 0
        self._refresh_corr_cache_hits = 0
        self.ledger.begin_refresh()
        correlate_started = time.perf_counter()
        self._store_blocks(fresh, msg["block_start"])
        for edge, doc in msg["late"]:
            self._splice_block(tuple(edge), block_from_tuple(doc), msg["block_start"])
        self._append_to_correlators()
        correlate_seconds = time.perf_counter() - correlate_started
        dfs_started = time.perf_counter()
        window = HostWindow(self)
        result = self._pathmap.analyze(window, workers=1, pairs=pairs)
        dfs_seconds = time.perf_counter() - dfs_started
        kernels = self.ledger.kernel_tallies()
        # Completing the worker ledger warms its kernel-cost EWMAs, so
        # measured dispatch keeps adapting inside each shard.
        self.ledger.complete(
            msg["now"],
            self._refreshes - 1,
            correlate_seconds + dfs_seconds,
            skips=self._refresh_skips,
            cache_hits=self._refresh_cache_hits,
        )
        return ShardPartial(
            shard=self.shard,
            graphs=dict(result.graphs),
            correlations=result.stats.correlations,
            spikes=result.stats.spikes,
            edges_discovered=result.stats.edges_discovered,
            graph_count=result.stats.graphs,
            nodes_visited=result.stats.nodes_visited,
            cache_hits=self._refresh_cache_hits,
            cache_misses=self._refresh_cache_misses,
            skips=self._refresh_skips,
            corr_cache_hits=self._refresh_corr_cache_hits,
            correlators=len(self._correlators),
            classes=len(pairs),
            correlate_seconds=correlate_seconds,
            dfs_seconds=dfs_seconds,
            kernels={k: v for k, v in kernels.items() if v[0] or v[1]},
            counters=self._drain_counter_deltas(),
        )

    def _drain_counter_deltas(self) -> List[Tuple[str, tuple, str, float]]:
        """Counter increments since the last drain, for parent fold-in."""
        out: List[Tuple[str, tuple, str, float]] = []
        for inst in self.metrics.instruments():
            if not isinstance(inst, Counter):
                continue
            key = (inst.name, inst.labels)
            delta = inst.value - self._counter_marks.get(key, 0.0)
            # A zero delta still ships the first time the counter is
            # seen: the parent folds it with inc(0), which materialises
            # the counter so serial and sharded registries expose an
            # identical instrument set (not just identical values).
            if delta or key not in self._counter_marks:
                out.append((inst.name, inst.labels, inst.help, delta))
                self._counter_marks[key] = inst.value
        return out

    # -- control ---------------------------------------------------------------

    def reshard(self, num_shards: int) -> None:
        """Adopt a new shard map; drop correlators for classes no longer
        owned (a reassigned class rebuilds lazily -- and bit-identically
        -- from mirrored history on its new owner)."""
        self.map = ShardMap(num_shards)
        stale = [
            key
            for key in self._correlators
            if self.map.owner(key[0]) != self.shard
        ]
        for key in stale:
            del self._correlators[key]

    def rewindow(self, cutoff_quantum: int) -> None:
        self._blank_history(cutoff_quantum)

    def close(self) -> None:
        """Release every shared-memory mapping. Block history and
        correlator windows hold zero-copy views into the segments, so
        those references must be dropped (and collected) before the
        mmaps can close without ``BufferError``."""
        import gc

        self._blocks.clear()
        self._correlators.clear()
        self._pathmap = None  # type: ignore[assignment]
        gc.collect()
        while self._segments:
            segment = self._segments.popleft()
            try:
                segment.close()
            except BufferError:  # stray view: process exit reclaims the map
                segment._mmap = None  # type: ignore[attr-defined]
                segment._buf = None  # type: ignore[attr-defined]


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach (never create) a shipment segment. Only the parent -- who
    created the segment and will unlink it -- may own the resource-tracker
    registration; a worker registering its attach would make the tracker
    unlink (or warn about) segments it does not own. Python 3.13+ has
    ``track=False`` for exactly this; on older versions the registration
    hook is suppressed for the duration of the attach."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original  # type: ignore[assignment]


def _shard_worker_main(conn, spec: dict) -> None:
    """Worker process entry point: serve refresh/reshard/rewindow/close
    requests over the control pipe until told to stop."""
    state = ShardWorkerState(spec)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            try:
                if kind == "refresh":
                    conn.send(("ok", state.refresh(message[1])))
                elif kind == "reshard":
                    state.reshard(message[1])
                elif kind == "rewindow":
                    state.rewindow(message[1])
                elif kind == "close":
                    conn.send(("closed", state.shard))
                    break
                else:
                    conn.send(("error", f"unknown message kind {kind!r}"))
            except Exception:
                try:
                    conn.send(("error", traceback.format_exc()))
                except (BrokenPipeError, OSError):
                    break
    finally:
        state.close()
        conn.close()


# -- parent-side orchestration -------------------------------------------------


class _WorkerHandle:
    """One live shard worker: its process and control pipe."""

    __slots__ = ("shard", "process", "conn", "dispatched")

    def __init__(self, shard: int, process, conn) -> None:
        self.shard = shard
        self.process = process
        self.conn = conn
        #: True while a refresh request is outstanding (awaiting reply).
        self.dispatched = False

    @property
    def alive(self) -> bool:
        try:
            return self.process.is_alive()
        except ValueError:  # process object already close()d
            return False


class ShardedAnalysis:
    """Parent-side manager of the shard worker fleet.

    Owns worker lifecycle (spawn from mirrored history, respawn after a
    crash, reshard, shutdown), the shared-memory shipment ring, and the
    per-refresh dispatch/collect round. The engine drives it from its
    correlate and DFS stages; all policy that affects analysis output
    lives in the workers' shared :class:`PipelineCore` code.
    """

    def __init__(self, engine, num_shards: int) -> None:
        if num_shards < 1:
            raise AnalysisError(f"shards must be >= 1, got {num_shards}")
        self._engine = engine
        self.num_shards = int(num_shards)
        self.map = ShardMap(self.num_shards)
        self._workers: Dict[int, _WorkerHandle] = {}
        # Live shipment segments, oldest first; unlinked once every
        # worker's window has slid past them (depth bound mirrors the
        # workers' own segment retention).
        self._segments: Deque[shared_memory.SharedMemory] = collections.deque()
        if "fork" in multiprocessing.get_all_start_methods():
            self._ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            self._ctx = multiprocessing.get_context("spawn")
        #: Shards that died and were dropped from the latest refresh.
        self.lost_last_refresh: List[int] = []
        #: Shards respawned from history at the top of the latest refresh.
        self.respawned_last_refresh: List[int] = []
        #: Last reported live-correlator count per shard.
        self.correlator_counts: Dict[int, int] = {}
        #: Workers respawned after a crash, all time.
        self.respawns = 0
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def _spawn(self, shard: int) -> None:
        engine = self._engine
        parent_conn, child_conn = self._ctx.Pipe()
        spec = {
            "config": engine.config,
            "clients": set(engine._clients),
            "batched": engine.batched,
            "measured_dispatch": engine.measured_dispatch,
            "fft_dispatch": engine.fft_dispatch,
            "metrics_enabled": engine.metrics.enabled,
            "ledger_enabled": engine.ledger.enabled,
            "shard": shard,
            "num_shards": self.num_shards,
            "num_blocks": engine._num_blocks,
            "block_quanta": engine._block_quanta,
            "refreshes": engine._refreshes,
            # Deep, segment-detached copy of the parent's mirrored
            # history: exactly what the worker needs to rebuild any
            # owned correlator bit-identically.
            "history": {
                edge: [block_tuple(block) for block in deque_]
                for edge, deque_ in engine._blocks.items()
            },
        }
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, spec),
            name=f"e2eprof-shard-{shard}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._workers[shard] = _WorkerHandle(shard, process, parent_conn)

    def ensure_workers(self) -> List[int]:
        """Spawn missing shards and respawn dead ones from the engine's
        current (pre-store) history. Call at the top of the correlate
        stage, before the refresh's blocks are stored, so a respawned
        worker bootstraps to exactly the other workers' pre-refresh
        state and then ingests the refresh message like everyone else."""
        respawned: List[int] = []
        for shard in range(self.num_shards):
            handle = self._workers.get(shard)
            if handle is not None and handle.alive:
                continue
            if handle is not None:
                handle.conn.close()
                handle.process.join(timeout=0.1)
                self.respawns += 1
            respawned.append(shard)
            self._spawn(shard)
        self.respawned_last_refresh = respawned
        return respawned

    # -- per-refresh round -----------------------------------------------------

    def dispatch(
        self,
        fresh: Dict[EdgeKey, RunLengthSeries],
        late: List[Tuple[EdgeKey, tuple]],
        block_start: int,
        now: float,
        pairs_by_shard: Dict[int, List[RefKey]],
        clients: Set[object],
        refreshes: int,
        spectra: Optional[Dict[EdgeKey, Tuple[int, np.ndarray]]] = None,
    ) -> None:
        """Ship one refresh (blocks via shared memory, control via pipe)
        to every worker. A send failure just marks the shard dead; the
        collect pass accounts for it."""
        shm, header = pack_blocks(fresh, spectra)
        if shm is not None:
            self._segments.append(shm)
            while len(self._segments) > self._engine._num_blocks + 2:
                old = self._segments.popleft()
                old.close()
                old.unlink()
        for shard in range(self.num_shards):
            handle = self._workers.get(shard)
            if handle is None or not handle.alive:
                continue
            message = (
                "refresh",
                {
                    "block_start": block_start,
                    "refreshes": refreshes,
                    "now": now,
                    "clients": set(clients),
                    "shm": shm.name if shm is not None else None,
                    "header": header,
                    "late": late,
                    "pairs": pairs_by_shard.get(shard, []),
                },
            )
            try:
                handle.conn.send(message)
                handle.dispatched = True
            except (BrokenPipeError, OSError):
                handle.dispatched = False

    def collect(self) -> Tuple[List[ShardPartial], List[int]]:
        """Await every dispatched worker's partial. Returns the partials
        (shard order) and the shards lost mid-refresh. A worker that
        *reports* an exception re-raises it here -- that is an analysis
        bug, not a process fault."""
        partials: List[ShardPartial] = []
        lost: List[int] = []
        for shard in range(self.num_shards):
            handle = self._workers.get(shard)
            if handle is None or not handle.dispatched:
                lost.append(shard)
                continue
            handle.dispatched = False
            try:
                reply = handle.conn.recv()
            except (EOFError, OSError):
                lost.append(shard)
                continue
            if reply[0] == "error":
                raise AnalysisError(
                    f"shard {shard} worker failed:\n{reply[1]}"
                )
            partial: ShardPartial = reply[1]
            self.correlator_counts[shard] = partial.correlators
            partials.append(partial)
        for shard in lost:
            self.correlator_counts.pop(shard, None)
        self.lost_last_refresh = lost
        return partials, lost

    # -- state queries / control ----------------------------------------------

    def correlator_total(self) -> int:
        """Live correlators across the fleet (last reported)."""
        return sum(self.correlator_counts.values())

    def partition(self, pairs: List[RefKey]) -> Dict[int, List[RefKey]]:
        return self.map.partition(pairs)

    def reshard(self, num_shards: int) -> None:
        """Rebalance to ``num_shards`` at a refresh boundary: surviving
        workers drop no-longer-owned correlators, removed workers shut
        down, added workers spawn from the engine's mirrored history."""
        if num_shards < 1:
            raise AnalysisError(f"shards must be >= 1, got {num_shards}")
        if num_shards == self.num_shards:
            return
        old = self.num_shards
        self.num_shards = int(num_shards)
        self.map = ShardMap(self.num_shards)
        for shard in range(self.num_shards, old):
            handle = self._workers.pop(shard, None)
            if handle is not None:
                _stop_worker(handle)
        for shard in range(min(old, self.num_shards)):
            handle = self._workers.get(shard)
            if handle is None or not handle.alive:
                continue
            try:
                handle.conn.send(("reshard", self.num_shards))
            except (BrokenPipeError, OSError):
                pass
        # Missing new shards spawn via ensure_workers at the next
        # refresh, bootstrapping from post-refresh history.

    def rewindow(self, cutoff_quantum: int) -> None:
        """Mirror a change-point history blanking into every worker."""
        for handle in self._workers.values():
            if not handle.alive:
                continue
            try:
                handle.conn.send(("rewindow", cutoff_quantum))
            except (BrokenPipeError, OSError):
                pass

    def close(self) -> None:
        """Shut the fleet down and unlink every shipment segment.

        Idempotent, and unconditional about resources: workers that
        ignore the close request are terminated, then killed; every
        shared-memory segment the parent still owns is closed *and*
        unlinked, so nothing survives for the resource tracker to warn
        about."""
        if self._closed:
            return
        self._closed = True
        for handle in list(self._workers.values()):
            _stop_worker(handle)
        self._workers.clear()
        self.correlator_counts.clear()
        while self._segments:
            segment = self._segments.popleft()
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def _stop_worker(handle: _WorkerHandle) -> None:
    """Stop one worker: polite close request, then terminate, then kill."""
    process = handle.process
    try:
        if process.is_alive():
            handle.conn.send(("close",))
            if handle.conn.poll(_CLOSE_GRACE):
                handle.conn.recv()
    except (BrokenPipeError, EOFError, OSError):
        pass
    finally:
        handle.conn.close()
    process.join(timeout=_CLOSE_GRACE)
    if process.is_alive():  # pragma: no cover - stuck worker
        process.terminate()
        process.join(timeout=1.0)
    if process.is_alive():  # pragma: no cover - unkillable worker
        process.kill()
        process.join(timeout=1.0)
    # Release the Process object's pidfd/bookkeeping promptly.
    if hasattr(process, "close") and not process.is_alive():
        try:
            process.close()
        except ValueError:  # pragma: no cover
            pass
