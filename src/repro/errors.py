"""Exception hierarchy for the E2EProf reproduction.

All library errors derive from :class:`E2EProfError` so that callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class E2EProfError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(E2EProfError):
    """A configuration value is invalid or inconsistent with another value."""


class TraceError(E2EProfError):
    """A trace record or trace file is malformed."""


class SeriesError(E2EProfError):
    """A time-series operation received incompatible or malformed series."""


class CorrelationError(E2EProfError):
    """Cross-correlation could not be computed (e.g. zero-variance input)."""


class TopologyError(E2EProfError):
    """A simulated topology is malformed (unknown node, duplicate edge...)."""


class SimulationError(E2EProfError):
    """The discrete-event simulation reached an inconsistent state."""


class AnalysisError(E2EProfError):
    """Service-path analysis failed (no front-end, empty window...)."""


class ObservabilityError(E2EProfError):
    """A metrics instrument was misused (bad name, kind clash, bad bucket)."""
