"""Command-line interface.

The workflows the paper's operators would run, without writing Python::

    # generate traces from the bundled simulated applications
    python -m repro simulate-rubis --dispatch affinity --duration 120 -o trace.jsonl
    python -m repro simulate-delta --queues 5 --duration 3600 -o pipeline.jsonl

    # discover service paths in a trace (packet captures or access logs)
    python -m repro analyze trace.jsonl --clients C1,C2 --window 60 \
        --quantum 1e-3 --sampling-window 50e-3 --max-delay 2 --format ascii

    # audit clock skew across one traced edge
    python -m repro skew trace.jsonl --edge AP:DB --window 60 --quantum 1e-3

    # engine self-observability: run an instrumented analysis and dump
    # the metrics registry (JSON snapshot and/or Prometheus text)
    python -m repro stats --format both -o metrics-snapshot.json
    python -m repro stats trace.jsonl --clients C1,C2 --format prometheus

    # self-tracing: record a span/event timeline of the pipeline and
    # export it (Chrome/Perfetto trace, ASCII or SVG Gantt, raw JSON)
    python -m repro timeline --demo --format chrome -o trace.json
    python -m repro timeline trace.jsonl --clients C1,C2 --format ascii

    # continuous self-profiling: watch per-stage / per-kernel refresh
    # costs live, or dump the refresh cost ledger for CI artifacts
    python -m repro top --interval 0.5
    python -m repro profile --json -o ledger.json

    # tiered trace lake: spill evicted captures to disk during an
    # ingest run, then inspect/query the lake and fold its materialized
    # correlation summaries into long-horizon delay estimates
    python -m repro stats --ingest --lake ./lake --duration 600
    python -m repro lake ls ./lake
    python -m repro lake compact ./lake
    python -m repro lake query ./lake --src AP --dst DB --start 0 --end 60
    python -m repro history ./lake --client C1 --front-end WS \
        --src AP --dst DB --baseline 0 300 --current 300 600

Pass ``--log-level debug`` (before the subcommand) to see the pipeline's
stdlib-logging diagnostics on stderr.

Exit status is non-zero on any E2EProfError, with the message on stderr.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from typing import Optional, Sequence

from repro.analysis.render import render_ascii, render_dot
from repro.apps.delta import build_delta
from repro.apps.rubis import build_rubis
from repro.config import PathmapConfig, TransportConfig
from repro.core.clock_skew import estimate_clock_skew
from repro.core.pathmap import compute_service_graphs
from repro.errors import E2EProfError
from repro.tracing.access_log import access_log_to_captures
from repro.tracing.collector import TraceCollector
from repro.tracing.storage import (
    load_captures,
    read_access_log_jsonl,
    write_access_log_jsonl,
    write_capture_jsonl,
)


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--window", type=float, default=60.0,
                        help="sliding window W in seconds (default 60)")
    parser.add_argument("--quantum", type=float, default=1e-3,
                        help="time quantum tau in seconds (default 1 ms)")
    parser.add_argument("--sampling-window", type=float, default=None,
                        help="density sampling window omega (default 50*tau)")
    parser.add_argument("--max-delay", type=float, default=2.0,
                        help="transaction delay bound T_u in seconds (default 2)")
    parser.add_argument("--spike-sigma", type=float, default=3.0,
                        help="spike threshold in std deviations (default 3)")
    parser.add_argument("--min-spike-height", type=float, default=0.0,
                        help="absolute spike floor (default 0: paper rule)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker threads for per-class analysis "
                             "(default 1 = serial; results are identical)")
    parser.add_argument("--parallel", default="auto",
                        choices=["auto", "serial", "threads", "processes"],
                        help="refresh execution mode (default auto: threads "
                             "when --workers > 1, serial otherwise; results "
                             "are bit-identical in every mode)")
    parser.add_argument("--shards", type=int, default=0,
                        help="correlator shard processes for "
                             "--parallel processes (default 0 = --workers)")


def _config_from(args: argparse.Namespace) -> PathmapConfig:
    omega = args.sampling_window
    if omega is None:
        omega = 50 * args.quantum
    return PathmapConfig(
        window=args.window,
        refresh_interval=args.window,
        quantum=args.quantum,
        sampling_window=omega,
        max_transaction_delay=args.max_delay,
        spike_sigma=args.spike_sigma,
        min_spike_height=args.min_spike_height,
        workers=getattr(args, "workers", 1),
        parallel=getattr(args, "parallel", "auto"),
        shards=getattr(args, "shards", 0),
    )


def _load_collector(args: argparse.Namespace, metrics=None) -> TraceCollector:
    clients = [c for c in (args.clients or "").split(",") if c]
    collector = TraceCollector(client_nodes=clients, metrics=metrics)
    if getattr(args, "access_log", False):
        records = list(read_access_log_jsonl(args.trace))
        records.sort(key=lambda r: (r.timestamp, r.server, r.request_id))
        collector.ingest_many(
            access_log_to_captures(records, ingress_source=args.ingress)
        )
        if not clients:
            collector.add_client(args.ingress)
    else:
        collector.ingest_many(load_captures(args.trace))
    if not collector.clients:
        raise E2EProfError(
            "no client nodes: pass --clients (or --access-log with --ingress)"
        )
    return collector


def cmd_analyze(args: argparse.Namespace) -> int:
    config = _config_from(args)
    collector = _load_collector(args)
    end = args.end
    if end is None:
        end = max(
            max(collector.edge_timestamps(src, dst))
            for src, dst in collector.edges()
        )
    result = compute_service_graphs(
        collector.window(config, end_time=end),
        config,
        method=args.method,
        workers=config.workers,
    )
    if not result.graphs:
        print("no service graphs found in the window", file=sys.stderr)
        return 1
    if args.format == "report":
        from repro.analysis.reportgen import report_text

        print(report_text(result))
    elif args.format == "summary":
        from repro.analysis.reportgen import summarize_result

        print(json.dumps(summarize_result(result), indent=2, sort_keys=True))
    elif args.format == "json":
        payload = {
            f"{client}@{root}": graph.to_dict()
            for (client, root), graph in sorted(result.graphs.items())
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        renderer = render_dot if args.format == "dot" else render_ascii
        for (client, root), graph in sorted(result.graphs.items()):
            print(renderer(graph))
            print()
    print(
        f"# {result.stats.graphs} graphs, {result.stats.edges_discovered} causal "
        f"edges, {result.stats.correlations} correlations, "
        f"{result.stats.elapsed_seconds:.2f}s",
        file=sys.stderr,
    )
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.analysis.diff import diff_graphs

    config = _config_from(args)
    collector = _load_collector(args)

    def analysis(end: float):
        return compute_service_graphs(
            collector.window(config, end_time=end),
            config,
            method=args.method,
            workers=config.workers,
        )

    before = analysis(args.before_end)
    after = analysis(args.after_end)
    shared = set(before.graphs) & set(after.graphs)
    if not shared:
        print("no service class present in both windows", file=sys.stderr)
        return 1
    for key in sorted(shared):
        diff = diff_graphs(before.graphs[key], after.graphs[key])
        print(diff.summary())
        print()
    only_before = set(before.graphs) - shared
    only_after = set(after.graphs) - shared
    for client, root in sorted(only_before):
        print(f"class {client}@{root}: present before, GONE after")
    for client, root in sorted(only_after):
        print(f"class {client}@{root}: NEW after")
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    import pathlib

    from repro.analysis.svg import write_svg

    config = _config_from(args)
    collector = _load_collector(args)
    end = args.end
    if end is None:
        end = max(
            max(collector.edge_timestamps(src, dst))
            for src, dst in collector.edges()
        )
    result = compute_service_graphs(
        collector.window(config, end_time=end),
        config,
        method=args.method,
        workers=config.workers,
    )
    if not result.graphs:
        print("no service graphs found in the window", file=sys.stderr)
        return 1
    outdir = pathlib.Path(args.output)
    outdir.mkdir(parents=True, exist_ok=True)
    for (client, root), graph in sorted(result.graphs.items()):
        path = outdir / f"{client}_{root}.svg"
        write_svg(graph, str(path))
        print(f"wrote {path}", file=sys.stderr)
    return 0


def cmd_skew(args: argparse.Namespace) -> int:
    config = _config_from(args)
    collector = _load_collector(args)
    src, _, dst = args.edge.partition(":")
    if not src or not dst:
        raise E2EProfError(f"--edge must be SRC:DST, got {args.edge!r}")
    end = args.end
    if end is None:
        end = max(collector.edge_timestamps(src, dst))
    estimate = estimate_clock_skew(
        collector, src, dst, config, end_time=end,
        network_delay=args.network_delay,
    )
    print(f"edge {src}->{dst}: skew {estimate.skew*1e3:+.2f} ms "
          f"(raw lag {estimate.raw_lag*1e3:+.2f} ms, "
          f"spike height {estimate.spike_height:.2f})")
    return 0


def _counter_value(snap: dict, name: str) -> float:
    """Value of an unlabeled counter in a registry snapshot (0 if absent)."""
    return float(snap.get(name, {}).get("", {}).get("value", 0.0))


def _optimization_ratios(snap: dict) -> dict:
    """Cumulative quiet-skip and correlation-cache ratios for ``stats``.

    ``skip_ratio`` is the fraction of block-pair lag products the batched
    refresh avoided computing; ``correlation_cache_hit_ratio`` is the
    fraction of correlation queries served from the dirty-flag cache.
    """
    pairs = _counter_value(snap, "correlator_pair_products_total")
    skips = _counter_value(snap, "correlator_skips_total")
    served = _counter_value(snap, "correlator_correlations_served_total")
    cache_hits = _counter_value(snap, "correlation_cache_hits_total")
    return {
        "pair_products_computed": pairs,
        "pair_products_skipped": skips,
        "skip_ratio": skips / (pairs + skips) if pairs + skips else 0.0,
        "correlations_served": served,
        "correlation_cache_hits": cache_hits,
        "correlation_cache_hit_ratio": cache_hits / served if served else 0.0,
    }


def cmd_stats(args: argparse.Namespace) -> int:
    """Run an instrumented analysis and dump the metrics registry.

    Without a trace, runs the bundled RUBiS demo through the online
    engine in wire-fidelity mode, which exercises every instrumented
    subsystem (tracers, wire codec, incremental correlators, pathmap).
    With a trace, replays it through the offline sliding-window analysis.
    """
    from repro.obs import MetricsRegistry, snapshot, to_prometheus

    registry = MetricsRegistry(enabled=True)
    latest_sample = None
    transport_summary = None
    ingest_stats = None
    if args.trace is None:
        config = PathmapConfig(
            window=args.window,
            refresh_interval=args.window / 2.0,
            quantum=args.quantum,
            sampling_window=args.sampling_window or 50 * args.quantum,
            max_transaction_delay=args.max_delay,
            workers=getattr(args, "workers", 1),
        )
        from repro.core.engine import E2EProfEngine

        use_transport = args.transport or any(
            (args.fault_drop, args.fault_reorder, args.fault_duplicate,
             args.fault_corrupt, args.fault_delay)
        )
        transport_config = TransportConfig() if use_transport else None
        channel_factory = None
        if use_transport:
            from repro.tracing.transport import FaultyChannel

            def channel_factory(node, _args=args):
                return FaultyChannel(
                    seed=_args.fault_seed + sum(node.encode()),
                    drop=_args.fault_drop,
                    reorder=_args.fault_reorder,
                    duplicate=_args.fault_duplicate,
                    corrupt=_args.fault_corrupt,
                    delay=_args.fault_delay,
                )

        capture_sink = None
        lake = None
        if args.ingest:
            from repro.tracing.collector import TraceCollector

            if args.lake:
                from repro.lake import TraceLake

                lake = TraceLake(args.lake, metrics=registry)
            capture_sink = TraceCollector(
                metrics=registry, retention=config.retention_horizon, lake=lake
            )
        rubis = build_rubis(dispatch="affinity", seed=args.seed)
        engine = E2EProfEngine(
            config,
            wire_fidelity=True,
            metrics=registry,
            transport=transport_config,
            channel_factory=channel_factory,
            capture_sink=capture_sink,
            lake=lake,
        )
        engine.attach(rubis.topology)
        rubis.run_until(args.duration)
        if capture_sink is not None:
            capture_sink.evict_expired()
            if lake is not None:
                # Exercise the cache-aside read path over the full span
                # (twice, so the mapping LRU's hit rate is meaningful in
                # the report) before snapshotting lake stats.
                lake.flush()
                for src, dst, _side in lake.streams():
                    for _ in range(2):
                        capture_sink.edge_timestamps_range(
                            src, dst, 0.0, args.duration
                        )
            ingest_stats = capture_sink.ingest_stats()
        if engine.latest_sample is None:
            raise E2EProfError(
                f"no refresh fired: --duration {args.duration} is shorter "
                f"than one refresh interval ({config.refresh_interval:.0f}s)"
            )
        latest_sample = engine.latest_sample
        if use_transport:
            transport_summary = engine.transport_summary()
    else:
        from repro.core.offline import analyze_sliding

        config = _config_from(args)
        collector = _load_collector(args, metrics=registry)
        stamps = [
            t
            for src, dst in collector.edges()
            for t in collector.edge_timestamps(src, dst)
        ]
        start, end = min(stamps), max(stamps)
        for _when, _result in analyze_sliding(
            collector, config, start, end, method=args.method, metrics=registry
        ):
            pass
        if args.ingest:
            ingest_stats = collector.ingest_stats()

    if args.format == "prometheus":
        payload = to_prometheus(registry)
    else:
        doc = {"metrics": snapshot(registry)}
        if latest_sample is not None:
            doc["latest_sample"] = latest_sample.to_dict()
            doc["refresh_optimizations"] = _optimization_ratios(
                snapshot(registry)
            )
        if transport_summary is not None:
            doc["transport"] = transport_summary
        if ingest_stats is not None:
            doc["ingest"] = ingest_stats
        if args.format == "both":
            doc["prometheus"] = to_prometheus(registry)
        payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload if payload.endswith("\n") else payload + "\n")
        print(f"wrote metrics to {args.output}", file=sys.stderr)
    else:
        print(payload)
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Record a span/event timeline of the pipeline and export it.

    Without a trace (or with ``--demo``), runs the bundled RUBiS demo
    through the online engine with span tracing enabled and the standard
    detectors subscribed, then exports the engine's flight record. With a
    trace, replays it through the offline sliding-window analysis under
    the same tracing, building one flight-record frame per refresh.
    """
    from repro.analysis.timeline import render_timeline_ascii, render_timeline_svg
    from repro.obs import chrome_trace

    if args.trace is None or args.demo:
        from repro.core.anomaly import AnomalyDetector
        from repro.core.change_detection import ChangeDetector
        from repro.core.engine import E2EProfEngine
        from repro.management.monitor import LatencyMonitor

        config = PathmapConfig(
            window=args.window,
            refresh_interval=args.window / 2.0,
            quantum=args.quantum,
            sampling_window=args.sampling_window or 50 * args.quantum,
            max_transaction_delay=args.max_delay,
            workers=getattr(args, "workers", 1),
        )
        rubis = build_rubis(dispatch="affinity", seed=args.seed)
        engine = E2EProfEngine(config, wire_fidelity=True)
        engine.tracer.enable()
        ChangeDetector().subscribe_to(engine)
        AnomalyDetector().subscribe_to(engine)
        LatencyMonitor().subscribe_to(engine)
        engine.attach(rubis.topology)
        rubis.run_until(args.duration)
        if engine.latest_sample is None:
            raise E2EProfError(
                f"no refresh fired: --duration {args.duration} is shorter "
                f"than one refresh interval ({config.refresh_interval:.0f}s)"
            )
        dump = engine.dump_flight_record(args.last)
    else:
        from repro.core.anomaly import AnomalyDetector
        from repro.core.change_detection import ChangeDetector
        from repro.core.offline import analyze_sliding
        from repro.obs import EventBus, FlightRecorder, RefreshFrame, SpanTracer

        config = _config_from(args)
        collector = _load_collector(args)
        stamps = [
            t
            for src, dst in collector.edges()
            for t in collector.edge_timestamps(src, dst)
        ]
        start, end = min(stamps), max(stamps)
        tracer = SpanTracer(enabled=True)
        events = EventBus(tracer=tracer)
        recorder = FlightRecorder()
        detectors = [
            ChangeDetector(events=events),
            AnomalyDetector(events=events),
        ]
        sequence = 0
        mark = time.perf_counter()
        for when, result in analyze_sliding(
            collector, config, start, end, method=args.method, tracer=tracer
        ):
            for detector in detectors:
                detector.record(when, result)
            recorder.record(
                RefreshFrame(
                    time=when,
                    sequence=sequence,
                    sample={"graphs": len(result.graphs),
                            "spikes": result.stats.spikes,
                            "correlations": result.stats.correlations},
                    spans=tracer.drain(),
                    events=events.events_since(mark),
                )
            )
            mark = time.perf_counter()
            sequence += 1
        dump = recorder.dump(args.last)

    if not dump["frames"]:
        raise E2EProfError("flight record is empty: nothing to export")
    if args.format == "chrome":
        payload = json.dumps(chrome_trace(dump), indent=1) + "\n"
    elif args.format == "json":
        payload = json.dumps(dump, indent=2, sort_keys=True) + "\n"
    elif args.format == "svg":
        payload = render_timeline_svg(dump) + "\n"
    else:
        payload = render_timeline_ascii(dump)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload)
        frames = len(dump["frames"])
        spans = sum(len(f["spans"]) for f in dump["frames"])
        events_n = sum(len(f["events"]) for f in dump["frames"])
        print(
            f"wrote {args.format} timeline of {frames} refreshes "
            f"({spans} spans, {events_n} events) to {args.output}",
            file=sys.stderr,
        )
    else:
        print(payload, end="")
    return 0


def _demo_engine(args: argparse.Namespace):
    """Build the RUBiS demo wired to an online engine (not yet run).

    Shared by the ledger-driven subcommands (``top``, ``profile``): the
    caller subscribes whatever it needs, then drives the simulation with
    ``rubis.run_until(args.duration)``.
    """
    from repro.core.engine import E2EProfEngine

    config = PathmapConfig(
        window=args.window,
        refresh_interval=args.window / 2.0,
        quantum=args.quantum,
        sampling_window=args.sampling_window or 50 * args.quantum,
        max_transaction_delay=args.max_delay,
        workers=getattr(args, "workers", 1),
        measured_dispatch=getattr(args, "measured_dispatch", False),
        fft_dispatch=getattr(args, "fft_dispatch", "auto"),
    )
    rubis = build_rubis(dispatch="affinity", seed=args.seed)
    engine = E2EProfEngine(config, wire_fidelity=True)
    engine.attach(rubis.topology)
    return rubis, engine, config


def _require_refresh(engine, args: argparse.Namespace, config) -> None:
    if engine.latest_ledger is None:
        raise E2EProfError(
            f"no refresh fired: --duration {args.duration} is shorter "
            f"than one refresh interval ({config.refresh_interval:.0f}s)"
        )


def cmd_top(args: argparse.Namespace) -> int:
    """Live per-refresh cost view over the engine's refresh ledgers.

    Runs the bundled RUBiS demo through the online engine and redraws a
    ``top``-style frame after every refresh: refresh rate, per-stage
    bars (last/p50), kernel mix with measured ns/row EWMAs, and the
    quiet-skip / cache ratios. With ``--once`` (or when stdout is not a
    terminal) prints a single final frame instead.
    """
    from repro.analysis.top import render_top

    rubis, engine, config = _demo_engine(args)
    title = f"repro top | RUBiS demo seed {args.seed}"
    live = not args.once and sys.stdout.isatty()
    if live:
        def redraw(now, result, sample):
            sys.stdout.write("\x1b[2J\x1b[H")
            sys.stdout.write(
                render_top(
                    engine.ledger.history(args.last),
                    engine.ledger.ewma_snapshot(),
                    title=title,
                )
            )
            sys.stdout.flush()
            if args.interval > 0:
                time.sleep(args.interval)

        engine.subscribe_metrics(redraw)
    rubis.run_until(args.duration)
    _require_refresh(engine, args, config)
    frame = render_top(
        engine.ledger.history(args.last),
        engine.ledger.ewma_snapshot(),
        title=title,
    )
    if live:
        sys.stdout.write("\x1b[2J\x1b[H")
    print(frame, end="")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Dump the refresh cost ledger after an instrumented demo run.

    Default output is the human-readable profile frame; ``--json`` emits
    the full :meth:`LedgerRecorder.export` document (per-kernel EWMAs
    plus every retained per-refresh ledger) with deterministically
    ordered keys, suitable as a CI artifact.
    """
    from repro.analysis.top import render_profile

    rubis, engine, config = _demo_engine(args)
    rubis.run_until(args.duration)
    _require_refresh(engine, args, config)
    if args.json:
        from repro.obs.ledger import CORRELATION_KERNELS

        doc = engine.ledger.export(args.last)
        doc["workload"] = {
            "app": "rubis",
            "duration": args.duration,
            "fft_dispatch": engine.fft_dispatch,
            "measured_dispatch": engine.measured_dispatch,
            "refresh_interval": config.refresh_interval,
            "seed": args.seed,
            "window": config.window,
        }
        # Per-kernel row-density summary over the exported ledgers: how
        # many rows the dispatch routed to each kernel and the average
        # dispatch units / bytes behind each row -- the dense-vs-sparse
        # regime signal the routing decisions were made on.
        ledgers = engine.ledger.history(args.last)
        doc["kernel_density"] = {}
        for name in CORRELATION_KERNELS:
            rows = sum(led.kernel(name).rows for led in ledgers)
            units = sum(led.kernel(name).work_units for led in ledgers)
            nbytes = sum(led.kernel(name).bytes_touched for led in ledgers)
            doc["kernel_density"][name] = {
                "rows": rows,
                "work_units": units,
                "bytes_touched": nbytes,
                "units_per_row": units / rows if rows else None,
                "bytes_per_row": nbytes / rows if rows else None,
            }
        payload = json.dumps(doc, indent=2, sort_keys=True)
    else:
        payload = render_profile(
            engine.ledger.history(args.last),
            engine.ledger.ewma_snapshot(),
            title=f"repro profile | RUBiS demo seed {args.seed}",
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload if payload.endswith("\n") else payload + "\n")
        print(f"wrote profile to {args.output}", file=sys.stderr)
    else:
        print(payload, end="" if payload.endswith("\n") else "\n")
    return 0


def _scenario_modes(spec: str) -> Sequence[str]:
    from repro.scenarios.runner import STATIC_GRID

    valid = ("adaptive",) + tuple(sorted(STATIC_GRID))
    modes = [m for m in spec.split(",") if m]
    for mode in modes:
        if mode not in valid:
            raise E2EProfError(
                f"unknown mode {mode!r}: pick from {', '.join(valid)}"
            )
    if not modes:
        raise E2EProfError("no analysis modes given")
    return modes


def _score_scenario(name: str, mode: str, seed: int):
    """Build, simulate and grade one scenario under one analysis mode."""
    from repro.scenarios import get_scenario
    from repro.scenarios.runner import (
        STATIC_GRID,
        analyze_adaptive,
        analyze_static,
        grid_config,
    )

    if mode != "adaptive" and mode not in STATIC_GRID:
        raise E2EProfError(
            f"unknown mode {mode!r}: pick adaptive or one of "
            f"{', '.join(sorted(STATIC_GRID))}"
        )
    run = get_scenario(name).build(seed=seed)
    if mode == "adaptive":
        return analyze_adaptive(run)
    return analyze_static(run, grid_config(run, mode), mode=mode)


def cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios import list_scenarios

    for scenario in list_scenarios():
        kind = "steady" if scenario.steady else "shift "
        print(f"{scenario.name:16s} [{kind}] {scenario.description}")
    return 0


def cmd_scenarios_run(args: argparse.Namespace) -> int:
    score = _score_scenario(args.scenario, args.mode, args.seed)
    if args.format == "json":
        payload = json.dumps(
            score.to_dict(include_cells=args.cells), indent=2, sort_keys=True
        )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote score to {args.output}", file=sys.stderr)
        else:
            print(payload)
        return 0
    detected = [
        f"{latency:.1f}s" if latency is not None else "missed"
        for latency in score.detection
    ]
    err = score.mean_delay_error
    print(f"scenario {score.scenario} (seed {score.seed}, mode {score.mode}):")
    print(f"  f1        {score.aggregate_f1:.3f}  "
          f"(precision {score.aggregate_precision:.3f}, "
          f"recall {score.aggregate_recall:.3f})")
    print(f"  delay err {err:.3f}" if err is not None else "  delay err n/a")
    if detected:
        print(f"  detection {', '.join(detected)}")
    return 0


def cmd_scenarios_score(args: argparse.Namespace) -> int:
    from repro.scenarios import list_scenarios

    names = [n for n in (args.scenarios or "").split(",") if n]
    if not names:
        names = [scenario.name for scenario in list_scenarios()]
    modes = _scenario_modes(args.modes)
    rows = []
    for name in names:
        for mode in modes:
            score = _score_scenario(name, mode, args.seed)
            rows.append(score.to_dict(include_cells=False))
            print(
                f"{name:16s} {mode:8s} f1={score.aggregate_f1:.3f} "
                f"p={score.aggregate_precision:.3f} "
                f"r={score.aggregate_recall:.3f}",
                file=sys.stderr,
            )
    aggregates = {
        mode: sum(r["aggregate_f1"] for r in rows if r["mode"] == mode)
        / sum(1 for r in rows if r["mode"] == mode)
        for mode in modes
    }
    doc = {
        "seed": args.seed,
        "scenarios": names,
        "modes": list(modes),
        "scores": rows,
        "aggregate_f1_by_mode": aggregates,
    }
    payload = json.dumps(doc, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote scorecard to {args.output}", file=sys.stderr)
    else:
        print(payload)
    return 0


def cmd_simulate_rubis(args: argparse.Namespace) -> int:
    rubis = build_rubis(dispatch=args.dispatch, seed=args.seed,
                        request_rate=args.rate)
    rubis.run_until(args.duration)
    count = write_capture_jsonl(args.output, rubis.collector.export_records())
    print(f"wrote {count} capture records to {args.output} "
          f"(clients: C1, C2)", file=sys.stderr)
    return 0


def cmd_simulate_delta(args: argparse.Namespace) -> int:
    deployment = build_delta(seed=args.seed, num_queues=args.queues,
                             events_per_hour=args.events_per_hour,
                             slow_db_factor=args.slow_db)
    deployment.run_until(args.duration)
    count = write_access_log_jsonl(args.output, deployment.sorted_access_log())
    print(f"wrote {count} access-log records to {args.output} "
          f"(analyze with --access-log --ingress external)", file=sys.stderr)
    return 0


def _open_lake(root: str):
    from repro.lake import TraceLake

    return TraceLake(root)


def cmd_lake_ls(args: argparse.Namespace) -> int:
    lake = _open_lake(args.root)
    segments = lake.segments()
    summaries = lake.summary_files()
    if args.format == "json":
        doc = {
            "root": args.root,
            "segments": [
                {
                    "seq": m.seq,
                    "path": m.path,
                    "src": m.src,
                    "dst": m.dst,
                    "side": "dst" if m.observed_at_destination else "src",
                    "t_min": m.t_min,
                    "t_max": m.t_max,
                    "count": m.count,
                    "bytes": m.nbytes,
                }
                for m in segments
            ],
            "summary_files": [
                {"seq": m.seq, "path": m.path, "count": m.count,
                 "t_min": m.t_min, "t_max": m.t_max, "bytes": m.nbytes}
                for m in summaries
            ],
            "stats": lake.stats(),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    for m in segments:
        side = "dst" if m.observed_at_destination else "src"
        print(f"seg {m.seq:8d}  {m.src}->{m.dst} [{side}]  "
              f"[{m.t_min:.3f}, {m.t_max:.3f}]  "
              f"{m.count} records  {m.nbytes} bytes")
    for m in summaries:
        print(f"sum {m.seq:8d}  {m.count} rows  "
              f"[{m.t_min:.3f}, {m.t_max:.3f}]  {m.nbytes} bytes")
    total_bytes = sum(m.nbytes for m in segments)
    total_records = sum(m.count for m in segments)
    print(f"{len(segments)} segments ({total_records} records, "
          f"{total_bytes} bytes), {len(summaries)} summary files")
    return 0


def cmd_lake_compact(args: argparse.Namespace) -> int:
    lake = _open_lake(args.root)
    before = len(lake.segments())
    merged = lake.compact(target_bytes=args.target_bytes)
    after = len(lake.segments())
    print(f"compaction rewrote {merged} segment group(s): "
          f"{before} -> {after} segments", file=sys.stderr)
    return 0


def cmd_lake_query(args: argparse.Namespace) -> int:
    import numpy as np

    lake = _open_lake(args.root)
    streams = set(lake.streams())
    if args.side == "auto":
        sides = [at_dst for at_dst in (True, False)
                 if (args.src, args.dst, at_dst) in streams]
        if not sides:
            raise E2EProfError(
                f"no spilled stream for edge ({args.src}, {args.dst})"
            )
        sides = sides[:1]
    else:
        sides = [args.side == "dst"]
    stamps = np.sort(
        lake.query(args.src, args.dst, sides[0],
                   start=args.start, end=args.end)
    )
    if args.format == "json":
        doc = {
            "src": args.src,
            "dst": args.dst,
            "side": "dst" if sides[0] else "src",
            "count": int(stamps.size),
            "timestamps": [float(value) for value in stamps],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    for value in stamps:
        print(f"{value:.6f}")
    print(f"{stamps.size} records", file=sys.stderr)
    return 0


def cmd_history(args: argparse.Namespace) -> int:
    from repro.analysis.history import (
        delay_drift,
        raw_span_estimate,
        span_estimate,
    )

    lake = _open_lake(args.root)
    max_lag = args.max_lag
    if args.baseline is not None or args.current is not None:
        if args.baseline is None or args.current is None:
            raise E2EProfError("--baseline and --current must be given together")
        if args.raw:
            raise E2EProfError("--raw does not support drift comparisons")
        report = delay_drift(
            lake, args.client, args.front_end, args.src, args.dst,
            (args.baseline[0], args.baseline[1]),
            (args.current[0], args.current[1]),
            max_lag=max_lag,
        )
        if args.format == "json":
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
            return 0
        b, c = report.baseline, report.current
        print(f"edge ({args.src} -> {args.dst}) for class "
              f"({args.client}, {args.front_end}):")
        print(f"  baseline [{b.start:.1f}, {b.end:.1f}]: "
              f"delay {b.delay:.3f}s (peak {b.peak:.3f}, {b.blocks} blocks)")
        print(f"  current  [{c.start:.1f}, {c.end:.1f}]: "
              f"delay {c.delay:.3f}s (peak {c.peak:.3f}, {c.blocks} blocks)")
        if report.comparable:
            print(f"  drift    {report.drift_seconds:+.3f}s "
                  f"({report.drift_quanta:+d} quanta)")
        else:
            print("  drift    n/a (degenerate span)")
        return 0
    if args.raw:
        config = _config_from(args)
        estimate = raw_span_estimate(
            lake, config, args.client, args.front_end, args.src, args.dst,
            args.start, args.end, max_lag=max_lag,
        )
    else:
        estimate = span_estimate(
            lake, args.client, args.front_end, args.src, args.dst,
            start=args.start, end=args.end, max_lag=max_lag,
        )
    if args.format == "json":
        print(json.dumps(estimate.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"edge ({args.src} -> {args.dst}) for class "
          f"({args.client}, {args.front_end}) over "
          f"[{estimate.start:.1f}, {estimate.end:.1f}] "
          f"({estimate.source}):")
    if estimate.degenerate:
        print("  delay    n/a (degenerate correlation)")
    else:
        print(f"  delay    {estimate.delay:.3f}s (peak {estimate.peak:.3f})")
    print(f"  window   {estimate.n} quanta, {estimate.blocks} summary blocks")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="E2EProf (DSN 2007) reproduction: black-box end-to-end "
                    "service-path analysis.",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="enable stdlib logging at this level on stderr "
             "(place before the subcommand)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="discover service paths in a trace")
    analyze.add_argument("trace", help="trace file (.jsonl or .csv)")
    analyze.add_argument("--clients", default="",
                         help="comma-separated client node ids")
    analyze.add_argument("--access-log", action="store_true",
                         help="input is an access log, not packet captures")
    analyze.add_argument("--ingress", default="external",
                         help="ingress source name for access logs")
    analyze.add_argument("--end", type=float, default=None,
                         help="window end time (default: last capture)")
    analyze.add_argument("--method", default="auto",
                         choices=["auto", "dense", "sparse", "rle", "fft"])
    analyze.add_argument("--format", default="ascii",
                         choices=["ascii", "dot", "json", "report", "summary"])
    _add_config_arguments(analyze)
    analyze.set_defaults(func=cmd_analyze)

    diff = sub.add_parser(
        "diff", help="compare two analysis windows of one trace"
    )
    diff.add_argument("trace", help="trace file (.jsonl or .csv)")
    diff.add_argument("--before-end", type=float, required=True,
                      help="end time of the baseline window")
    diff.add_argument("--after-end", type=float, required=True,
                      help="end time of the comparison window")
    diff.add_argument("--clients", default="",
                      help="comma-separated client node ids")
    diff.add_argument("--access-log", action="store_true")
    diff.add_argument("--ingress", default="external")
    diff.add_argument("--method", default="auto",
                      choices=["auto", "dense", "sparse", "rle", "fft"])
    _add_config_arguments(diff)
    diff.set_defaults(func=cmd_diff)

    render = sub.add_parser("render", help="render service graphs as SVG")
    render.add_argument("trace", help="trace file (.jsonl or .csv)")
    render.add_argument("-o", "--output", required=True, help="output directory")
    render.add_argument("--clients", default="",
                        help="comma-separated client node ids")
    render.add_argument("--access-log", action="store_true",
                        help="input is an access log, not packet captures")
    render.add_argument("--ingress", default="external",
                        help="ingress source name for access logs")
    render.add_argument("--end", type=float, default=None)
    render.add_argument("--method", default="auto",
                        choices=["auto", "dense", "sparse", "rle", "fft"])
    _add_config_arguments(render)
    render.set_defaults(func=cmd_render)

    skew = sub.add_parser("skew", help="estimate clock skew across an edge")
    skew.add_argument("trace", help="trace file (.jsonl or .csv)")
    skew.add_argument("--edge", required=True, help="SRC:DST node pair")
    skew.add_argument("--clients", default="", help="client node ids")
    skew.add_argument("--end", type=float, default=None)
    skew.add_argument("--network-delay", type=float, default=0.0,
                      help="known one-way link latency to subtract (s)")
    _add_config_arguments(skew)
    skew.set_defaults(func=cmd_skew, access_log=False)

    stats = sub.add_parser(
        "stats",
        help="run an instrumented analysis and dump engine metrics",
    )
    stats.add_argument("trace", nargs="?", default=None,
                       help="trace to replay (default: run the RUBiS demo)")
    stats.add_argument("--clients", default="",
                       help="comma-separated client node ids (trace mode)")
    stats.add_argument("--access-log", action="store_true",
                       help="input is an access log, not packet captures")
    stats.add_argument("--ingress", default="external",
                       help="ingress source name for access logs")
    stats.add_argument("--method", default="auto",
                       choices=["auto", "dense", "sparse", "rle", "fft"])
    stats.add_argument("--format", default="json",
                       choices=["json", "prometheus", "both"],
                       help="output format (default json; 'both' embeds the "
                            "Prometheus text in the JSON document)")
    stats.add_argument("-o", "--output", default=None,
                       help="write to a file instead of stdout")
    stats.add_argument("--seed", type=int, default=0,
                       help="demo-mode simulation seed")
    stats.add_argument("--duration", type=float, default=65.0,
                       help="demo-mode simulated seconds (default 65)")
    stats.add_argument("--transport", action="store_true",
                       help="demo mode: stream blocks through the "
                            "fault-tolerant transport (implied by any "
                            "--fault-* rate)")
    stats.add_argument("--fault-drop", type=float, default=0.0,
                       help="per-frame drop probability on every link")
    stats.add_argument("--fault-reorder", type=float, default=0.0,
                       help="per-frame reorder (hold one round) probability")
    stats.add_argument("--fault-duplicate", type=float, default=0.0,
                       help="per-frame duplication probability")
    stats.add_argument("--fault-corrupt", type=float, default=0.0,
                       help="per-frame corruption probability")
    stats.add_argument("--fault-delay", type=float, default=0.0,
                       help="per-frame multi-round delay probability")
    stats.add_argument("--fault-seed", type=int, default=0,
                       help="base seed for the per-link fault injectors")
    stats.add_argument("--ingest", action="store_true",
                       help="demo mode: attach a bounded columnar capture "
                            "sink to the engine and report its ingest "
                            "statistics; trace mode: report the replay "
                            "collector's ingest statistics")
    stats.add_argument("--lake", default=None, metavar="DIR",
                       help="demo mode with --ingest: spill evicted capture "
                            "chunks to a trace lake at DIR and report lake "
                            "statistics (segments, bytes, mapping hit rate)")
    _add_config_arguments(stats)
    stats.set_defaults(func=cmd_stats)

    timeline = sub.add_parser(
        "timeline",
        help="record a span/event timeline of the pipeline and export it",
    )
    timeline.add_argument("trace", nargs="?", default=None,
                          help="trace to replay (default: run the RUBiS demo)")
    timeline.add_argument("--demo", action="store_true",
                          help="run the RUBiS demo even if a trace is given")
    timeline.add_argument("--clients", default="",
                          help="comma-separated client node ids (trace mode)")
    timeline.add_argument("--access-log", action="store_true",
                          help="input is an access log, not packet captures")
    timeline.add_argument("--ingress", default="external",
                          help="ingress source name for access logs")
    timeline.add_argument("--method", default="auto",
                          choices=["auto", "dense", "sparse", "rle", "fft"])
    timeline.add_argument("--format", default="ascii",
                          choices=["ascii", "chrome", "svg", "json"],
                          help="export format: ASCII Gantt (default), "
                               "Chrome/Perfetto trace JSON, SVG Gantt, or "
                               "the raw flight-record dump")
    timeline.add_argument("-o", "--output", default=None,
                          help="write to a file instead of stdout")
    timeline.add_argument("--last", type=int, default=None,
                          help="export only the last N recorded refreshes")
    timeline.add_argument("--seed", type=int, default=0,
                          help="demo-mode simulation seed")
    timeline.add_argument("--duration", type=float, default=65.0,
                          help="demo-mode simulated seconds (default 65)")
    _add_config_arguments(timeline)
    timeline.set_defaults(func=cmd_timeline)

    top = sub.add_parser(
        "top",
        help="live per-refresh cost view (stages, kernels, ns/row EWMAs)",
    )
    top.add_argument("--once", action="store_true",
                     help="print one final frame instead of redrawing live "
                          "(implied when stdout is not a terminal)")
    top.add_argument("--last", type=int, default=32,
                     help="ledger window for rates/percentiles (default 32)")
    top.add_argument("--interval", type=float, default=0.0,
                     help="live mode: wall-clock pause after each redraw, "
                          "so the simulated run is watchable (default 0)")
    top.add_argument("--seed", type=int, default=0,
                     help="demo-mode simulation seed")
    top.add_argument("--duration", type=float, default=185.0,
                     help="demo-mode simulated seconds (default 185)")
    top.add_argument("--measured-dispatch", action="store_true",
                     help="drive kernel dispatch from measured ns/unit "
                          "EWMAs instead of the modeled cost constant")
    top.add_argument("--fft-dispatch", default="auto",
                     choices=("auto", "off", "force"),
                     help="FFT batch kernel routing: auto (cost model "
                          "decides), off (direct kernels only), force "
                          "(every batched row through the FFT kernel)")
    _add_config_arguments(top)
    top.set_defaults(func=cmd_top)

    profile = sub.add_parser(
        "profile",
        help="dump the refresh cost ledger (per-stage/per-kernel accounting)",
    )
    profile.add_argument("--json", action="store_true",
                         help="emit the full ledger export document "
                              "(EWMAs + retained per-refresh ledgers) "
                              "instead of the human-readable frame")
    profile.add_argument("--last", type=int, default=None,
                         help="export only the last N retained ledgers")
    profile.add_argument("-o", "--output", default=None,
                         help="write to a file instead of stdout")
    profile.add_argument("--seed", type=int, default=0,
                         help="demo-mode simulation seed")
    profile.add_argument("--duration", type=float, default=185.0,
                         help="demo-mode simulated seconds (default 185)")
    profile.add_argument("--measured-dispatch", action="store_true",
                         help="drive kernel dispatch from measured ns/unit "
                              "EWMAs instead of the modeled cost constant")
    profile.add_argument("--fft-dispatch", default="auto",
                         choices=("auto", "off", "force"),
                         help="FFT batch kernel routing: auto (cost model "
                              "decides), off (direct kernels only), force "
                              "(every batched row through the FFT kernel)")
    _add_config_arguments(profile)
    profile.set_defaults(func=cmd_profile)

    scenarios = sub.add_parser(
        "scenarios",
        help="run the labeled non-steady-state scenario suite",
    )
    scen_sub = scenarios.add_subparsers(dest="scenario_command", required=True)

    scen_list = scen_sub.add_parser("list", help="list available scenarios")
    scen_list.set_defaults(func=cmd_scenarios_list)

    scen_run = scen_sub.add_parser(
        "run", help="simulate and grade one scenario"
    )
    scen_run.add_argument("scenario", help="scenario name (see 'scenarios list')")
    scen_run.add_argument("--seed", type=int, default=0)
    scen_run.add_argument("--mode", default="adaptive",
                          help="analysis mode: adaptive (default) or a "
                               "static grid name (fast, medium, slow)")
    scen_run.add_argument("--format", default="text",
                          choices=["text", "json"])
    scen_run.add_argument("--cells", action="store_true",
                          help="include per-refresh per-class cells in JSON")
    scen_run.add_argument("-o", "--output", default=None,
                          help="write JSON to a file instead of stdout")
    scen_run.set_defaults(func=cmd_scenarios_run)

    scen_score = scen_sub.add_parser(
        "score",
        help="grade scenarios across analysis modes into a JSON scorecard",
    )
    scen_score.add_argument("--scenarios", default="",
                            help="comma-separated scenario names (default all)")
    scen_score.add_argument("--modes", default="adaptive,fast,medium,slow",
                            help="comma-separated analysis modes")
    scen_score.add_argument("--seed", type=int, default=0)
    scen_score.add_argument("-o", "--output", default=None,
                            help="write the scorecard to a file")
    scen_score.set_defaults(func=cmd_scenarios_score)

    lake = sub.add_parser(
        "lake",
        help="inspect and maintain a write-behind trace lake",
    )
    lake_sub = lake.add_subparsers(dest="lake_command", required=True)
    lake_ls = lake_sub.add_parser(
        "ls", help="list a lake's segments and summary files"
    )
    lake_ls.add_argument("root", help="trace-lake directory")
    lake_ls.add_argument("--format", default="table",
                         choices=["table", "json"])
    lake_ls.set_defaults(func=cmd_lake_ls)
    lake_compact = lake_sub.add_parser(
        "compact",
        help="merge adjacent same-stream segments into larger ones",
    )
    lake_compact.add_argument("root", help="trace-lake directory")
    lake_compact.add_argument("--target-bytes", type=int, default=None,
                              help="target merged-segment size "
                                   "(default 4x the lake's segment size)")
    lake_compact.set_defaults(func=cmd_lake_compact)
    lake_query = lake_sub.add_parser(
        "query", help="read one edge's spilled timestamps from a lake"
    )
    lake_query.add_argument("root", help="trace-lake directory")
    lake_query.add_argument("--src", required=True, help="edge source node")
    lake_query.add_argument("--dst", required=True,
                            help="edge destination node")
    lake_query.add_argument("--side", default="auto",
                            choices=["auto", "dst", "src"],
                            help="capture side (default: destination when "
                                 "present, else source)")
    lake_query.add_argument("--start", type=float, default=float("-inf"),
                            help="inclusive span start in seconds")
    lake_query.add_argument("--end", type=float, default=float("inf"),
                            help="exclusive span end in seconds")
    lake_query.add_argument("--format", default="text",
                            choices=["text", "json"])
    lake_query.set_defaults(func=cmd_lake_query)

    history = sub.add_parser(
        "history",
        help="long-horizon delay estimates from materialized lake summaries",
    )
    history.add_argument("root", help="trace-lake directory")
    history.add_argument("--client", required=True,
                         help="client node of the request class")
    history.add_argument("--front-end", required=True,
                         help="front-end (root) node of the request class")
    history.add_argument("--src", required=True, help="edge source node")
    history.add_argument("--dst", required=True, help="edge destination node")
    history.add_argument("--start", type=float, default=float("-inf"),
                         help="inclusive span start in seconds")
    history.add_argument("--end", type=float, default=float("inf"),
                         help="exclusive span end in seconds")
    history.add_argument("--baseline", type=float, nargs=2, default=None,
                         metavar=("START", "END"),
                         help="baseline span for a drift comparison")
    history.add_argument("--current", type=float, nargs=2, default=None,
                         metavar=("START", "END"),
                         help="current span for a drift comparison")
    history.add_argument("--max-lag", type=int, default=None,
                         help="truncate correlations to this many lag quanta "
                              "(strongly recommended for --raw over long "
                              "spans)")
    history.add_argument("--raw", action="store_true",
                         help="re-correlate the raw spilled timestamps "
                              "instead of folding summaries (exact, slow; "
                              "needs a finite --start/--end)")
    history.add_argument("--format", default="text",
                         choices=["text", "json"])
    _add_config_arguments(history)
    history.set_defaults(func=cmd_history)

    rubis = sub.add_parser("simulate-rubis", help="generate a RUBiS packet trace")
    rubis.add_argument("-o", "--output", required=True)
    rubis.add_argument("--dispatch", default="affinity",
                       choices=["affinity", "round_robin"])
    rubis.add_argument("--seed", type=int, default=0)
    rubis.add_argument("--rate", type=float, default=10.0,
                       help="requests/second per class")
    rubis.add_argument("--duration", type=float, default=120.0)
    rubis.set_defaults(func=cmd_simulate_rubis)

    delta = sub.add_parser("simulate-delta",
                           help="generate a Revenue Pipeline access log")
    delta.add_argument("-o", "--output", required=True)
    delta.add_argument("--seed", type=int, default=0)
    delta.add_argument("--queues", type=int, default=5)
    delta.add_argument("--events-per-hour", type=float, default=18000.0)
    delta.add_argument("--slow-db", type=float, default=1.0)
    delta.add_argument("--duration", type=float, default=3700.0)
    delta.set_defaults(func=cmd_simulate_delta)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level:
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            format="%(asctime)s %(levelname)s %(name)s: %(message)s",
            stream=sys.stderr,
        )
    try:
        return args.func(args)
    except E2EProfError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
