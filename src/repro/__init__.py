"""repro -- reproduction of *E2EProf: Automated End-to-End Performance
Management for Enterprise Systems* (Agarwala, Alegre, Schwan,
Mehalingham; DSN 2007).

The package has four layers:

* :mod:`repro.core` -- the paper's contribution: density time series,
  bounded/sparse/RLE/FFT cross-correlation, spike detection, the pathmap
  path-discovery algorithm, the incremental online engine, change
  detection, clock-skew estimation and bottleneck attribution.
* :mod:`repro.tracing` -- the non-intrusive tracing substrate: per-node
  tracers, the central collector, access-log adapters and trace storage.
* :mod:`repro.simulation` -- the testbed substitute: a deterministic
  discrete-event simulator of multi-tier enterprise systems.
* :mod:`repro.apps` / :mod:`repro.management` / :mod:`repro.baselines` --
  the paper's two case studies (RUBiS, Delta Revenue Pipeline), SLA-aware
  path selection, and the Aguilera et al. baselines.

Quickstart::

    from repro import build_rubis, compute_service_graphs

    rubis = build_rubis(dispatch="affinity", seed=7)
    rubis.run_until(185.0)
    result = compute_service_graphs(rubis.window(end_time=183.0), rubis.config)
    print(result.graph_for("C1"))
"""

import logging as _logging

# Library-friendly logging: every module under repro logs through its
# module logger, and the package root swallows records unless the
# application configures handlers (or passes --log-level to the CLI).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from repro.config import DELTA_CONFIG, PathmapConfig, RUBIS_CONFIG, TransportConfig
from repro.core.autotune import AdaptiveController, TrafficStats, autotune_config
from repro.core.bottleneck import BottleneckReport, find_bottlenecks
from repro.core.change_detection import ChangeDetector, ChangeEvent
from repro.core.confidence import ConfidenceReport, timestamp_confidence, window_confidence
from repro.core.clock_skew import SkewEstimate, estimate_clock_skew
from repro.core.correlation import CorrelationSeries, cross_correlate
from repro.core.engine import E2EProfEngine
from repro.core.pathmap import Pathmap, PathmapResult, TraceWindow, compute_service_graphs
from repro.core.rle import RunLengthSeries, rle_decode, rle_encode
from repro.core.service_graph import ServiceEdge, ServiceGraph, ServicePath
from repro.core.spikes import Spike, detect_spikes
from repro.core.timeseries import DensityTimeSeries, build_density_series
from repro.errors import (
    AnalysisError,
    ConfigError,
    CorrelationError,
    E2EProfError,
    ObservabilityError,
    SeriesError,
    SimulationError,
    TopologyError,
    TraceError,
)
from repro.obs import (
    DiagnosticEvent,
    EventBus,
    FlightRecorder,
    MetricsRegistry,
    MetricsSample,
    RefreshFrame,
    Span,
    SpanTracer,
    chrome_trace,
    write_chrome_trace,
)
from repro.apps.delta import build_delta
from repro.apps.rubis import build_rubis
from repro.simulation.topology import Topology
from repro.tracing.collector import TraceCollector
from repro.tracing.records import AccessLogRecord, CaptureRecord
from repro.tracing.transport import (
    DataQuality,
    FaultyChannel,
    TransportLink,
    TransportReceiver,
    overall_quality,
)

__version__ = "1.0.0"

__all__ = [
    "AccessLogRecord",
    "AdaptiveController",
    "AnalysisError",
    "BottleneckReport",
    "CaptureRecord",
    "ChangeDetector",
    "ChangeEvent",
    "ConfidenceReport",
    "ConfigError",
    "CorrelationError",
    "CorrelationSeries",
    "DELTA_CONFIG",
    "DataQuality",
    "DensityTimeSeries",
    "DiagnosticEvent",
    "E2EProfEngine",
    "E2EProfError",
    "EventBus",
    "FaultyChannel",
    "FlightRecorder",
    "MetricsRegistry",
    "MetricsSample",
    "ObservabilityError",
    "RefreshFrame",
    "Span",
    "SpanTracer",
    "Pathmap",
    "PathmapConfig",
    "PathmapResult",
    "RUBIS_CONFIG",
    "RunLengthSeries",
    "SeriesError",
    "ServiceEdge",
    "ServiceGraph",
    "ServicePath",
    "SimulationError",
    "SkewEstimate",
    "Spike",
    "Topology",
    "TopologyError",
    "TraceCollector",
    "TraceError",
    "TraceWindow",
    "TrafficStats",
    "TransportConfig",
    "TransportLink",
    "TransportReceiver",
    "autotune_config",
    "build_delta",
    "build_density_series",
    "build_rubis",
    "chrome_trace",
    "compute_service_graphs",
    "cross_correlate",
    "detect_spikes",
    "estimate_clock_skew",
    "find_bottlenecks",
    "overall_quality",
    "rle_decode",
    "rle_encode",
    "timestamp_confidence",
    "window_confidence",
    "write_chrome_trace",
]
