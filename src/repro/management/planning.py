"""Capacity planning and what-if latency prediction (paper Section 3.1).

"Therefore, service path analysis can pinpoint the bottleneck components
in a request path, and it can be used for provisioning, capacity
planning, enforcing SLAs, performance prediction, etc."

Given a measured service graph, the per-node delay attribution directly
supports two planning questions:

* :func:`predict_latency` -- what end-to-end latency results from
  speeding up (or slowing down) selected nodes by given factors?
* :func:`plan_for_target` -- which single node should be upgraded, and by
  how much, to bring a path under a latency target?

The prediction model is the service graph itself: a path's latency is the
sum of its per-hop delays, and scaling a node's computation delay scales
its contribution to every path through it. This is exact for delay-based
faults and first-order for queueing (it ignores utilization feedback,
which is the textbook caveat and is documented on each function).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.core.service_graph import NodeId, ServiceGraph, ServicePath
from repro.errors import AnalysisError


def path_hop_breakdown(path: ServicePath) -> Dict[NodeId, float]:
    """Per-node delay contributions along one path.

    ``hop_delays()[k]`` is the time between the labels of consecutive
    edges, attributed to the node the path entered at step ``k`` (its
    processing plus the next link).
    """
    contributions: Dict[NodeId, float] = {}
    hops = path.hop_delays()
    # hops[k] is attributed to nodes[k] (the node whose processing +
    # outgoing link separates edge k-1 from edge k).
    for node, hop in zip(path.nodes[1:], hops[1:]):
        contributions[node] = contributions.get(node, 0.0) + hop
    return contributions


def predict_latency(
    graph: ServiceGraph,
    speedups: Dict[NodeId, float],
    path: Optional[ServicePath] = None,
) -> float:
    """Predicted end-to-end latency of a path after scaling node delays.

    ``speedups[node] = 2.0`` means the node becomes twice as fast (its
    attributed delay halves). Nodes absent from ``speedups`` keep their
    measured delay. First-order model: no queueing feedback.
    """
    for node, factor in speedups.items():
        if factor <= 0:
            raise AnalysisError(f"speedup for {node!r} must be positive, got {factor}")
    if path is None:
        paths = graph.paths()
        if not paths:
            raise AnalysisError("graph has no paths to predict over")
        path = max(paths, key=lambda p: p.total_delay)
    total = 0.0
    for node, contribution in path_hop_breakdown(path).items():
        factor = speedups.get(node, 1.0)
        total += contribution / factor
    return total


@dataclasses.dataclass(frozen=True)
class UpgradeRecommendation:
    """One candidate upgrade, with its predicted effect."""

    node: NodeId
    speedup: float
    predicted_latency: float
    current_latency: float

    @property
    def improvement(self) -> float:
        return self.current_latency - self.predicted_latency


def plan_for_target(
    graph: ServiceGraph,
    target_latency: float,
    max_speedup: float = 8.0,
    path: Optional[ServicePath] = None,
) -> List[UpgradeRecommendation]:
    """Single-node upgrade options that meet a path latency target.

    For each node on the (slowest) path, computes the smallest speedup
    factor bringing the predicted latency under ``target_latency``, if
    one exists below ``max_speedup``. Results are sorted by required
    speedup (cheapest upgrade first). Empty when no single-node upgrade
    suffices -- the bottleneck is distributed.
    """
    if target_latency <= 0:
        raise AnalysisError(f"target_latency must be positive, got {target_latency}")
    if path is None:
        paths = graph.paths()
        if not paths:
            raise AnalysisError("graph has no paths to plan over")
        path = max(paths, key=lambda p: p.total_delay)
    contributions = path_hop_breakdown(path)
    current = sum(contributions.values())
    if current <= target_latency:
        return []  # already meeting the target

    options: List[UpgradeRecommendation] = []
    for node, contribution in contributions.items():
        others = current - contribution
        if others >= target_latency:
            continue  # even an infinitely fast node would not suffice
        needed = contribution / (target_latency - others)
        if needed <= 1.0 or needed > max_speedup:
            continue
        options.append(
            UpgradeRecommendation(
                node=node,
                speedup=needed,
                predicted_latency=predict_latency(graph, {node: needed}, path),
                current_latency=current,
            )
        )
    return sorted(options, key=lambda rec: rec.speedup)
