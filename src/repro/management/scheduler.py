"""E2EProf-driven automated path selection (paper Section 4.2).

"The server selection algorithm in the web server is modified to route
bidding requests to the lower latency path and comment requests to the
other based on path latency information obtained from E2EProf."

:class:`PathSelector` subscribes to the online engine. Each service class
is pinned to one dispatch path; at every refresh the selector reads each
class's current end-to-end latency off its freshly computed service graph
(the strongest spike of the response edge back to the client -- an
unambiguous per-path signal, since the class currently owns its path) and
swaps the priority class onto the other path whenever that one is
measured faster. This reproduces the Table 1 experiment.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Dict, List, Optional, Sequence

from repro.apps.dispatch import LatencyAwareRouter
from repro.core.engine import E2EProfEngine
from repro.core.pathmap import PathmapResult
from repro.core.service_graph import NodeId, ServiceGraph
from repro.errors import AnalysisError
from repro.obs.events import EVENT_PATH_SELECTION, EventBus

logger = logging.getLogger(__name__)


def path_latency_via(graph: ServiceGraph, through: NodeId) -> Optional[float]:
    """Latency of the path of ``graph``'s class that goes through node
    ``through``: the end-to-end (deepest-edge) delay of the causal path
    containing that node. None when the class never traversed it.

    Note: on windows where a class flowed over *several* paths, causally
    consistent cross-chained paths can inflate this estimate; the
    :class:`PathSelector` therefore prefers response-edge latencies of
    pinned classes instead.
    """
    totals = [
        path.total_delay
        for path in graph.paths()
        if through in path.nodes
    ]
    if not totals:
        return None
    return min(totals)


def response_latency(graph: ServiceGraph) -> Optional[float]:
    """The class's dominant end-to-end latency: the strongest spike on the
    response edge back to the client. None when that edge was not found."""
    best: Optional[float] = None
    best_height = float("-inf")
    for edge in graph.edges:
        if edge.dst != graph.client or edge.src == graph.client:
            continue
        spike = edge.strongest_spike()
        if spike is not None and spike.height > best_height:
            best_height = spike.height
            best = spike.delay
        elif spike is None and edge.delays and best is None:
            best = edge.min_delay
    return best


@dataclasses.dataclass
class SelectionRecord:
    """One selection decision, for audit."""

    time: float
    latencies: Dict[NodeId, float]
    priority_target: NodeId


class PathSelector:
    """Keeps a priority class on the currently fastest dispatch path.

    Parameters
    ----------
    router:
        The web server's :class:`LatencyAwareRouter` to steer.
    priority_class / background_class:
        The class to optimize (bidding) and the class that takes the
        remaining path (comment).
    class_clients:
        Mapping from service class to its client node id (pathmap's
        graphs are keyed by client). Defaults assume the class name IS
        the client id; RUBiS passes ``{"bidding": "C1", "comment": "C2"}``.
    paths:
        Candidate dispatch targets (the two application servers). Defaults
        to the router's target list.
    """

    def __init__(
        self,
        router: LatencyAwareRouter,
        priority_class: str,
        background_class: str,
        class_clients: Optional[Dict[str, NodeId]] = None,
        paths: Optional[Sequence[NodeId]] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        self.router = router
        self.priority_class = priority_class
        self.background_class = background_class
        self.class_clients = class_clients or {
            priority_class: priority_class,
            background_class: background_class,
        }
        self.paths: List[NodeId] = list(paths if paths is not None else router.targets)
        if len(self.paths) < 2:
            raise AnalysisError("path selection needs at least two candidate paths")
        self.event_bus = events
        self.history: List[SelectionRecord] = []

    def attach(self, engine: E2EProfEngine) -> None:
        """Subscribe to the engine, adopting its diagnostic event bus
        when this selector was constructed without one."""
        if self.event_bus is None:
            self.event_bus = engine.events
        engine.subscribe(self.on_refresh)

    # -- the control loop --------------------------------------------------------

    def on_refresh(self, now: float, result: PathmapResult) -> None:
        if self.router.assignment(self.priority_class) is None:
            # Bootstrap: pin each class to one path so subsequent windows
            # carry unambiguous per-path signals.
            self.router.assign(self.priority_class, self.paths[0])
            self.router.assign(self.background_class, self.paths[1])
            return
        latencies = self.current_path_latencies(result)
        if len(latencies) < 2:
            return  # not enough signal to compare paths yet
        fastest = min(latencies, key=latencies.get)
        others = [p for p in self.paths if p != fastest]
        previous = self.router.assignment(self.priority_class)
        self.router.assign(self.priority_class, fastest)
        self.router.assign(self.background_class, others[0])
        self.history.append(SelectionRecord(now, dict(latencies), fastest))
        if previous != fastest:
            logger.debug(
                "path selection at t=%.3f: %s moved %s -> %s",
                now,
                self.priority_class,
                previous,
                fastest,
            )
        if self.event_bus is not None:
            self.event_bus.publish(
                EVENT_PATH_SELECTION,
                now,
                priority_class=self.priority_class,
                target=fastest,
                previous=previous,
                switched=previous != fastest,
                latencies={str(k): v for k, v in latencies.items()},
            )

    def current_path_latencies(self, result: PathmapResult) -> Dict[NodeId, float]:
        """Latency per candidate path, read from the response edge of the
        class currently pinned to that path."""
        latencies: Dict[NodeId, float] = {}
        for service_class in (self.priority_class, self.background_class):
            target = self.router.assignment(service_class)
            if target is None:
                continue
            client = self.class_clients.get(service_class, service_class)
            graphs = [g for (c, _), g in result.graphs.items() if c == client]
            if not graphs:
                continue
            latency = response_latency(graphs[0])
            if latency is not None:
                latencies[target] = latency
        return latencies
