"""Service Level Agreement specification and checking (paper Sections 1, 4.2).

Enterprise workloads carry per-class SLAs ("a bidding request in an online
auction site like RUBiS has real-time deadlines, while a comment posted by
a user has a less stringent deadline"). This module provides the SLA
vocabulary used by the automated path-selection experiment and by
examples: targets on mean or percentile latency per service class, and a
monitor that evaluates measured latencies against them.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.obs.events import EVENT_SLA_VIOLATION, EventBus

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class SLA:
    """A latency target for one service class.

    ``percentile=None`` targets the mean; otherwise the given percentile
    (e.g. 95.0) must stay under ``max_latency``.
    """

    service_class: str
    max_latency: float
    percentile: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_latency <= 0:
            raise ConfigError(f"max_latency must be positive, got {self.max_latency}")
        if self.percentile is not None and not 0 < self.percentile < 100:
            raise ConfigError(
                f"percentile must be in (0, 100), got {self.percentile}"
            )

    def measure(self, latencies: Sequence[float]) -> float:
        """The statistic this SLA constrains, over observed latencies."""
        if not latencies:
            return 0.0
        arr = np.asarray(latencies, dtype=np.float64)
        if self.percentile is None:
            return float(arr.mean())
        return float(np.percentile(arr, self.percentile))

    def is_met(self, latencies: Sequence[float]) -> bool:
        if not latencies:
            return True  # vacuously met; no traffic, no violation
        return self.measure(latencies) <= self.max_latency


@dataclasses.dataclass(frozen=True)
class SLAStatus:
    """Evaluation of one SLA over one measurement window."""

    sla: SLA
    measured: float
    sample_count: int

    @property
    def met(self) -> bool:
        return self.sample_count == 0 or self.measured <= self.sla.max_latency

    @property
    def headroom(self) -> float:
        """Seconds of slack (negative when violating)."""
        return self.sla.max_latency - self.measured


class SLAMonitor:
    """Evaluates a set of SLAs against per-class latency feeds.

    When an :class:`~repro.obs.events.EventBus` is given, every violation
    is also published as an ``EVENT_SLA_VIOLATION`` diagnostic event.
    """

    def __init__(
        self, slas: Iterable[SLA], events: Optional[EventBus] = None
    ) -> None:
        self._slas: Dict[str, SLA] = {}
        for sla in slas:
            if sla.service_class in self._slas:
                raise ConfigError(f"duplicate SLA for class {sla.service_class!r}")
            self._slas[sla.service_class] = sla
        self.event_bus = events
        self._violations: List[SLAStatus] = []

    @property
    def classes(self) -> List[str]:
        return sorted(self._slas)

    def sla_for(self, service_class: str) -> SLA:
        try:
            return self._slas[service_class]
        except KeyError:
            raise ConfigError(f"no SLA for class {service_class!r}") from None

    def evaluate(
        self,
        latencies_by_class: Dict[str, Sequence[float]],
        now: float = 0.0,
    ) -> List[SLAStatus]:
        """Evaluate every SLA; violations are also recorded.

        ``now`` is only used to stamp published diagnostic events.
        """
        statuses = []
        for service_class, sla in sorted(self._slas.items()):
            samples = latencies_by_class.get(service_class, ())
            status = SLAStatus(sla, sla.measure(samples), len(samples))
            statuses.append(status)
            if not status.met:
                self._violations.append(status)
                logger.warning(
                    "SLA violated for class %s: measured %.4fs > target %.4fs "
                    "(%d samples)",
                    service_class,
                    status.measured,
                    sla.max_latency,
                    status.sample_count,
                )
                if self.event_bus is not None:
                    self.event_bus.publish(
                        EVENT_SLA_VIOLATION,
                        now,
                        service_class=service_class,
                        measured=status.measured,
                        target=sla.max_latency,
                        headroom=status.headroom,
                        samples=status.sample_count,
                    )
        return statuses

    def violations(self) -> List[SLAStatus]:
        return list(self._violations)
