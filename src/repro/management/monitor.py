"""End-to-end latency accounting from pathmap output.

Bridges the analysis and management layers: extracts per-class end-to-end
latencies (as the enterprise sees them: front-end arrival to response
dispatch) from service graphs, and windows client-side measurements for
comparison -- the two quantities the paper contrasts in Section 4.1.1
("the latency observed at the client is about 16% more than that obtained
from E2EProf", the difference being the client-side link and stack that
server-side tracing cannot see).
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.pathmap import PathmapResult
from repro.core.service_graph import NodeId, ServiceGraph
from repro.errors import AnalysisError
from repro.obs.events import EVENT_LATENCY, EventBus
from repro.simulation.nodes import ClientNode

logger = logging.getLogger(__name__)


def server_side_latency(graph: ServiceGraph) -> float:
    """The class's end-to-end latency as E2EProf measures it: the
    cumulative delay of the response edge back to the client if it was
    discovered, else the deepest edge of the graph."""
    response_edges = [e for e in graph.edges if e.dst == graph.client and e.src != graph.client]
    if response_edges:
        return max(e.max_delay for e in response_edges)
    return graph.end_to_end_delay()


@dataclasses.dataclass(frozen=True)
class LatencyComparison:
    """Server-side (E2EProf) vs client-perceived latency for one class."""

    service_class: str
    e2eprof_latency: float
    client_latency: float
    samples: int

    @property
    def client_overhead(self) -> float:
        """How much larger the client-perceived latency is, relatively
        (the paper reports ~16% on its testbed)."""
        if self.e2eprof_latency <= 0:
            return 0.0
        return (self.client_latency - self.e2eprof_latency) / self.e2eprof_latency


class LatencyMonitor:
    """Per-refresh record of per-class end-to-end latency.

    When an :class:`~repro.obs.events.EventBus` is given (or adopted from
    the engine in ``subscribe_to``), each reading is also published as an
    ``EVENT_LATENCY`` diagnostic event.
    """

    def __init__(self, events: Optional[EventBus] = None) -> None:
        self.event_bus = events
        self._series: Dict[Tuple[NodeId, NodeId], List[Tuple[float, float]]] = {}

    def record(self, now: float, result: PathmapResult) -> None:
        for class_key, graph in result.graphs.items():
            try:
                latency = server_side_latency(graph)
            except AnalysisError:
                logger.debug(
                    "no end-to-end latency for class %s@%s at t=%.3f",
                    class_key[0],
                    class_key[1],
                    now,
                )
                continue
            self._series.setdefault(class_key, []).append((now, latency))
            if self.event_bus is not None:
                self.event_bus.publish(
                    EVENT_LATENCY,
                    now,
                    service_class=f"{class_key[0]}@{class_key[1]}",
                    latency=latency,
                )

    def subscribe_to(self, engine: "object") -> None:
        """Hook into an :class:`E2EProfEngine`, adopting its event bus
        when this monitor was constructed without one."""
        if self.event_bus is None:
            self.event_bus = getattr(engine, "events", None)
        engine.subscribe(self.record)

    def latency_series(self, class_key: Tuple[NodeId, NodeId]) -> List[Tuple[float, float]]:
        return list(self._series.get(class_key, []))

    def mean_latency(self, class_key: Tuple[NodeId, NodeId], since: float = 0.0) -> float:
        samples = [lat for (t, lat) in self._series.get(class_key, []) if t >= since]
        if not samples:
            return 0.0
        return float(np.mean(samples))


def compare_with_client(
    graph: ServiceGraph, client: ClientNode, since: float = 0.0
) -> LatencyComparison:
    """Build the Section 4.1.1 comparison for one class."""
    client_latencies = client.latencies(since=since)
    return LatencyComparison(
        service_class=client.service_class,
        e2eprof_latency=server_side_latency(graph),
        client_latency=float(np.mean(client_latencies)) if client_latencies else 0.0,
        samples=len(client_latencies),
    )
