"""Online performance management on top of E2EProf analysis."""

from repro.management.planning import (
    UpgradeRecommendation,
    path_hop_breakdown,
    plan_for_target,
    predict_latency,
)
from repro.management.monitor import LatencyComparison, LatencyMonitor, compare_with_client, server_side_latency
from repro.management.scheduler import PathSelector, path_latency_via
from repro.management.sla import SLA, SLAMonitor, SLAStatus
