"""Baseline algorithms from Aguilera et al. (SOSP 2003)."""

from repro.baselines.convolution import ConvolutionAnalyzer
from repro.baselines.nesting import NestingResult, PathPattern, nesting_analysis
