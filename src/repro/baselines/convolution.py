"""The convolution algorithm of Aguilera et al. (SOSP 2003) as a baseline.

"Our pathmap algorithm is similar to the convolution algorithm, in that
both uses time series analysis and can handle non-RPC-style messages.
While the convolution algorithm is primarily intended for offline
analysis, pathmap uses compact trace representations and a series of
optimizations, which jointly, make it suitable for online performance
diagnosis." (paper Section 2)

Differences captured here, mirroring what Figure 9 compares:

* correlation is computed with **FFT over the full lag range** (no
  transaction-delay bound ``T_u``),
* series are **dense** (no burst compression, no RLE),
* analysis is **from scratch** every window (nothing incremental).

The output is the same service-graph structure, so accuracy can be
compared head-to-head with pathmap.
"""

from __future__ import annotations

from typing import Optional

from repro.config import PathmapConfig
from repro.core.correlation import CorrelationSeries, SeriesLike, correlate_fft
from repro.core.pathmap import Pathmap, PathmapResult, TraceWindow


class ConvolutionAnalyzer(Pathmap):
    """Offline convolution-style analysis (FFT, full lag range, dense).

    Parameters
    ----------
    config:
        Shared analysis parameters (tau, omega, spike threshold). The
        ``max_transaction_delay`` bound is ignored by design -- the
        convolution algorithm correlates the full window.
    max_lag:
        Optional lag cap for the *spike search only* (the correlation
        itself is still computed over the full range by the FFT); by
        default the full range is searched.
    """

    def __init__(self, config: PathmapConfig, max_lag: Optional[int] = None) -> None:
        super().__init__(config, method="fft", correlation_provider=self._convolve)
        self._search_lag = max_lag

    def _convolve(
        self,
        reference: SeriesLike,
        signal: SeriesLike,
        ref_key,
        edge_key,
    ) -> CorrelationSeries:
        return correlate_fft(reference, signal, max_lag=self._search_lag)

    def analyze(self, window: TraceWindow) -> PathmapResult:
        """Run the full offline analysis over one window."""
        return super().analyze(window)
