"""The nesting algorithm of Aguilera et al. (SOSP 2003) as a baseline.

"While their nesting algorithm assumes 'RPC-style' (call-returns)
communication, their convolution algorithm is more general..." (paper
Section 2). The nesting algorithm is cheap and per-request exact, but only
works when every message is half of a call/return pair -- which holds for
the request-response flows of the RUBiS simulator, so it makes a good
accuracy cross-check for pathmap there (and fails, as expected, on
unidirectional pipelines like Delta's).

Implementation (following the published algorithm's structure):

1. **Pairing**: a message ``A -> B`` opens a call; the earliest later
   message ``B -> A`` returns it (FIFO per node pair).
2. **Nesting**: a call ``B -> C`` is a child of the call ``A -> B`` whose
   execution interval ``[t_call, t_return]`` most tightly encloses it
   (latest-starting enclosing parent heuristic).
3. **Aggregation**: root calls (from untraced clients) are walked
   depth-first; identical node sequences are merged into path patterns
   with counts and average per-hop latencies.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.tracing.records import CaptureRecord, NodeId


@dataclasses.dataclass
class Call:
    """One matched call/return pair."""

    caller: NodeId
    callee: NodeId
    call_time: float
    return_time: float
    parent: Optional["Call"] = None
    children: List["Call"] = dataclasses.field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.return_time - self.call_time

    def encloses(self, other: "Call") -> bool:
        return self.call_time <= other.call_time and other.return_time <= self.return_time


@dataclasses.dataclass(frozen=True)
class PathPattern:
    """An aggregated causal path: node sequence, frequency, mean delays.

    ``mean_delays[k]`` is the average time from the root call to the call
    into ``nodes[k+1]`` (cumulative, like pathmap's edge labels).
    """

    nodes: Tuple[NodeId, ...]
    count: int
    mean_delays: Tuple[float, ...]

    @property
    def total_delay(self) -> float:
        return self.mean_delays[-1] if self.mean_delays else 0.0


class NestingResult:
    """Aggregated output of the nesting analysis."""

    def __init__(self, patterns: List[PathPattern], calls: int, unmatched: int) -> None:
        self._patterns = sorted(patterns, key=lambda p: -p.count)
        self.total_calls = calls
        self.unmatched_messages = unmatched

    def patterns(self) -> List[PathPattern]:
        return list(self._patterns)

    def pattern_for(self, nodes: Sequence[NodeId]) -> PathPattern:
        wanted = tuple(nodes)
        for pattern in self._patterns:
            if pattern.nodes == wanted:
                return pattern
        raise AnalysisError(f"no path pattern {wanted}")

    def node_sequences(self) -> List[Tuple[NodeId, ...]]:
        return [p.nodes for p in self._patterns]


def _match_calls(messages: List[Tuple[float, NodeId, NodeId]]) -> Tuple[List[Call], int]:
    """FIFO call/return pairing per (caller, callee) node pair."""
    open_calls: Dict[Tuple[NodeId, NodeId], List[Call]] = {}
    calls: List[Call] = []
    unmatched_returns = 0
    for timestamp, src, dst in messages:
        # Does this message return the oldest open call dst -> src?
        pending = open_calls.get((dst, src))
        if pending:
            call = pending.pop(0)
            call.return_time = timestamp
            calls.append(call)
            continue
        # Otherwise it opens a call src -> dst.
        call = Call(caller=src, callee=dst, call_time=timestamp, return_time=np.inf)
        open_calls.setdefault((src, dst), []).append(call)
    still_open = sum(len(v) for v in open_calls.values())
    return calls, still_open + unmatched_returns


def _nest(calls: List[Call]) -> List[Call]:
    """Attach each call to its tightest enclosing parent; return roots."""
    # Candidate parents of a call B -> C are calls X -> B whose interval
    # encloses it; pick the latest-starting one.
    by_callee: Dict[NodeId, List[Call]] = {}
    for call in calls:
        by_callee.setdefault(call.callee, []).append(call)
    for lst in by_callee.values():
        lst.sort(key=lambda c: c.call_time)

    roots: List[Call] = []
    for call in sorted(calls, key=lambda c: c.call_time):
        candidates = by_callee.get(call.caller, [])
        parent: Optional[Call] = None
        for cand in candidates:
            if cand.call_time > call.call_time:
                break
            if cand is not call and cand.encloses(call):
                if parent is None or cand.call_time >= parent.call_time:
                    parent = cand
        if parent is None:
            roots.append(call)
        else:
            call.parent = parent
            parent.children.append(call)
    return roots


def _collect_paths(root: Call) -> List[Tuple[Tuple[NodeId, ...], Tuple[float, ...]]]:
    """All root-to-leaf node sequences with cumulative call delays."""
    results: List[Tuple[Tuple[NodeId, ...], Tuple[float, ...]]] = []

    def walk(call: Call, nodes: Tuple[NodeId, ...], delays: Tuple[float, ...]) -> None:
        if not call.children:
            results.append((nodes, delays))
            return
        for child in sorted(call.children, key=lambda c: c.call_time):
            walk(
                child,
                nodes + (child.callee,),
                delays + (child.call_time - root.call_time,),
            )

    walk(root, (root.caller, root.callee), (0.0,))
    return results


def nesting_analysis(
    records: Iterable[CaptureRecord],
    client_nodes: Optional[Iterable[NodeId]] = None,
) -> NestingResult:
    """Run the nesting algorithm over delivery-side capture records.

    Parameters
    ----------
    records:
        Capture records; only one observation per message should be
        passed (e.g. destination-side), or duplicates will inflate
        counts. They need not be sorted.
    client_nodes:
        When given, only root calls originating at these nodes are
        aggregated (matching pathmap's per-client service graphs).
    """
    messages = sorted(
        {(r.timestamp, r.src, r.dst) for r in records},
    )
    calls, unmatched = _match_calls(messages)
    roots = _nest(calls)
    clients = set(client_nodes) if client_nodes is not None else None

    # Aggregate identical node sequences.
    sums: Dict[Tuple[NodeId, ...], List] = {}
    for root in roots:
        if clients is not None and root.caller not in clients:
            continue
        for nodes, delays in _collect_paths(root):
            entry = sums.get(nodes)
            if entry is None:
                sums[nodes] = [1, list(delays)]
            else:
                entry[0] += 1
                for i, d in enumerate(delays):
                    entry[1][i] += d

    patterns = [
        PathPattern(
            nodes=nodes,
            count=count,
            mean_delays=tuple(total / count for total in totals),
        )
        for nodes, (count, totals) in sums.items()
    ]
    return NestingResult(patterns, calls=len(calls), unmatched=unmatched)
