"""repro.obs -- self-observability for the analyzer (metrics, spans, events).

The paper's core claim is that the pathmap analyzer is cheap enough to run
*online* (the flat 'incremental' curve of Figure 9, Section 3.7). This
package lets the reproduction **prove that about itself, continuously**: a
dependency-free metrics registry (counters, gauges, fixed-bucket
histograms, ``perf_counter`` timers) that the engine, correlators, wire
codec, collector and tracers report into.

Key properties:

* **Off by default.** Every instrumented component defaults to a disabled
  registry; a disabled instrument mutation is one attribute check. The
  overhead-guard test pins the disabled path at well under 5% of engine
  refresh time.
* **Exact under threads.** Enabled instruments take a per-instrument lock,
  so concurrent updates never lose increments.
* **Three expositions.** ``registry.snapshot()`` (JSON-able),
  ``registry.to_prometheus()`` (text format 0.0.4), and per-refresh
  :class:`MetricsSample` objects pushed to engine subscribers.

Beyond aggregates, the package also provides the *causal* layer (PR 2):
:class:`SpanTracer` (nested, monotonic per-stage spans; same off-by-default
contract), :class:`EventBus` (typed :class:`DiagnosticEvent` records --
changes, anomalies, SLA violations, scheduler decisions -- attached to the
span that raised them), :class:`FlightRecorder` (a bounded ring of the last
N refreshes' spans+events, always recording), and :func:`chrome_trace`
(Perfetto/``chrome://tracing``-loadable export).

See ``docs/OBSERVABILITY.md`` for the catalogue and wiring recipes, and
the ``repro stats`` / ``repro timeline`` CLI subcommands for one-shot
expositions.
"""

from repro.obs.events import (
    EVENT_ANOMALY,
    EVENT_CHANGE,
    EVENT_LATENCY,
    EVENT_PATH_SELECTION,
    EVENT_SLA_VIOLATION,
    EVENT_SUBSCRIBER_ERROR,
    EVENT_TRACER_STALE,
    EVENT_TRANSPORT_GAP,
    EVENT_DEGRADED_REFRESH,
    EVENT_LOW_CONFIDENCE,
    EVENT_REWINDOW,
    EVENT_SLO_BURN,
    EVENT_PERF_REGRESSION,
    DiagnosticEvent,
    EventBus,
)
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.obs.exposition import snapshot, to_prometheus
from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder, RefreshFrame
from repro.obs.instruments import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_STAGE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Timer,
    exponential_buckets,
)
from repro.obs.ledger import (
    CORRELATION_KERNELS,
    KERNEL_LEGACY,
    KERNEL_RLE,
    KERNEL_SPARSE_BATCH,
    PIPELINE_STAGES,
    STAGE_CORRELATE,
    STAGE_DFS,
    STAGE_INGEST,
    STAGE_PUBLISH,
    Ewma,
    KernelSample,
    LedgerRecorder,
    RefreshLedger,
    StageSample,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.sample import MetricsSample
from repro.obs.slo import (
    RegressionWatch,
    SLOMonitor,
    StageObjective,
    default_objectives,
    ingest_baseline,
    load_baselines,
    refresh_baseline,
)
from repro.obs.spans import NULL_TRACER, Span, SpanTracer

__all__ = [
    "CORRELATION_KERNELS",
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_FLIGHT_CAPACITY",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_STAGE_BUCKETS",
    "DiagnosticEvent",
    "EVENT_ANOMALY",
    "EVENT_CHANGE",
    "EVENT_LATENCY",
    "EVENT_PATH_SELECTION",
    "EVENT_PERF_REGRESSION",
    "EVENT_SLA_VIOLATION",
    "EVENT_SLO_BURN",
    "EVENT_SUBSCRIBER_ERROR",
    "EVENT_TRACER_STALE",
    "EVENT_TRANSPORT_GAP",
    "EVENT_DEGRADED_REFRESH",
    "EVENT_LOW_CONFIDENCE",
    "EVENT_REWINDOW",
    "EventBus",
    "Ewma",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "KERNEL_LEGACY",
    "KERNEL_RLE",
    "KERNEL_SPARSE_BATCH",
    "KernelSample",
    "LedgerRecorder",
    "MetricsRegistry",
    "MetricsSample",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "PIPELINE_STAGES",
    "RefreshFrame",
    "RefreshLedger",
    "RegressionWatch",
    "SLOMonitor",
    "STAGE_CORRELATE",
    "STAGE_DFS",
    "STAGE_INGEST",
    "STAGE_PUBLISH",
    "Span",
    "SpanTracer",
    "StageObjective",
    "StageSample",
    "Timer",
    "chrome_trace",
    "default_objectives",
    "exponential_buckets",
    "ingest_baseline",
    "load_baselines",
    "refresh_baseline",
    "snapshot",
    "to_prometheus",
    "write_chrome_trace",
]
