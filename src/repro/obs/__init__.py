"""repro.obs -- self-observability for the analyzer (metrics + profiling).

The paper's core claim is that the pathmap analyzer is cheap enough to run
*online* (the flat 'incremental' curve of Figure 9, Section 3.7). This
package lets the reproduction **prove that about itself, continuously**: a
dependency-free metrics registry (counters, gauges, fixed-bucket
histograms, ``perf_counter`` timers) that the engine, correlators, wire
codec, collector and tracers report into.

Key properties:

* **Off by default.** Every instrumented component defaults to a disabled
  registry; a disabled instrument mutation is one attribute check. The
  overhead-guard test pins the disabled path at well under 5% of engine
  refresh time.
* **Exact under threads.** Enabled instruments take a per-instrument lock,
  so concurrent updates never lose increments.
* **Three expositions.** ``registry.snapshot()`` (JSON-able),
  ``registry.to_prometheus()`` (text format 0.0.4), and per-refresh
  :class:`MetricsSample` objects pushed to engine subscribers.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and wiring recipes,
and the ``repro stats`` CLI subcommand for a one-shot exposition.
"""

from repro.obs.exposition import snapshot, to_prometheus
from repro.obs.instruments import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Timer,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.sample import MetricsSample

__all__ = [
    "Counter",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSample",
    "NULL_REGISTRY",
    "Timer",
    "snapshot",
    "to_prometheus",
]
