"""Export flight-record dumps as Chrome trace-event JSON.

The Trace Event Format is the lingua franca of timeline viewers: a JSON
document with a ``traceEvents`` list that ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev) load directly. This module converts a
flight-record dump (``engine.dump_flight_record()`` or
:meth:`repro.obs.flight.FlightRecorder.dump`) into that format:

* every span becomes a complete event (``ph: "X"``) with microsecond
  ``ts``/``dur`` normalized to the dump's earliest span;
* every diagnostic event becomes an instant event (``ph: "i"``) on the
  thread of the span it was attached to;
* every frame's refresh ledger becomes counter events (``ph: "C"``) --
  per-stage milliseconds, per-kernel rows, and skip/cache counts render
  as counter tracks above the span lanes;
* thread ids are compacted and named so the viewer shows stable lanes.

The export is pure data-in/data-out: it works on a freshly dumped dict or
on one reloaded from a stored JSON file (``repro timeline`` replay mode).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

_PROCESS_NAME = "repro analysis pipeline"


def _span_category(name: str) -> str:
    """Trace-viewer category: the component prefix of the span name."""
    return name.split(".", 1)[0] if "." in name else name


def chrome_trace(dump: dict) -> dict:
    """Convert a flight-record dump into a Chrome trace-event document.

    ``dump`` is the JSON-able dict produced by
    :meth:`~repro.obs.flight.FlightRecorder.dump` (possibly reloaded from
    disk). Frames without spans still contribute their events, anchored
    to the events' own monotonic stamps.
    """
    frames = dump.get("frames", [])
    spans: List[dict] = [s for f in frames for s in f.get("spans", [])]
    events: List[dict] = [e for f in frames for e in f.get("events", [])]

    anchors = [s["start"] for s in spans] + [e["monotonic"] for e in events]
    t0 = min(anchors) if anchors else 0.0

    def us(stamp: float) -> float:
        return (stamp - t0) * 1e6

    # Compact raw thread idents into small, stable tids.
    tids: Dict[int, int] = {}

    def tid_of(raw: Optional[int]) -> int:
        if raw is None:
            return 0
        return tids.setdefault(raw, len(tids) + 1)

    span_threads = {s["span_id"]: s["thread_id"] for s in spans}

    trace_events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": _PROCESS_NAME},
        }
    ]
    for span in spans:
        end = span["end"] if span["end"] is not None else span["start"]
        args = dict(span.get("attributes", {}))
        if span.get("error"):
            args["error"] = span["error"]
        trace_events.append(
            {
                "name": span["name"],
                "cat": _span_category(span["name"]),
                "ph": "X",
                "ts": us(span["start"]),
                "dur": max(0.0, us(end) - us(span["start"])),
                "pid": 1,
                "tid": tid_of(span["thread_id"]),
                "args": args,
            }
        )
    for event in events:
        raw_thread = span_threads.get(event.get("span_id"))
        trace_events.append(
            {
                "name": event["kind"],
                "cat": "events",
                "ph": "i",
                "ts": us(event["monotonic"]),
                "pid": 1,
                "tid": tid_of(raw_thread),
                "s": "t" if raw_thread is not None else "p",
                "args": {"time": event["time"], **event.get("attributes", {})},
            }
        )
    for frame in frames:
        ledger = frame.get("ledger") or {}
        if not ledger:
            continue
        frame_spans = frame.get("spans", [])
        frame_events = frame.get("events", [])
        frame_anchors = [s["start"] for s in frame_spans] + [
            e["monotonic"] for e in frame_events
        ]
        if not frame_anchors:
            continue  # nothing to anchor the counter sample to
        ts = us(min(frame_anchors))
        stages = ledger.get("stages", {})
        if stages:
            trace_events.append(
                {
                    "name": "ledger stage ms",
                    "cat": "ledger",
                    "ph": "C",
                    "ts": ts,
                    "pid": 1,
                    "tid": 0,
                    "args": {
                        name: stages[name].get("seconds", 0.0) * 1e3
                        for name in sorted(stages)
                    },
                }
            )
        kernels = ledger.get("kernels", {})
        if kernels:
            trace_events.append(
                {
                    "name": "ledger kernel rows",
                    "cat": "ledger",
                    "ph": "C",
                    "ts": ts,
                    "pid": 1,
                    "tid": 0,
                    "args": {
                        name: kernels[name].get("rows", 0)
                        for name in sorted(kernels)
                    },
                }
            )
        trace_events.append(
            {
                "name": "ledger skip/cache",
                "cat": "ledger",
                "ph": "C",
                "ts": ts,
                "pid": 1,
                "tid": 0,
                "args": {
                    "cache_hits": ledger.get("cache_hits", 0),
                    "skips": ledger.get("skips", 0),
                },
            }
        )
    for raw, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": f"analysis-{tid}"},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(dump: dict, path: str) -> int:
    """Render ``dump`` as Chrome trace JSON at ``path``.

    Returns the number of trace events written.
    """
    doc = chrome_trace(dump)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")
    return len(doc["traceEvents"])
