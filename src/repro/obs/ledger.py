"""The refresh cost ledger: measured per-stage / per-kernel accounting.

The paper's Figure 9 argument is that incremental analysis cost stays
flat and predictable online. The ledger is how the reproduction *keeps
proving that while it runs*: every engine refresh produces one
:class:`RefreshLedger` -- wall time and work volume for each explicit
pipeline stage (ingest -> correlate -> dfs -> publish) and, per
correlation kernel (sparse batch / RLE pair / legacy per-pair append),
rows processed, estimated bytes touched, and measured ns/row.

Unlike the metrics registry (off by default) the ledger is **always on**:
it adds a handful of ``perf_counter`` calls per refresh, not per row, so
the overhead-guard benchmark pins it at well under 5% of refresh cost.
Its continuous EWMAs of measured kernel cost feed back into the density
dispatch model (``PathmapConfig.measured_dispatch``), replacing the
modeled sparse-vs-RLE cost constant with observed hardware behavior --
the ROADMAP's "measured, not modeled, costs" item.

Ledgers are attached to every :class:`~repro.core.pathmap.PathmapResult`
(``result.ledger``), recorded into flight-recorder frames, exported as
counter tracks in the Perfetto timeline, rendered live by ``repro top``
and dumped by ``repro profile --json``.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Pipeline stage names, in execution order. These formalize the stage
#: boundaries the ROADMAP sharding item needs: block pull from tracers,
#: correlator store/patch/append, pathmap DFS, and result fan-out.
STAGE_INGEST = "ingest"
STAGE_CORRELATE = "correlate"
STAGE_DFS = "dfs"
STAGE_PUBLISH = "publish"

#: Optional stage: trace-lake write-behind spill (segment cuts, summary
#: persistence, manifest checkpoints). Not part of
#: :data:`PIPELINE_STAGES` -- it only appears in ledgers of engines with
#: a lake attached (``record_stage`` creates unknown stages on demand).
STAGE_SPILL = "spill"

#: All pipeline stages, in order.
PIPELINE_STAGES = (STAGE_INGEST, STAGE_CORRELATE, STAGE_DFS, STAGE_PUBLISH)

#: Correlation kernel names: the grouped sparse batch kernel, the
#: run-length pair-product kernel, the dense-regime batched FFT kernel
#: (cached spectra + one 2-D inverse transform per group), and the
#: legacy per-pair correlator append path (non-batched engines, and
#: quiet/mismatched group members).
KERNEL_SPARSE_BATCH = "sparse_batch"
KERNEL_RLE = "rle"
KERNEL_FFT_BATCH = "fft_batch"
KERNEL_LEGACY = "legacy_pair"

#: All correlation kernels a refresh can dispatch rows to.
CORRELATION_KERNELS = (KERNEL_SPARSE_BATCH, KERNEL_RLE, KERNEL_FFT_BATCH, KERNEL_LEGACY)

#: Default smoothing factor for kernel cost EWMAs: heavy enough to adapt
#: within ~10 refreshes, light enough to ride out one noisy measurement.
DEFAULT_EWMA_ALPHA = 0.2

#: Default bound on retained per-refresh ledgers (for ``repro top`` /
#: ``repro profile``); a ledger is a few hundred bytes, so this is small.
DEFAULT_LEDGER_HISTORY = 256


@dataclasses.dataclass
class StageSample:
    """Wall time and work volume of one pipeline stage in one refresh.

    Attributes
    ----------
    seconds:
        Wall-clock time spent in the stage this refresh.
    items:
        Work volume in stage-specific units (see ``unit``).
    unit:
        What ``items`` counts: ``blocks`` (ingest), ``blocks``
        (correlate), ``correlations`` (dfs), ``subscribers`` (publish).
    """

    seconds: float = 0.0
    items: int = 0
    unit: str = ""

    def to_dict(self) -> dict:
        return {"items": self.items, "seconds": self.seconds, "unit": self.unit}

    @classmethod
    def from_dict(cls, doc: dict) -> "StageSample":
        return cls(
            seconds=float(doc.get("seconds", 0.0)),
            items=int(doc.get("items", 0)),
            unit=str(doc.get("unit", "")),
        )


@dataclasses.dataclass
class KernelSample:
    """Measured cost of one correlation kernel in one refresh.

    Attributes
    ----------
    rows:
        Rows the kernel processed this refresh (correlation pairs for the
        sparse/RLE kernels; correlator appends for the legacy path).
    seconds:
        Wall-clock time in the kernel this refresh.
    work_units:
        Dispatch cost units attributed to the kernel this refresh (the
        quantities the density dispatch model compares; 0 for legacy).
    bytes_touched:
        Estimated bytes of series data read by the kernel this refresh
        (16 B/nonzero for sparse series, 24 B/run for RLE series).
    ns_per_row:
        Measured nanoseconds per row *this refresh*, or None when the
        kernel processed no rows.
    ns_per_row_ewma:
        The recorder's running EWMA of ns/row at stamp time (None until
        the kernel has processed at least one row in the engine's life).
    """

    rows: int = 0
    seconds: float = 0.0
    work_units: float = 0.0
    bytes_touched: int = 0
    ns_per_row: Optional[float] = None
    ns_per_row_ewma: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "bytes_touched": self.bytes_touched,
            "ns_per_row": self.ns_per_row,
            "ns_per_row_ewma": self.ns_per_row_ewma,
            "rows": self.rows,
            "seconds": self.seconds,
            "work_units": self.work_units,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "KernelSample":
        ns = doc.get("ns_per_row")
        ewma = doc.get("ns_per_row_ewma")
        return cls(
            rows=int(doc.get("rows", 0)),
            seconds=float(doc.get("seconds", 0.0)),
            work_units=float(doc.get("work_units", 0.0)),
            bytes_touched=int(doc.get("bytes_touched", 0)),
            ns_per_row=None if ns is None else float(ns),
            ns_per_row_ewma=None if ewma is None else float(ewma),
        )


@dataclasses.dataclass
class ShardSample:
    """Per-shard stage timings of one process-sharded refresh.

    Attributes
    ----------
    correlate_seconds:
        Wall-clock time the shard's worker spent storing/patching blocks
        and appending to its owned correlators this refresh.
    dfs_seconds:
        Wall-clock time the worker spent in the pathmap DFS over its
        owned service classes.
    classes:
        Service classes (``(client, root)`` pairs) the shard owned.
    correlators:
        Live incremental correlators held by the shard after the refresh.
    """

    correlate_seconds: float = 0.0
    dfs_seconds: float = 0.0
    classes: int = 0
    correlators: int = 0

    def to_dict(self) -> dict:
        return {
            "classes": self.classes,
            "correlate_seconds": self.correlate_seconds,
            "correlators": self.correlators,
            "dfs_seconds": self.dfs_seconds,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ShardSample":
        return cls(
            correlate_seconds=float(doc.get("correlate_seconds", 0.0)),
            dfs_seconds=float(doc.get("dfs_seconds", 0.0)),
            classes=int(doc.get("classes", 0)),
            correlators=int(doc.get("correlators", 0)),
        )


@dataclasses.dataclass
class RefreshLedger:
    """The full cost accounting of one engine refresh.

    Attributes
    ----------
    time:
        Analysis time of the refresh (the ``now`` passed to ``refresh``).
    sequence:
        Monotonic refresh index within the producing engine.
    refresh_seconds:
        Wall-clock cost of the refresh work (ingest + correlate + dfs;
        the Figure 9 quantity -- publish is accounted separately because
        subscriber fan-out happens after the result exists).
    stages:
        Stage name -> :class:`StageSample`, always containing all four
        :data:`PIPELINE_STAGES`. When a subscriber reads the ledger off a
        just-published result, the ``publish`` stage is still 0 -- it is
        filled in-place once fan-out completes (the flight-recorder frame
        and history copies see the final value).
    kernels:
        Kernel name -> :class:`KernelSample`, always containing all three
        :data:`CORRELATION_KERNELS` (zero rows when a kernel was idle).
    shards:
        Shard id (as a string) -> :class:`ShardSample` per-worker stage
        timings; empty unless the refresh ran ``parallel="processes"``.
    skips:
        Pair products skipped this refresh because a block was quiet.
    cache_hits:
        Correlator cache hits this refresh (existing incremental
        correlator re-served instead of rebuilt).
    """

    time: float
    sequence: int
    refresh_seconds: float = 0.0
    stages: Dict[str, StageSample] = dataclasses.field(default_factory=dict)
    kernels: Dict[str, KernelSample] = dataclasses.field(default_factory=dict)
    shards: Dict[str, ShardSample] = dataclasses.field(default_factory=dict)
    skips: int = 0
    cache_hits: int = 0

    def stage(self, name: str) -> StageSample:
        """The named stage's sample (a zero sample when absent)."""
        return self.stages.get(name) or StageSample()

    def kernel(self, name: str) -> KernelSample:
        """The named kernel's sample (a zero sample when absent)."""
        return self.kernels.get(name) or KernelSample()

    def shard(self, shard_id: int) -> ShardSample:
        """The named shard's sample (a zero sample when absent)."""
        return self.shards.get(str(shard_id)) or ShardSample()

    def stage_seconds(self, name: str) -> float:
        return self.stage(name).seconds

    def to_dict(self) -> dict:
        """Deterministically key-ordered, JSON-able form of the ledger."""
        return {
            "cache_hits": self.cache_hits,
            "kernels": {
                name: self.kernels[name].to_dict()
                for name in sorted(self.kernels)
            },
            "refresh_seconds": self.refresh_seconds,
            "sequence": self.sequence,
            "shards": {
                name: self.shards[name].to_dict()
                for name in sorted(self.shards)
            },
            "skips": self.skips,
            "stages": {
                name: self.stages[name].to_dict()
                for name in sorted(self.stages)
            },
            "time": self.time,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "RefreshLedger":
        """Rebuild a ledger from :meth:`to_dict` output (JSON round-trip)."""
        return cls(
            time=float(doc.get("time", 0.0)),
            sequence=int(doc.get("sequence", 0)),
            refresh_seconds=float(doc.get("refresh_seconds", 0.0)),
            stages={
                str(name): StageSample.from_dict(sample)
                for name, sample in doc.get("stages", {}).items()
            },
            kernels={
                str(name): KernelSample.from_dict(sample)
                for name, sample in doc.get("kernels", {}).items()
            },
            shards={
                str(name): ShardSample.from_dict(sample)
                for name, sample in doc.get("shards", {}).items()
            },
            skips=int(doc.get("skips", 0)),
            cache_hits=int(doc.get("cache_hits", 0)),
        )


class Ewma:
    """An exponentially weighted moving average over positive samples."""

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha: float = DEFAULT_EWMA_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            from repro.errors import ObservabilityError

            raise ObservabilityError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.value: Optional[float] = None
        self.samples = 0

    def update(self, sample: float) -> float:
        """Fold one sample in and return the new average."""
        sample = float(sample)
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        self.samples += 1
        return self.value


class LedgerRecorder:
    """Builds one :class:`RefreshLedger` per refresh and keeps the EWMAs.

    The engine owns one recorder for its lifetime. Per refresh the flow is
    ``begin_refresh`` -> ``record_stage`` / ``record_kernel`` (kernel
    records may arrive from pool threads; they take a lock) ->
    ``complete``, which stamps the ledger, folds kernel measurements into
    the persistent EWMAs and appends to a bounded history.

    ``enabled=False`` turns every call into a cheap no-op (``complete``
    still returns a stage/kernel-complete zero ledger so downstream
    consumers never see a partial one) -- used by the overhead benchmark
    to price the always-on default.
    """

    def __init__(
        self,
        enabled: bool = True,
        alpha: float = DEFAULT_EWMA_ALPHA,
        history: int = DEFAULT_LEDGER_HISTORY,
    ) -> None:
        self.enabled = bool(enabled)
        self.alpha = float(alpha)
        self._lock = threading.Lock()
        self._history: Deque[RefreshLedger] = deque(maxlen=max(1, int(history)))
        self._row_ewma: Dict[str, Ewma] = {k: Ewma(alpha) for k in CORRELATION_KERNELS}
        self._unit_ewma: Dict[str, Ewma] = {k: Ewma(alpha) for k in CORRELATION_KERNELS}
        self._stages: Dict[str, StageSample] = {}
        self._kernels: Dict[str, List[float]] = {}
        self._begin_fresh_tallies()

    def _begin_fresh_tallies(self) -> None:
        self._stages = {name: StageSample(unit=_STAGE_UNITS[name])
                        for name in PIPELINE_STAGES}
        # rows, seconds, work_units, bytes_touched
        self._kernels = {name: [0, 0.0, 0.0, 0] for name in CORRELATION_KERNELS}
        self._shards: Dict[str, ShardSample] = {}

    # -- per-refresh recording -------------------------------------------------

    def begin_refresh(self) -> None:
        """Reset the per-refresh tallies (call at the top of a refresh)."""
        if not self.enabled:
            return
        self._begin_fresh_tallies()

    def record_stage(self, stage: str, seconds: float, items: int = 0) -> None:
        """Add wall time and work volume to a pipeline stage.

        Additive, so a stage split across code regions (e.g. publish =
        annotation + two fan-out loops) accumulates into one sample.
        """
        if not self.enabled:
            return
        sample = self._stages.get(stage)
        if sample is None:
            sample = self._stages[stage] = StageSample(unit=_STAGE_UNITS.get(stage, ""))
        sample.seconds += seconds
        sample.items += items

    def record_kernel(
        self,
        kernel: str,
        rows: int,
        seconds: float,
        work_units: float = 0.0,
        bytes_touched: int = 0,
    ) -> None:
        """Add one kernel invocation's cost. Safe from pool threads."""
        if not self.enabled:
            return
        with self._lock:
            tally = self._kernels.get(kernel)
            if tally is None:
                tally = self._kernels[kernel] = [0, 0.0, 0.0, 0]
            tally[0] += rows
            tally[1] += seconds
            tally[2] += work_units
            tally[3] += bytes_touched

    def record_shard(
        self,
        shard: int,
        correlate_seconds: float,
        dfs_seconds: float,
        classes: int = 0,
        correlators: int = 0,
    ) -> None:
        """Record one shard worker's stage timings for this refresh."""
        if not self.enabled:
            return
        self._shards[str(int(shard))] = ShardSample(
            correlate_seconds=float(correlate_seconds),
            dfs_seconds=float(dfs_seconds),
            classes=int(classes),
            correlators=int(correlators),
        )

    def kernel_tallies(self) -> Dict[str, Tuple[int, float, float, int]]:
        """Copy of the current refresh's per-kernel tallies as
        ``{kernel: (rows, seconds, work_units, bytes_touched)}``.

        Shard workers use this to ship their kernel accounting back to
        the parent recorder (replayed there via :meth:`record_kernel`).
        """
        with self._lock:
            return {
                name: (tally[0], tally[1], tally[2], tally[3])
                for name, tally in self._kernels.items()
            }

    def complete(
        self,
        time_: float,
        sequence: int,
        refresh_seconds: float,
        skips: int = 0,
        cache_hits: int = 0,
    ) -> RefreshLedger:
        """Stamp this refresh's ledger, update EWMAs, append to history.

        Kernel EWMAs fold in only refreshes where the kernel actually
        processed rows, so idle refreshes never dilute the cost model.
        """
        kernels: Dict[str, KernelSample] = {}
        if self.enabled:
            for name, (rows, seconds, units, nbytes) in self._kernels.items():
                ns_per_row = (seconds * 1e9 / rows) if rows > 0 else None
                row_ewma = self._row_ewma.setdefault(name, Ewma(self.alpha))
                unit_ewma = self._unit_ewma.setdefault(name, Ewma(self.alpha))
                if ns_per_row is not None:
                    row_ewma.update(ns_per_row)
                    if units > 0:
                        unit_ewma.update(seconds * 1e9 / units)
                kernels[name] = KernelSample(
                    rows=rows,
                    seconds=seconds,
                    work_units=units,
                    bytes_touched=nbytes,
                    ns_per_row=ns_per_row,
                    ns_per_row_ewma=row_ewma.value,
                )
            stages = self._stages
            shards = self._shards
        else:
            kernels = {name: KernelSample() for name in CORRELATION_KERNELS}
            stages = {name: StageSample(unit=_STAGE_UNITS[name])
                      for name in PIPELINE_STAGES}
            shards = {}
        ledger = RefreshLedger(
            time=float(time_),
            sequence=int(sequence),
            refresh_seconds=float(refresh_seconds),
            stages=stages,
            kernels=kernels,
            shards=shards,
            skips=int(skips),
            cache_hits=int(cache_hits),
        )
        if self.enabled:
            with self._lock:
                self._history.append(ledger)
        return ledger

    # -- cost model feed -------------------------------------------------------

    def ns_per_row(self, kernel: str) -> Optional[float]:
        """EWMA of measured ns/row for a kernel (None until warmed)."""
        ewma = self._row_ewma.get(kernel)
        return ewma.value if ewma is not None else None

    def ns_per_unit(self, kernel: str) -> Optional[float]:
        """EWMA of measured ns per dispatch cost unit (None until warmed).

        This is what ``measured_dispatch`` compares: predicted kernel
        time = dispatch units x measured ns/unit.
        """
        ewma = self._unit_ewma.get(kernel)
        return ewma.value if ewma is not None else None

    # -- history / export ------------------------------------------------------

    @property
    def latest(self) -> Optional[RefreshLedger]:
        with self._lock:
            return self._history[-1] if self._history else None

    def history(self, last: Optional[int] = None) -> List[RefreshLedger]:
        """Retained ledgers, oldest first (optionally only the last N)."""
        with self._lock:
            out = list(self._history)
        if last is not None and last >= 0:
            out = out[len(out) - min(last, len(out)):]
        return out

    def ewma_snapshot(self) -> dict:
        """Deterministically key-ordered dict of the per-kernel EWMAs."""
        return {
            kernel: {
                "ns_per_row": self._row_ewma[kernel].value,
                "ns_per_unit": self._unit_ewma[kernel].value,
                "samples": self._row_ewma[kernel].samples,
            }
            for kernel in sorted(self._row_ewma)
        }

    def export(self, last: Optional[int] = None) -> dict:
        """JSON-able ledger export: EWMAs plus the retained history.

        This is the ``repro profile --json`` document body; keys are
        deterministically ordered so CI artifact diffs stay stable.
        """
        return {
            "ewma": self.ewma_snapshot(),
            "ledgers": [ledger.to_dict() for ledger in self.history(last)],
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._history)


#: Work-volume units per stage (what StageSample.items counts).
_STAGE_UNITS = {
    STAGE_INGEST: "blocks",
    STAGE_CORRELATE: "blocks",
    STAGE_DFS: "correlations",
    STAGE_PUBLISH: "subscribers",
    STAGE_SPILL: "segments",
}
