"""Span tracing: causal, nested timing records for the analysis pipeline.

PR 1's metrics answer "how much, in aggregate"; spans answer "*which*
refresh, stage, edge or subscriber, and in what order". A
:class:`SpanTracer` produces :class:`Span` records -- named, monotonic
``perf_counter`` intervals with parent/child nesting, per-span attributes
and attached :class:`~repro.obs.events.DiagnosticEvent`\\ s -- the same
per-request timeline primitive YTrace-style systems use to make
performance diagnosis actionable.

The tracer obeys the same contract as the metrics registry:

* **Off by default, near-zero when off.** A disabled tracer's
  :meth:`SpanTracer.span` returns a shared no-op context manager after a
  single attribute check -- no allocation, no lock. The overhead guard in
  ``tests/test_performance_guard.py`` pins the disabled path below 5% of
  engine refresh time.
* **Thread-safe when on.** The active-span stack is thread-local (each
  worker thread nests independently; spans record their thread id), and
  finished spans are appended under a lock.

Usage::

    tracer = SpanTracer(enabled=True)
    with tracer.span("engine.refresh", refresh=3):
        with tracer.span("pathmap", classes=2):
            ...
    finished = tracer.drain()     # list[Span], innermost finished first
    [s.to_dict() for s in finished]   # JSON-able
"""

from __future__ import annotations

import logging
import threading
import time
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import DiagnosticEvent

logger = logging.getLogger(__name__)


class Span:
    """One named, timed interval in the pipeline.

    Timestamps are ``time.perf_counter()`` values: monotonic, comparable
    across spans of one process, unrelated to the simulation clock.
    ``duration`` is only meaningful once the span has finished.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "thread_id",
        "start",
        "end",
        "attributes",
        "events",
        "error",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        thread_id: int,
        start: float,
        attributes: Dict[str, object],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes = attributes
        self.events: List["DiagnosticEvent"] = []
        #: ``"ExcType: message"`` when the traced block raised, else None.
        self.error: Optional[str] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def add_event(self, event: "DiagnosticEvent") -> None:
        self.events.append(event)

    def to_dict(self) -> dict:
        """JSON-able form (events serialized via their own ``to_dict``)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "events": [e.to_dict() for e in self.events],
            "error": self.error,
        }

    def __repr__(self) -> str:
        state = f"{self.duration * 1e3:.2f}ms" if self.end is not None else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled.

    Implements the full Span surface so instrumented code never branches:
    ``with tracer.span(...) as s: s.set_attribute(...)`` is valid either
    way. Stateless, hence safe to share and re-enter from any thread.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def add_event(self, event: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that opens a :class:`Span` on enter and files it
    with the tracer on exit (exceptions are recorded, never swallowed)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        if exc_type is not None:
            self._span.error = f"{getattr(exc_type, '__name__', exc_type)}: {exc}"
            logger.debug(
                "span %s failed: %s", self._span.name, self._span.error
            )
        self._tracer._finish(self._span)
        return False


class SpanTracer:
    """Factory and collector of :class:`Span` records.

    Parameters
    ----------
    enabled:
        Whether :meth:`span` records anything. Defaults to **False** (the
        analyzer must not tax the hot path it observes); disabled calls
        return :data:`NULL_SPAN` after one attribute check.
    max_finished:
        Bound on retained finished spans. When an instrumented run is
        never drained (e.g. tracing left on without a flight recorder),
        the oldest spans are discarded rather than growing without bound.
    """

    def __init__(self, enabled: bool = False, max_finished: int = 100_000) -> None:
        self.enabled = bool(enabled)
        self.max_finished = int(max_finished)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1
        self._finished: List[Span] = []
        self._dropped = 0

    # -- switch ----------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- span lifecycle --------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attributes: object) -> "_SpanContext | _NullSpan":
        """Open a child of the current span (or a root span).

        Returns a context manager yielding the :class:`Span`; when the
        tracer is disabled, returns the shared no-op :data:`NULL_SPAN`.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        span = Span(
            name,
            span_id,
            parent_id,
            threading.get_ident(),
            time.perf_counter(),
            dict(attributes),
        )
        stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        stack = self._stack()
        # The finished span is normally the top of this thread's stack;
        # tolerate (and log) mis-nesting instead of corrupting the stack.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - defensive
            logger.warning("span %r closed out of order", span.name)
            stack.remove(span)
        with self._lock:
            self._finished.append(span)
            if len(self._finished) > self.max_finished:
                overflow = len(self._finished) - self.max_finished
                del self._finished[:overflow]
                self._dropped += overflow

    # -- queries ----------------------------------------------------------------

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the calling thread, if any."""
        if not self.enabled:
            return None
        stack = self._stack()
        return stack[-1] if stack else None

    def add_event(self, event: "DiagnosticEvent") -> bool:
        """Attach ``event`` to the calling thread's current span.

        Returns False (and does nothing) when tracing is disabled or no
        span is open -- callers need not check first.
        """
        span = self.current_span()
        if span is None:
            return False
        span.add_event(event)
        return True

    @property
    def dropped(self) -> int:
        """Finished spans discarded because ``max_finished`` was hit."""
        return self._dropped

    def drain(self) -> List[Span]:
        """Return and clear all finished spans (in finish order)."""
        with self._lock:
            out = self._finished
            self._finished = []
        return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._finished)


#: Process-wide disabled tracer: the default for instrumented components
#: whose caller did not supply one. Never enable this in library code.
NULL_TRACER = SpanTracer(enabled=False)
