"""The diagnostic event bus: typed, timestamped pipeline occurrences.

Metrics say *how much*; spans say *how long*; events say *what happened*.
A :class:`DiagnosticEvent` is one structured occurrence -- a detected
change, a raised anomaly, an SLA violation, a path-selection decision, a
subscriber failure -- stamped with both the pipeline's monotonic clock
(``perf_counter``, aligning it with spans) and the analysis time it
refers to (the simulation/wall ``time`` of the refresh).

The :class:`EventBus` is the one place such occurrences flow through:

* publishing attaches the event to the **current span** of the bus's
  tracer (when tracing is on), so timelines show causality -- which DFS,
  which subscriber, which refresh raised it;
* a bounded in-memory history is always kept (events are rare --
  detections, decisions, errors -- so this is negligible), feeding the
  flight recorder even when span tracing is off;
* subscribers get every event as it is published; a raising subscriber is
  isolated, logged and counted, never able to break the publisher.

Event kinds used by the built-in instrumentation are the ``EVENT_*``
constants below; user code may publish any kind string.
"""

from __future__ import annotations

import collections
import dataclasses
import logging
import threading
import time
from typing import Callable, Deque, Dict, List, Optional

from repro.obs.spans import SpanTracer

logger = logging.getLogger(__name__)

#: A per-edge delay shift flagged by the change detector (Figure 7).
EVENT_CHANGE = "change"
#: An anomaly raised or escalated by the EWMA anomaly detector.
EVENT_ANOMALY = "anomaly"
#: An SLA evaluated to violated for one service class.
EVENT_SLA_VIOLATION = "sla_violation"
#: A path-selection decision by the E2EProf-driven scheduler (Table 1).
EVENT_PATH_SELECTION = "path_selection"
#: One per-class end-to-end latency reading from the latency monitor.
EVENT_LATENCY = "latency"
#: A subscriber callback raised and was isolated by the engine.
EVENT_SUBSCRIBER_ERROR = "subscriber_error"
#: Blocks declared lost on a tracer -> analyzer transport stream.
EVENT_TRANSPORT_GAP = "transport_gap"
#: A tracer's liveness degraded to lagging/dead (or recovered to live).
EVENT_TRACER_STALE = "tracer_stale"
#: A refresh ran on incomplete data (overall quality score below 1).
EVENT_DEGRADED_REFRESH = "degraded_refresh"
#: A refresh's steady-state confidence fell below the threshold for at
#: least one service class (flash crowd, trough, disappearing class...).
EVENT_LOW_CONFIDENCE = "low_confidence"
#: The adaptive controller blanked pre-change history after a detected
#: change point (change-point-triggered re-windowing).
EVENT_REWINDOW = "rewindow"
#: A pipeline stage is burning its latency error budget too fast (both
#: the fast and slow burn-rate windows over threshold; SRE-style
#: multi-window alerting on the refresh ledger).
EVENT_SLO_BURN = "slo_burn"
#: A ledger quantity drifted beyond tolerance from its committed
#: benchmark baseline (BENCH_refresh.json / BENCH_ingest.json).
EVENT_PERF_REGRESSION = "perf_regression"
#: A shard worker process died mid-refresh (``parallel="processes"``);
#: the refresh completed with the lost shard's service classes marked
#: degraded, and the shard is respawned from history next refresh.
EVENT_SHARD_LOST = "shard_lost"

EventCallback = Callable[["DiagnosticEvent"], None]


@dataclasses.dataclass(frozen=True)
class DiagnosticEvent:
    """One structured pipeline occurrence.

    Attributes
    ----------
    kind:
        Event type tag (see the ``EVENT_*`` constants).
    time:
        Analysis time the event refers to (the refresh's ``now``;
        simulation seconds for simulated runs).
    monotonic:
        ``perf_counter`` stamp at publish, on the same clock as spans.
    attributes:
        Kind-specific payload, JSON-able values only.
    span_id:
        Id of the span the event was attached to, or None when tracing
        was off or no span was open.
    """

    kind: str
    time: float
    monotonic: float
    attributes: Dict[str, object]
    span_id: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "time": self.time,
            "monotonic": self.monotonic,
            "attributes": dict(self.attributes),
            "span_id": self.span_id,
        }


class EventBus:
    """Publish/subscribe hub for :class:`DiagnosticEvent`.

    Parameters
    ----------
    tracer:
        Span tracer whose current span published events attach to. A
        disabled tracer (the default) simply never attaches.
    capacity:
        Bound on the retained event history (ring buffer).
    """

    def __init__(
        self, tracer: Optional[SpanTracer] = None, capacity: int = 4096
    ) -> None:
        self.tracer = tracer if tracer is not None else SpanTracer()
        self._lock = threading.Lock()
        self._history: Deque[DiagnosticEvent] = collections.deque(maxlen=capacity)
        self._subscribers: List[EventCallback] = []
        self._published = 0
        self._subscriber_errors = 0

    # -- publishing ------------------------------------------------------------

    def publish(self, kind: str, time_: float = 0.0, **attributes: object) -> DiagnosticEvent:
        """Create, record, span-attach and fan out one event.

        ``time_`` is the analysis time the event refers to (the refresh's
        ``now``); attribute values should be JSON-able.
        """
        span = self.tracer.current_span()
        event = DiagnosticEvent(
            kind=kind,
            time=float(time_),
            monotonic=time.perf_counter(),
            attributes=attributes,
            span_id=span.span_id if span is not None else None,
        )
        if span is not None:
            span.add_event(event)
        with self._lock:
            self._history.append(event)
            self._published += 1
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(event)
            except Exception:
                with self._lock:
                    self._subscriber_errors += 1
                logger.exception(
                    "event-bus subscriber %r failed on %s event",
                    callback,
                    kind,
                )
        return event

    # -- subscription ------------------------------------------------------------

    def subscribe(self, callback: EventCallback) -> None:
        """Receive every subsequently published event."""
        with self._lock:
            self._subscribers.append(callback)

    # -- queries ---------------------------------------------------------------

    @property
    def published(self) -> int:
        """Total events published (including any rotated out of history)."""
        return self._published

    @property
    def subscriber_errors(self) -> int:
        return self._subscriber_errors

    def events(self, kind: Optional[str] = None) -> List[DiagnosticEvent]:
        """Retained history, optionally filtered by kind (oldest first)."""
        with self._lock:
            out = list(self._history)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return out

    def events_since(self, monotonic: float) -> List[DiagnosticEvent]:
        """Retained events published strictly after a ``perf_counter``
        stamp -- how the engine slices out one refresh's events."""
        with self._lock:
            return [e for e in self._history if e.monotonic > monotonic]

    def __len__(self) -> int:
        with self._lock:
            return len(self._history)
