"""The metrics registry: named instruments, toggled as one unit.

A :class:`MetricsRegistry` is a thread-safe, dependency-free factory and
container for :mod:`repro.obs.instruments`. Registries start **disabled**:
every instrument mutation is then a single attribute check (the paper's
analyzer must stay cheap enough to run online, so self-observation may not
tax the hot path it observes). Enabling a registry flips one shared switch;
all instruments created from it -- before or after -- start recording.

Usage::

    registry = MetricsRegistry(enabled=True)
    refreshes = registry.counter("engine_refreshes_total", "Refreshes run")
    latency = registry.histogram("engine_refresh_seconds", "Refresh wall time")
    refreshes.inc()
    with registry.timer("engine_refresh_seconds"):
        ...  # timed work
    registry.snapshot()        # JSON-able dict
    registry.to_prometheus()   # Prometheus text exposition
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.instruments import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Instrument,
    LabelsKey,
    Switch,
    Timer,
    exponential_buckets,
    labels_key,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class MetricsRegistry:
    """A named collection of metric instruments with one on/off switch.

    Parameters
    ----------
    enabled:
        Whether instruments record anything. Defaults to **False**: an
        instrumented component pays (almost) nothing until an operator
        opts in.
    namespace:
        Prefix applied to metric names in the Prometheus exposition
        (``namespace_name``). The JSON snapshot uses bare names.
    """

    def __init__(self, enabled: bool = False, namespace: str = "repro") -> None:
        if not _NAME_RE.match(namespace):
            raise ObservabilityError(f"invalid metrics namespace {namespace!r}")
        self.namespace = namespace
        self._switch = Switch(enabled)
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelsKey], Instrument] = {}

    # -- switch ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._switch.on

    def enable(self) -> None:
        """Start recording on every instrument of this registry."""
        self._switch.on = True

    def disable(self) -> None:
        """Stop recording; instruments keep their accumulated state."""
        self._switch.on = False

    # -- instrument factory ----------------------------------------------------

    def _get_or_create(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Optional[Dict[str, str]],
        **kwargs: object,
    ) -> Instrument:
        if not _NAME_RE.match(name):
            raise ObservabilityError(f"invalid metric name {name!r}")
        key = (name, labels_key(labels))
        # Fast path without the lock: instruments are never removed, so a
        # hit is always safe to return.
        found = self._instruments.get(key)
        if found is None:
            with self._lock:
                found = self._instruments.get(key)
                if found is None:
                    found = cls(name, help, key[1], self._switch, **kwargs)
                    self._instruments[key] = found
        if not isinstance(found, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as {found.kind}, "
                f"requested {cls.kind}"  # type: ignore[attr-defined]
            )
        return found

    def counter(
        self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Counter:
        """Get or create a monotonically increasing counter."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Optional[Dict[str, str]] = None
    ) -> Gauge:
        """Get or create a point-in-time gauge."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def log_histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        start: float = 2e-5,
        factor: float = 2.0,
        count: int = 19,
    ) -> Histogram:
        """Get or create a histogram with log-spaced (exponential) buckets.

        Convenience over :meth:`histogram` for latency-style quantities
        spanning orders of magnitude; bounds are
        :func:`repro.obs.instruments.exponential_buckets`.
        """
        return self._get_or_create(
            Histogram, name, help, labels,
            buckets=exponential_buckets(start, factor, count),
        )

    def timer(
        self,
        name: str,
        help: str = "",
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Timer:
        """Context manager timing a block into the named histogram."""
        return self.histogram(name, help, labels, buckets).time()

    # -- introspection ---------------------------------------------------------

    def instruments(self) -> Iterable[Instrument]:
        """All instruments, sorted by (name, labels) for stable output."""
        with self._lock:
            items = sorted(self._instruments.items())
        return [inst for _, inst in items]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return any(key[0] == name for key in self._instruments)

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def reset(self) -> None:
        """Zero every instrument (state, not registration)."""
        for inst in self.instruments():
            inst.reset()

    # -- exposition (delegates; see repro.obs.exposition) ----------------------

    def snapshot(self) -> dict:
        """JSON-able snapshot of every instrument's current state."""
        from repro.obs.exposition import snapshot

        return snapshot(self)

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4 format)."""
        from repro.obs.exposition import to_prometheus

        return to_prometheus(self)


#: Process-wide disabled registry: the default sink for instrumented
#: components whose caller did not supply one. Never enable this in library
#: code -- operators opt in by passing their own enabled registry.
NULL_REGISTRY = MetricsRegistry(enabled=False)
