"""Exposition formats for a metrics registry.

Two renderings of the same instrument state:

* :func:`snapshot` -- a nested, JSON-able dict, for programmatic consumers
  (the ``repro stats`` CLI writes this as the artifact format);
* :func:`to_prometheus` -- the Prometheus text format (0.0.4), so a real
  scrape endpoint can be wired up with ``print`` and an HTTP handler.

Both group labeled instruments under their metric name, and both are pure
reads: they never mutate instrument state and can run concurrently with
updates (values may be mid-refresh torn across *different* instruments,
which scrape-based monitoring tolerates by design).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.obs.instruments import Counter, Gauge, Histogram, Instrument, format_bound

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import MetricsRegistry


def snapshot(registry: "MetricsRegistry") -> dict:
    """JSON-able snapshot: ``{metric name: {labels repr: state dict}}``.

    Unlabeled instruments use the empty string as their labels key, so the
    shape is uniform regardless of labeling.
    """
    out: Dict[str, Dict[str, dict]] = {}
    for inst in registry.instruments():
        state = inst.snapshot()
        if inst.help:
            state["help"] = inst.help
        out.setdefault(inst.name, {})[_labels_repr(inst)] = state
    return out


def to_prometheus(registry: "MetricsRegistry") -> str:
    """Prometheus text exposition of every instrument in the registry."""
    lines: List[str] = []
    seen_header = set()
    prefix = registry.namespace + "_" if registry.namespace else ""
    for inst in registry.instruments():
        full = prefix + inst.name
        if inst.name not in seen_header:
            seen_header.add(inst.name)
            if inst.help:
                lines.append(f"# HELP {full} {_escape_help(inst.help)}")
            lines.append(f"# TYPE {full} {inst.kind}")
        if isinstance(inst, (Counter, Gauge)):
            lines.append(f"{full}{_label_str(inst)} {_fmt(inst.value)}")
        elif isinstance(inst, Histogram):
            for bound, cum in inst.cumulative_buckets().items():
                lines.append(
                    f"{full}_bucket{_label_str(inst, le=bound)} {cum}"
                )
            lines.append(f"{full}_sum{_label_str(inst)} {_fmt(inst.sum)}")
            lines.append(f"{full}_count{_label_str(inst)} {inst.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def _labels_repr(inst: Instrument) -> str:
    return ",".join(f"{k}={v}" for k, v in inst.labels)


def _label_str(inst: Instrument, le: str = "") -> str:
    pairs = [f'{k}="{_escape_label(v)}"' for k, v in inst.labels]
    if le:
        pairs.append(f'le="{le}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _fmt(value: float) -> str:
    # Text format 0.0.4 spells the non-finite values exactly this way;
    # Python's repr ("inf", "nan") would not be parsed back.
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


# Re-exported for histogram bucket rendering elsewhere.
__all__ = ["snapshot", "to_prometheus", "format_bound"]
