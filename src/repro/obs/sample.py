"""Per-refresh metrics samples delivered to engine subscribers.

The paper casts E2EProf as "a basic service, 'pluggable' into any
distributed system"; a production deployment of such a service must export
its *own* health alongside its analysis results. A
:class:`MetricsSample` is that export: one immutable record per engine
refresh with the costs and work counts of exactly that refresh (deltas,
not cumulative totals -- subscribers aggregate however they like).

Wired through :meth:`repro.core.engine.E2EProfEngine.subscribe_metrics`::

    def on_metrics(now, result, sample):
        if sample.refresh_seconds > config.refresh_interval / 2:
            alert("analyzer falling behind", sample)

    engine.subscribe_metrics(on_metrics)

Samples are produced regardless of whether the engine's metrics registry
is enabled -- the engine counts this handful of values locally either way,
so a subscriber is the cheapest way to watch one engine without turning on
the full registry.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class MetricsSample:
    """Self-observability numbers for one engine refresh.

    Attributes
    ----------
    time:
        Simulation/wall time of the refresh (the ``now`` passed to
        :meth:`~repro.core.engine.E2EProfEngine.refresh`).
    refresh_seconds:
        Wall-clock cost of the refresh work: block ingest + incremental
        correlator updates + pathmap DFS (the Figure 9 quantity).
    pathmap_seconds:
        Portion of ``refresh_seconds`` spent in the pathmap DFS.
    fanout_seconds:
        Wall-clock cost of notifying the plain result subscribers
        (measured after the refresh work, so not part of
        ``refresh_seconds``).
    blocks_ingested:
        Streamed RLE blocks pulled from tracers this refresh.
    wire_bytes:
        Bytes of wire-format payload decoded this refresh (0 unless the
        engine runs with ``wire_fidelity=True``).
    correlators:
        Live incremental correlators after this refresh.
    cache_hits:
        Correlations served by an existing (cached) incremental
        correlator this refresh.
    cache_misses:
        Correlations that had to build a correlator from block history
        this refresh.
    correlations:
        Edge correlations evaluated by the pathmap DFS this refresh.
    spikes:
        Correlation spikes detected this refresh.
    nodes_visited:
        Nodes the pathmap DFS recursed into this refresh.
    correlator_skips:
        Pair products skipped this refresh because one side's block was
        quiet (the batched refresh's quiet-edge optimization; 0 when the
        engine runs with ``batched=False``).
    correlation_cache_hits:
        Correlation queries answered from a correlator's dirty-flag
        result cache this refresh (unchanged window, same series object
        re-served).
    capture_batches:
        Columnar timestamp batches forwarded to the engine's capture
        sink this refresh (0 unless a ``capture_sink`` is configured).
    autotune_recommendations:
        Per-class tuning recommendations the adaptive controller holds
        after this refresh (0 unless the engine runs with
        ``adaptive=True``).
    low_confidence_events:
        Service classes whose steady-state confidence checks failed
        this refresh (each also publishes an ``EVENT_LOW_CONFIDENCE``
        diagnostic event).
    rewindow_clips:
        Change-point-triggered window clips the adaptive controller
        applied this refresh (delta, not the engine's running total).
    """

    time: float
    refresh_seconds: float
    pathmap_seconds: float
    fanout_seconds: float
    blocks_ingested: int
    wire_bytes: int
    correlators: int
    cache_hits: int
    cache_misses: int
    correlations: int
    spikes: int
    nodes_visited: int
    correlator_skips: int = 0
    correlation_cache_hits: int = 0
    capture_batches: int = 0
    autotune_recommendations: int = 0
    low_confidence_events: int = 0
    rewindow_clips: int = 0

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-able) of the sample."""
        return dataclasses.asdict(self)
