"""Metric instruments: counters, gauges, histograms and timers.

These are the building blocks of :class:`repro.obs.registry.MetricsRegistry`.
Every instrument shares one design constraint, imposed by the engine's hot
path (paper Section 3.7: the analyzer must be cheap enough to run *online*):
when the owning registry is disabled -- the default -- every mutating method
returns after a single attribute check, takes no lock, and allocates nothing.
The overhead-guard test in ``tests/test_obs.py`` pins this property.

When the registry is enabled, updates are exact under concurrency: each
instrument guards its state with its own lock, so hammering one counter from
many threads never loses an increment (also pinned by the test suite).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Canonical key form of a label set: sorted ``(key, value)`` pairs.
LabelsKey = Tuple[Tuple[str, str], ...]

#: Default histogram boundaries for wall-clock durations in seconds.
#: Spans 100 us (one correlation on a quiet edge) to 10 s (a full-window
#: analysis far behind its refresh interval).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default histogram boundaries for small non-negative counts (e.g. RLE
#: runs per streamed block).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
)


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """Log-spaced histogram bounds: ``start * factor**i`` for i in [0, count).

    The natural bucketing for latency-style quantities spanning orders of
    magnitude (a pipeline stage can run 50 us on a quiet refresh and
    50 ms on a surge). Mirrors Prometheus client ``ExponentialBuckets``.
    """
    if start <= 0:
        raise ObservabilityError(
            f"exponential buckets need start > 0, got {start}"
        )
    if factor <= 1:
        raise ObservabilityError(
            f"exponential buckets need factor > 1, got {factor}"
        )
    if count < 1:
        raise ObservabilityError(
            f"exponential buckets need count >= 1, got {count}"
        )
    bounds = []
    bound = float(start)
    for _ in range(int(count)):
        bounds.append(bound)
        bound *= float(factor)
    return tuple(bounds)


#: Log-bucketed boundaries for per-stage wall times: 20 us to ~5.5 s in
#: x2 steps, fine enough to separate a fast ingest from a slow DFS.
DEFAULT_STAGE_BUCKETS: Tuple[float, ...] = exponential_buckets(2e-5, 2.0, 19)


class Switch:
    """Shared on/off flag between a registry and its instruments.

    A plain mutable holder (not a property on the registry) so the disabled
    fast path is one attribute load on a tiny object.
    """

    __slots__ = ("on",)

    def __init__(self, on: bool = False) -> None:
        self.on = bool(on)


def labels_key(labels: Optional[Dict[str, str]]) -> LabelsKey:
    """Canonicalize a label dict into a hashable, order-independent key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Common state shared by every instrument kind."""

    kind = "untyped"
    __slots__ = ("name", "help", "labels", "_switch", "_lock")

    def __init__(
        self,
        name: str,
        help: str,
        labels: LabelsKey,
        switch: Switch,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._switch = switch
        self._lock = threading.Lock()

    def snapshot(self) -> dict:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(Instrument):
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str, help: str, labels: LabelsKey, switch: Switch) -> None:
        super().__init__(name, help, labels, switch)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if not self._switch.on:
            return
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge(Instrument):
    """An instantaneous value that can move in both directions."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self, name: str, help: str, labels: LabelsKey, switch: Switch) -> None:
        super().__init__(name, help, labels, switch)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._switch.on:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._switch.on:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"kind": self.kind, "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(Instrument):
    """A distribution over fixed, cumulative bucket boundaries.

    ``buckets`` are upper bounds (``le`` in Prometheus terms); an implicit
    ``+Inf`` bucket always exists, so ``observe`` never drops a sample.
    """

    kind = "histogram"
    __slots__ = ("buckets", "_bucket_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        help: str,
        labels: LabelsKey,
        switch: Switch,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labels, switch)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs at least one bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be strictly increasing: {bounds}"
            )
        self.buckets = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        if not self._switch.on:
            return
        value = float(value)
        # Linear scan: bucket lists are short (<= ~16) and the common case
        # (fast refreshes) lands in the first few slots.
        slot = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                slot = i
                break
        with self._lock:
            self._bucket_counts[slot] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def time(self) -> "Timer":
        """Context manager that observes the elapsed ``perf_counter`` time."""
        return Timer(self)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> Dict[str, int]:
        """Bucket upper bound -> cumulative count (Prometheus semantics)."""
        out: Dict[str, int] = {}
        running = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            running += n
            out[format_bound(bound)] = running
        out["+Inf"] = running + self._bucket_counts[-1]
        return out

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "buckets": self.cumulative_buckets(),
        }

    def reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None


class Timer:
    """Times a ``with`` block on ``perf_counter`` into a histogram.

    Built for convenience paths (CLI, subscribers). The engine's own hot
    path calls ``perf_counter`` + ``observe`` directly, which is cheaper
    than a context-manager frame when the registry is disabled.
    """

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self._histogram.observe(time.perf_counter() - self._started)
        return False


def format_bound(bound: float) -> str:
    """Render a bucket bound the way Prometheus does (no trailing zeros)."""
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)
