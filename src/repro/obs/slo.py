"""Latency SLOs over the refresh ledger: burn-rate and regression events.

The engine's self-profiling (``repro.obs.ledger``) measures each pipeline
stage every refresh; this module turns those measurements into *alerts*:

* :class:`SLOMonitor` evaluates per-stage latency objectives with
  SRE-style **multi-window burn rates**: each refresh either meets or
  breaches its stage objective, and when both a fast window (is it
  burning *now*?) and a slow window (has it burned for a while?) exceed
  the burn threshold, an :data:`~repro.obs.events.EVENT_SLO_BURN` event
  is published. The two windows together suppress one-refresh blips
  without missing sustained burns.
* :class:`RegressionWatch` smooths ledger quantities with an EWMA and
  publishes :data:`~repro.obs.events.EVENT_PERF_REGRESSION` when the
  smoothed value drifts beyond a tolerance factor of a **committed
  benchmark baseline** (``BENCH_refresh.json`` / ``BENCH_ingest.json``),
  catching the slow rot that point-in-time CI gates miss.

Both subscribe to a live engine via ``subscribe_to(engine)`` and read
``result.ledger`` from the metrics fan-out, so they cost one dict lookup
per refresh when everything is healthy.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.events import EVENT_PERF_REGRESSION, EVENT_SLO_BURN, EventBus
from repro.obs.ledger import (
    STAGE_CORRELATE,
    STAGE_DFS,
    STAGE_INGEST,
    STAGE_PUBLISH,
    Ewma,
    RefreshLedger,
)

#: Pseudo-stage name for the whole-refresh objective (ingest + correlate
#: + dfs, the ledger's ``refresh_seconds``).
STAGE_REFRESH = "refresh"

#: Default share of the refresh interval each stage may spend before its
#: objective is breached. The whole refresh gets half the interval (an
#: analyzer spending more than dW/2 analyzing is close to falling
#: behind); stages split that roughly by their observed cost profile.
DEFAULT_OBJECTIVE_SHARES: Dict[str, float] = {
    STAGE_REFRESH: 0.50,
    STAGE_INGEST: 0.10,
    STAGE_CORRELATE: 0.25,
    STAGE_DFS: 0.25,
    STAGE_PUBLISH: 0.05,
}


@dataclasses.dataclass(frozen=True)
class StageObjective:
    """One latency objective: stage X should finish within Y seconds,
    Z fraction of refreshes.

    Attributes
    ----------
    stage:
        A pipeline stage name, or :data:`STAGE_REFRESH` for the whole
        refresh.
    objective_seconds:
        The latency bound a refresh must meet to count as good.
    target:
        Fraction of refreshes that must meet the bound (the SLO target);
        the error budget is ``1 - target``.
    """

    stage: str
    objective_seconds: float
    target: float = 0.99

    def __post_init__(self) -> None:
        if self.objective_seconds <= 0:
            raise ObservabilityError(
                f"objective_seconds must be positive, got {self.objective_seconds}"
            )
        if not 0.0 < self.target < 1.0:
            raise ObservabilityError(
                f"SLO target must be in (0, 1), got {self.target}"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target


def default_objectives(config) -> Tuple[StageObjective, ...]:
    """Per-stage objectives derived from a config's refresh interval.

    Each stage's bound is its :data:`DEFAULT_OBJECTIVE_SHARES` share of
    ``config.refresh_interval`` -- an analyzer is healthy when its whole
    refresh fits comfortably inside the interval it must keep up with.
    """
    budget = float(config.refresh_interval)
    return tuple(
        StageObjective(stage, share * budget)
        for stage, share in DEFAULT_OBJECTIVE_SHARES.items()
    )


def _ledger_value(ledger: RefreshLedger, stage: str) -> float:
    if stage == STAGE_REFRESH:
        return ledger.refresh_seconds
    return ledger.stage_seconds(stage)


class _ObjectiveState:
    __slots__ = ("objective", "breaches", "observed", "cooldown_left")

    def __init__(self, objective: StageObjective, slow_window: int) -> None:
        self.objective = objective
        self.breaches: Deque[bool] = deque(maxlen=slow_window)
        self.observed = 0
        self.cooldown_left = 0


class SLOMonitor:
    """Multi-window burn-rate alerting over per-refresh stage latencies.

    Parameters
    ----------
    objectives:
        The :class:`StageObjective` list to evaluate. When None and
        attached via :meth:`subscribe_to`, defaults to
        :func:`default_objectives` of the engine's config.
    events:
        EventBus to publish :data:`EVENT_SLO_BURN` on (the engine's bus
        when attached via :meth:`subscribe_to`).
    fast_window / slow_window:
        Refresh counts for the two burn windows. An alert needs *both*
        windows' burn rate over ``burn_threshold``.
    burn_threshold:
        Burn rate (breach fraction / error budget) that must be exceeded.
        1.0 means "spending budget exactly as fast as allowed"; the
        default 4.0 mirrors the classic fast-burn page threshold.
    cooldown:
        Minimum refreshes between alerts per objective (suppresses alert
        storms while a stage stays slow). Defaults to ``fast_window``.
    """

    def __init__(
        self,
        objectives: Optional[Sequence[StageObjective]] = None,
        events: Optional[EventBus] = None,
        fast_window: int = 8,
        slow_window: int = 32,
        burn_threshold: float = 4.0,
        cooldown: Optional[int] = None,
    ) -> None:
        if fast_window < 1 or slow_window < fast_window:
            raise ObservabilityError(
                "need 1 <= fast_window <= slow_window, got "
                f"{fast_window}/{slow_window}"
            )
        if burn_threshold <= 0:
            raise ObservabilityError(
                f"burn_threshold must be positive, got {burn_threshold}"
            )
        self.fast_window = int(fast_window)
        self.slow_window = int(slow_window)
        self.burn_threshold = float(burn_threshold)
        self.cooldown = self.fast_window if cooldown is None else max(0, int(cooldown))
        self.events = events
        self.alerts = 0
        self._states: List[_ObjectiveState] = []
        if objectives is not None:
            self._set_objectives(objectives)

    def _set_objectives(self, objectives: Sequence[StageObjective]) -> None:
        self._states = [_ObjectiveState(o, self.slow_window) for o in objectives]

    @property
    def objectives(self) -> Tuple[StageObjective, ...]:
        return tuple(state.objective for state in self._states)

    def subscribe_to(self, engine) -> "SLOMonitor":
        """Attach to a live engine: default objectives from its config,
        events onto its bus, one observation per metrics fan-out."""
        if not self._states:
            self._set_objectives(default_objectives(engine.config))
        if self.events is None:
            self.events = engine.events

        def _on_metrics(now, result, sample):
            if result.ledger is not None:
                self.observe(now, result.ledger)

        engine.subscribe_metrics(_on_metrics)
        return self

    # -- evaluation ------------------------------------------------------------

    def observe(self, now: float, ledger: RefreshLedger) -> List[dict]:
        """Fold one refresh's ledger in; publish and return any alerts."""
        alerts: List[dict] = []
        for state in self._states:
            objective = state.objective
            value = _ledger_value(ledger, objective.stage)
            state.breaches.append(value > objective.objective_seconds)
            state.observed += 1
            if state.cooldown_left > 0:
                state.cooldown_left -= 1
            if state.observed < self.fast_window:
                continue
            fast = self.burn_rate(objective.stage, self.fast_window)
            slow = self.burn_rate(objective.stage, self.slow_window)
            if (
                fast is not None
                and fast >= self.burn_threshold
                and slow is not None
                and slow >= self.burn_threshold
                and state.cooldown_left == 0
            ):
                state.cooldown_left = self.cooldown
                self.alerts += 1
                payload = {
                    "stage": objective.stage,
                    "objective_seconds": objective.objective_seconds,
                    "target": objective.target,
                    "burn_fast": fast,
                    "burn_slow": slow,
                    "observed_seconds": value,
                    "sequence": ledger.sequence,
                }
                alerts.append(payload)
                if self.events is not None:
                    self.events.publish(EVENT_SLO_BURN, time_=now, **payload)
        return alerts

    def burn_rate(self, stage: str, window: Optional[int] = None) -> Optional[float]:
        """Burn rate for a stage over the last ``window`` refreshes.

        breach fraction / error budget; 1.0 = spending budget exactly at
        the sustainable rate. None when the stage has no observations or
        no configured objective.
        """
        for state in self._states:
            if state.objective.stage != stage:
                continue
            breaches = list(state.breaches)
            if window is not None:
                breaches = breaches[-window:]
            if not breaches:
                return None
            fraction = sum(breaches) / len(breaches)
            return fraction / state.objective.error_budget
        return None


class RegressionWatch:
    """EWMA drift detection against committed benchmark baselines.

    Parameters
    ----------
    baselines:
        Ledger quantity name -> baseline seconds. Recognized names:
        ``refresh_seconds`` and ``stage_<name>_seconds`` for each
        pipeline stage.
    tolerance:
        Factor over baseline the smoothed value must exceed to count as
        a regression. Baselines come from benchmark machines, so the
        default is deliberately loose (3x) -- this watches for *drift*,
        not micro-slowdowns.
    alpha:
        EWMA smoothing factor.
    min_samples:
        Refreshes observed before a regression may fire (lets the EWMA
        settle past cold-start effects).
    events:
        EventBus to publish :data:`EVENT_PERF_REGRESSION` on.
    cooldown:
        Minimum refreshes between events per watched quantity.
    """

    def __init__(
        self,
        baselines: Dict[str, float],
        tolerance: float = 3.0,
        alpha: float = 0.2,
        min_samples: int = 5,
        events: Optional[EventBus] = None,
        cooldown: int = 8,
    ) -> None:
        if tolerance <= 1.0:
            raise ObservabilityError(
                f"regression tolerance must exceed 1.0, got {tolerance}"
            )
        for name, baseline in baselines.items():
            if baseline <= 0:
                raise ObservabilityError(
                    f"baseline {name!r} must be positive, got {baseline}"
                )
        self.baselines = dict(baselines)
        self.tolerance = float(tolerance)
        self.min_samples = max(1, int(min_samples))
        self.cooldown = max(0, int(cooldown))
        self.events = events
        self.regressions = 0
        self._ewmas: Dict[str, Ewma] = {n: Ewma(alpha) for n in self.baselines}
        self._cooldown_left: Dict[str, int] = {n: 0 for n in self.baselines}

    def subscribe_to(self, engine) -> "RegressionWatch":
        """Attach to a live engine's metrics fan-out and event bus."""
        if self.events is None:
            self.events = engine.events

        def _on_metrics(now, result, sample):
            if result.ledger is not None:
                self.observe(now, result.ledger)

        engine.subscribe_metrics(_on_metrics)
        return self

    @staticmethod
    def _value(ledger: RefreshLedger, name: str) -> Optional[float]:
        if name == "refresh_seconds":
            return ledger.refresh_seconds
        if name.startswith("stage_") and name.endswith("_seconds"):
            return ledger.stage_seconds(name[len("stage_"):-len("_seconds")])
        return None

    def observe(self, now: float, ledger: RefreshLedger) -> List[dict]:
        """Fold one ledger in; publish and return any regression events."""
        fired: List[dict] = []
        for name, baseline in self.baselines.items():
            value = self._value(ledger, name)
            if value is None:
                continue
            ewma = self._ewmas[name]
            smoothed = ewma.update(value)
            if self._cooldown_left[name] > 0:
                self._cooldown_left[name] -= 1
            if ewma.samples < self.min_samples:
                continue
            if smoothed > self.tolerance * baseline and self._cooldown_left[name] == 0:
                self._cooldown_left[name] = self.cooldown
                self.regressions += 1
                payload = {
                    "metric": name,
                    "baseline_seconds": baseline,
                    "observed_seconds": smoothed,
                    "ratio": smoothed / baseline,
                    "tolerance": self.tolerance,
                    "sequence": ledger.sequence,
                }
                fired.append(payload)
                if self.events is not None:
                    self.events.publish(EVENT_PERF_REGRESSION, time_=now, **payload)
        return fired

    def smoothed(self, name: str) -> Optional[float]:
        ewma = self._ewmas.get(name)
        return ewma.value if ewma is not None else None


# -- committed-baseline loaders ------------------------------------------------


def refresh_baseline(doc: dict, mode: str = "batched") -> Dict[str, float]:
    """Regression baselines from a loaded ``BENCH_refresh.json`` document.

    Uses the refresh p50 of ``mode`` -- by default the batched mode the
    PR 4 CI gate already pins -- as the whole-refresh baseline. Modes
    from the dense-regime FFT A/B section are addressed with a
    ``dense/`` prefix: ``refresh_baseline(doc, "dense/fft")`` pins the
    dense 40-class workload on the FFT batch kernel, ``"dense/direct"``
    the same workload on the sparse/RLE kernels only.
    """
    if mode.startswith("dense/"):
        modes = doc["dense"]["modes"]
        mode = mode[len("dense/"):]
    else:
        modes = doc["modes"]
    if mode not in modes:
        raise KeyError(
            f"mode {mode!r} not in benchmark document "
            f"(have: {', '.join(sorted(modes))})"
        )
    p50 = modes[mode]["p50_seconds"]
    return {"refresh_seconds": float(p50)}


def ingest_baseline(doc: dict) -> Dict[str, float]:
    """Regression baselines from a loaded ``BENCH_ingest.json`` document.

    Derives a per-refresh ingest budget from the batched end-to-end
    ingest benchmark: best total seconds spread over its flush rounds
    (one flush round ~ one refresh's worth of block pull).
    """
    best = float(doc["modes"]["batched"]["best_seconds"])
    rounds = max(1, int(doc["workload"]["flush_rounds"]))
    return {"stage_ingest_seconds": best / rounds}


def load_baselines(
    refresh_path: Optional[str] = None, ingest_path: Optional[str] = None
) -> Dict[str, float]:
    """Load regression baselines from committed benchmark JSON files."""
    baselines: Dict[str, float] = {}
    if refresh_path is not None:
        with open(refresh_path, "r", encoding="utf-8") as handle:
            baselines.update(refresh_baseline(json.load(handle)))
    if ingest_path is not None:
        with open(ingest_path, "r", encoding="utf-8") as handle:
            baselines.update(ingest_baseline(json.load(handle)))
    return baselines
