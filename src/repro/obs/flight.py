"""The flight recorder: a bounded black-box of recent refreshes.

When a refresh is slow or a detector misfires, the aggregates say *that*
something happened; the flight recorder says *what*. It is a ring buffer
of the last ``capacity`` refreshes' :class:`RefreshFrame` records -- per
refresh: the engine's cheap self-measurements (the MetricsSample dict),
every diagnostic event the refresh produced, and (when span tracing is
on) the full span tree of the refresh.

It records **always**, at negligible cost: with tracing off a frame is a
handful of numbers and the (rare) events; enabling the tracer upgrades
frames to full timelines without touching the recorder. Dump it after an
error, on demand via ``engine.dump_flight_record()``, or through the
``repro timeline`` CLI.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.events import DiagnosticEvent
from repro.obs.spans import Span

#: Default ring depth: enough refreshes to cover several full analysis
#: windows at typical W/dW ratios while staying a few hundred KB.
DEFAULT_FLIGHT_CAPACITY = 32


@dataclasses.dataclass
class RefreshFrame:
    """Everything recorded about one engine (or replay) refresh.

    Attributes
    ----------
    time:
        Analysis time of the refresh (the ``now`` passed to ``refresh``).
    sequence:
        Monotonic refresh index within the producing engine/replay.
    sample:
        JSON-able dict of the refresh's self-measurements (an engine's
        ``MetricsSample.to_dict()``, or a smaller dict for replays).
    spans:
        The refresh's finished spans (empty when tracing is off).
    events:
        Diagnostic events raised during the refresh.
    ledger:
        JSON-able dict of the refresh's cost ledger
        (``RefreshLedger.to_dict()``), or empty when the producer keeps
        no ledger (replays, pre-ledger dumps).
    """

    time: float
    sequence: int
    sample: Dict[str, object]
    spans: List[Span] = dataclasses.field(default_factory=list)
    events: List[DiagnosticEvent] = dataclasses.field(default_factory=list)
    ledger: Dict[str, object] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "sequence": self.sequence,
            "sample": dict(self.sample),
            "spans": [s.to_dict() for s in self.spans],
            "events": [e.to_dict() for e in self.events],
            "ledger": dict(self.ledger),
        }


class FlightRecorder:
    """Thread-safe ring buffer of :class:`RefreshFrame` records."""

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        if capacity < 1:
            from repro.errors import ObservabilityError

            raise ObservabilityError(
                f"flight recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._frames: Deque[RefreshFrame] = deque(maxlen=self.capacity)
        self._recorded = 0

    def record(self, frame: RefreshFrame) -> None:
        """Append one frame, evicting the oldest when full."""
        with self._lock:
            self._frames.append(frame)
            self._recorded += 1

    @property
    def recorded(self) -> int:
        """Total frames ever recorded (including rotated-out ones)."""
        return self._recorded

    def frames(self, last: Optional[int] = None) -> List[RefreshFrame]:
        """The retained frames, oldest first (optionally only the last N)."""
        with self._lock:
            out = list(self._frames)
        if last is not None and last >= 0:
            out = out[len(out) - min(last, len(out)):]
        return out

    def latest(self) -> Optional[RefreshFrame]:
        with self._lock:
            return self._frames[-1] if self._frames else None

    def clear(self) -> None:
        with self._lock:
            self._frames.clear()

    def dump(self, last: Optional[int] = None) -> dict:
        """JSON-able dump of the retained frames.

        The dump is self-consistent: it is assembled under the recorder's
        lock-protected snapshot of the ring, so concurrent ``record``
        calls never produce a half-updated frame list.
        """
        frames = self.frames(last)
        return {
            "capacity": self.capacity,
            "recorded": self._recorded,
            "frames": [f.to_dict() for f in frames],
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)
