"""The write-behind trace lake.

:class:`TraceLake` is the collector's second storage tier.  Eviction
hands it the exact arrays leaving resident memory (:meth:`spill`); the
lake buffers them per ``(edge, side)`` stream and writes a time-indexed
``.rtb`` segment once a stream's buffer crosses ``segment_bytes`` --
classic write-behind: the hot path pays an append, the serialization
cost is batched.  :meth:`checkpoint` (called once per engine refresh)
persists any pending summary rows and atomically replaces the manifest,
so a crash loses at most the still-buffered tail -- never a cataloged
segment.

Reads are cache-aside: :meth:`query` answers from the mmap LRU over
cataloged segments *plus* the not-yet-flushed buffers, so a spilled
value is visible from the moment it leaves resident memory.  Segment
files are immutable once cataloged; compaction writes replacement
segments under fresh sequence numbers and swaps the catalog atomically,
so concurrent readers keep valid mappings throughout.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import TraceError
from repro.lake.manifest import (
    LakeManifest,
    SegmentMeta,
    SummaryMeta,
    load_manifest,
    save_manifest,
)
from repro.lake.segments import SegmentMappingLRU, segment_filename, write_segment
from repro.lake.summaries import BlockSummary

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import LakeConfig
    from repro.obs.registry import MetricsRegistry

#: (src, dst, observed_at_destination)
StreamKey = Tuple[str, str, bool]

#: Default per-stream buffer threshold before a segment is cut (bytes of
#: float64 payload).  Small enough that an idle stream's tail reaches
#: disk within a few refreshes under modest traffic, large enough that a
#: busy stream amortizes the file + manifest cost over ~32k records.
DEFAULT_SEGMENT_BYTES = 256 * 1024

#: Pending summary rows buffered before a summary file is cut.
DEFAULT_SUMMARY_ROWS = 512


class TraceLake:
    """Tiered spill store under one directory (see module docstring).

    Parameters
    ----------
    root:
        Lake directory; created if missing.  One lake per collector.
    segment_bytes:
        Per-stream write-behind buffer threshold.
    mapping_cache:
        LRU capacity (open segment mappings) of the read path.
    metrics:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        ``lake_segments_total``, ``lake_spilled_records_total``,
        ``lake_spilled_bytes_total``, ``lake_summary_rows_total`` and the
        ``lake_mapping_hits_total`` / ``lake_mapping_misses_total`` pair.
    """

    def __init__(
        self,
        root: "os.PathLike[str]",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        mapping_cache: int = 64,
        summary_rows: int = DEFAULT_SUMMARY_ROWS,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if segment_bytes < 8:
            raise TraceError(f"segment_bytes must be >= 8, got {segment_bytes}")
        if summary_rows < 1:
            raise TraceError(f"summary_rows must be >= 1, got {summary_rows}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.summary_rows = int(summary_rows)
        self._lock = threading.RLock()
        self._manifest = load_manifest(self.root)
        self._manifest_dirty = False
        self._mappings = SegmentMappingLRU(self.root, capacity=mapping_cache)
        self._buffers: Dict[StreamKey, List[np.ndarray]] = {}
        self._buffer_bytes: Dict[StreamKey, int] = {}
        self._pending_summaries: List[BlockSummary] = []
        # One persisted spectrum per (class, block): the same reference
        # block pairs with many signal edges, but its rfft is identical
        # across them.
        self._spectra_seen: Set[Tuple[str, str, int]] = set()
        self.segments_written = 0
        self.spilled_records = 0
        self.spilled_bytes = 0
        self.summary_rows_written = 0
        self._spill_seconds = 0.0
        if metrics is not None:
            self._m_segments = metrics.counter(
                "lake_segments_total", "Spill segments written to the trace lake"
            )
            self._m_records = metrics.counter(
                "lake_spilled_records_total",
                "Capture records spilled to the trace lake",
            )
            self._m_bytes = metrics.counter(
                "lake_spilled_bytes_total",
                "Segment bytes written to the trace lake",
            )
            self._m_rows = metrics.counter(
                "lake_summary_rows_total",
                "Materialized correlation summary rows persisted",
            )
            self._m_hits = metrics.counter(
                "lake_mapping_hits_total",
                "Historical reads served from the open-segment mapping LRU",
            )
            self._m_misses = metrics.counter(
                "lake_mapping_misses_total",
                "Historical reads that opened a new segment mapping",
            )
        else:
            self._m_segments = None
            self._m_records = None
            self._m_bytes = None
            self._m_rows = None
            self._m_hits = None
            self._m_misses = None
        self._mapping_synced = (0, 0)

    @classmethod
    def from_config(
        cls, config: "LakeConfig", metrics: Optional["MetricsRegistry"] = None
    ) -> "TraceLake":
        """Build a lake from a :class:`~repro.config.LakeConfig`."""
        if config.root is None:
            raise TraceError("LakeConfig.root is unset; nowhere to spill")
        return cls(
            config.root,
            segment_bytes=config.segment_bytes,
            mapping_cache=config.mapping_cache,
            metrics=metrics,
        )

    # -- write-behind spill ----------------------------------------------------

    def spill(
        self,
        src: str,
        dst: str,
        observed_at_destination: bool,
        values: np.ndarray,
    ) -> None:
        """Accept one evicted timestamp array for a stream (write-behind).

        O(1) append to the stream's buffer; crossing ``segment_bytes``
        cuts a segment inline (that is the batched serialization cost the
        refresh ledger's ``spill`` stage accounts).
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        started = time.perf_counter()
        key = (src, dst, bool(observed_at_destination))
        with self._lock:
            self._buffers.setdefault(key, []).append(values)
            total = self._buffer_bytes.get(key, 0) + values.nbytes
            self._buffer_bytes[key] = total
            if total >= self.segment_bytes:
                self._cut_segment(key)
        self._spill_seconds += time.perf_counter() - started

    def _cut_segment(self, key: StreamKey) -> Optional[SegmentMeta]:
        """Write one stream's buffered arrays as a cataloged segment.

        Caller holds the lock.  Eviction hands over chunks in time order
        (the columnar store is globally sorted), so the concatenation is
        written as-is; the read path never assumes intra-segment order.
        """
        parts = self._buffers.pop(key, None)
        self._buffer_bytes.pop(key, None)
        if not parts:
            return None
        values = parts[0] if len(parts) == 1 else np.concatenate(parts)
        src, dst, side = key
        seq = self._manifest.next_seq
        self._manifest.next_seq += 1
        path = segment_filename(seq)
        info = write_segment(self.root / path, src, dst, side, values)
        meta = SegmentMeta(
            seq=seq,
            path=path,
            src=src,
            dst=dst,
            observed_at_destination=side,
            t_min=info.t_min,
            t_max=info.t_max,
            count=info.count,
            crc=info.crc,
            nbytes=info.nbytes,
        )
        self._manifest.segments.append(meta)
        self._manifest_dirty = True
        self.segments_written += 1
        self.spilled_records += info.count
        self.spilled_bytes += info.nbytes
        if self._m_segments is not None:
            self._m_segments.inc()
            self._m_records.inc(info.count)
            self._m_bytes.inc(info.nbytes)
        return meta

    def record_summary(self, summary: BlockSummary) -> None:
        """Buffer one materialized correlation summary row."""
        with self._lock:
            if summary.spectrum is not None:
                spec_key = (summary.client, summary.root, summary.block_start)
                if spec_key in self._spectra_seen:
                    summary = dataclasses.replace(
                        summary, spectrum=None, spectrum_size=None
                    )
                else:
                    self._spectra_seen.add(spec_key)
            self._pending_summaries.append(summary)
            if len(self._pending_summaries) >= self.summary_rows:
                self._cut_summaries()

    def _cut_summaries(self) -> Optional[SummaryMeta]:
        """Persist the pending summary rows as one JSON file (lock held)."""
        rows = self._pending_summaries
        if not rows:
            return None
        self._pending_summaries = []
        seq = self._manifest.next_seq
        self._manifest.next_seq += 1
        path = f"sum-{seq:08d}.json"
        payload = json.dumps([row.to_dict() for row in rows]) + "\n"
        full = self.root / path
        tmp = full.with_name(full.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, full)
        meta = SummaryMeta(
            seq=seq,
            path=path,
            count=len(rows),
            t_min=min(row.t_min for row in rows),
            t_max=max(row.t_max for row in rows),
            nbytes=len(payload.encode("utf-8")),
        )
        self._manifest.summaries.append(meta)
        self._manifest_dirty = True
        self.summary_rows_written += len(rows)
        if self._m_rows is not None:
            self._m_rows.inc(len(rows))
        return meta

    def checkpoint(self) -> None:
        """Persist pending summaries and the manifest if anything changed.

        The engine calls this once per refresh; segment buffers below the
        write-behind threshold stay buffered (that is the point), so a
        crash loses only the uncommitted tail.
        """
        started = time.perf_counter()
        with self._lock:
            if self._pending_summaries:
                self._cut_summaries()
            if self._manifest_dirty:
                save_manifest(self.root, self._manifest)
                self._manifest_dirty = False
        self._spill_seconds += time.perf_counter() - started

    def flush(self) -> int:
        """Force every buffered stream and summary to disk; returns the
        number of segments cut."""
        started = time.perf_counter()
        with self._lock:
            before = self.segments_written
            for key in sorted(self._buffers):
                self._cut_segment(key)
            self._cut_summaries()
            if self._manifest_dirty:
                save_manifest(self.root, self._manifest)
                self._manifest_dirty = False
            cut = self.segments_written - before
        self._spill_seconds += time.perf_counter() - started
        return cut

    def close(self) -> None:
        self.flush()

    def drain_spill_seconds(self) -> float:
        """Spill time accumulated since the last drain (ledger stage)."""
        seconds = self._spill_seconds
        self._spill_seconds = 0.0
        return seconds

    # -- cache-aside reads -----------------------------------------------------

    def segments(self) -> List[SegmentMeta]:
        """Catalog snapshot, in sequence order."""
        with self._lock:
            return list(self._manifest.segments)

    def summary_files(self) -> List[SummaryMeta]:
        with self._lock:
            return list(self._manifest.summaries)

    def query(
        self,
        src: str,
        dst: str,
        observed_at_destination: bool,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> np.ndarray:
        """Every spilled timestamp of one stream in ``[start, end)``.

        Stitches cataloged segments (through the mapping LRU) with the
        stream's not-yet-flushed write-behind buffer, so the answer is
        complete the moment eviction ran.  The result is an owned array
        in segment order, not globally sorted -- callers stitching with
        resident data sort the concatenation once.
        """
        key: StreamKey = (src, dst, bool(observed_at_destination))
        with self._lock:
            metas = [
                m
                for m in self._manifest.segments
                if m.stream == key and m.t_max >= start and m.t_min < end
            ]
            buffered = list(self._buffers.get(key, ()))
        parts: List[np.ndarray] = []
        for meta in metas:
            arr = self._mappings.get(meta)
            if start <= meta.t_min and meta.t_max < end:
                parts.append(arr)
            else:
                parts.append(arr[(arr >= start) & (arr < end)])
        for arr in buffered:
            parts.append(arr[(arr >= start) & (arr < end)])
        self._sync_mapping_metrics()
        if not parts:
            return np.empty(0, dtype=np.float64)
        out = np.concatenate(parts) if len(parts) > 1 else np.array(parts[0])
        return out

    def streams(self) -> List[StreamKey]:
        """Every stream with spilled data (cataloged or buffered)."""
        with self._lock:
            keys = {m.stream for m in self._manifest.segments}
            keys.update(self._buffers)
        return sorted(keys)

    def summaries(
        self,
        client: Optional[str] = None,
        root: Optional[str] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> List[BlockSummary]:
        """Materialized summary rows matching the filters, by block start.

        Only summary files whose time range overlaps ``[start, end)`` are
        read; pending (unflushed) rows are included so drift queries see
        the latest evictions without an explicit flush.
        """
        with self._lock:
            metas = [
                m
                for m in self._manifest.summaries
                if m.t_max >= start and m.t_min < end
            ]
            pending = list(self._pending_summaries)
        rows: List[BlockSummary] = []
        for meta in metas:
            path = self.root / meta.path
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except FileNotFoundError as exc:
                raise TraceError(
                    f"{path}: summary file in manifest but missing on disk"
                ) from exc
            except ValueError as exc:
                raise TraceError(f"{path}: summary file is not valid JSON: {exc}") from exc
            if not isinstance(data, list) or len(data) != meta.count:
                raise TraceError(
                    f"{path}: summary file does not match manifest entry "
                    f"seq {meta.seq}"
                )
            rows.extend(BlockSummary.from_dict(entry) for entry in data)
        rows.extend(pending)
        out = [
            row
            for row in rows
            if (client is None or row.client == client)
            and (root is None or row.root == root)
            and (src is None or row.src == src)
            and (dst is None or row.dst == dst)
            and row.t_max > start
            and row.t_min < end
        ]
        out.sort(key=lambda r: (r.block_start, r.client, r.root, r.src, r.dst))
        return out

    # -- maintenance -----------------------------------------------------------

    def compact(self, target_bytes: Optional[int] = None) -> int:
        """Merge small segments per stream; returns merges done.

        Each stream's segments (in sequence order, which is spill-time
        order) are rewritten as fewer, larger segments while their
        combined payload stays under ``target_bytes`` (default
        ``4 * segment_bytes``).  Replacement segments get fresh sequence
        numbers and the manifest is swapped atomically, so concurrent
        readers see either the old or the new catalog; the old files are
        unlinked afterwards (their mappings stay valid for any query
        still holding them).  Orphaned segment files -- left by a crash
        between segment write and manifest save -- are removed too.
        """
        if target_bytes is None:
            target_bytes = 4 * self.segment_bytes
        with self._lock:
            by_stream: Dict[StreamKey, List[SegmentMeta]] = {}
            for meta in self._manifest.segments:
                by_stream.setdefault(meta.stream, []).append(meta)
            groups: List[List[SegmentMeta]] = []
            for metas in by_stream.values():
                run: List[SegmentMeta] = []
                run_bytes = 0
                for meta in metas:
                    if run and run_bytes + meta.nbytes <= target_bytes:
                        run.append(meta)
                        run_bytes += meta.nbytes
                    else:
                        if run:
                            groups.append(run)
                        run = [meta]
                        run_bytes = meta.nbytes
                if run:
                    groups.append(run)
            merged = 0
            new_catalog: List[SegmentMeta] = []
            replaced: List[SegmentMeta] = []
            for group in groups:
                if len(group) == 1:
                    new_catalog.append(group[0])
                    continue
                src, dst, side = group[0].stream
                values = np.concatenate([self._mappings.get(m) for m in group])
                seq = self._manifest.next_seq
                self._manifest.next_seq += 1
                path = segment_filename(seq)
                info = write_segment(self.root / path, src, dst, side, values)
                new_catalog.append(
                    SegmentMeta(
                        seq=seq,
                        path=path,
                        src=src,
                        dst=dst,
                        observed_at_destination=side,
                        t_min=info.t_min,
                        t_max=info.t_max,
                        count=info.count,
                        crc=info.crc,
                        nbytes=info.nbytes,
                    )
                )
                replaced.extend(group)
                merged += 1
            if merged:
                new_catalog.sort(key=lambda m: m.seq)
                self._manifest.segments = new_catalog
                save_manifest(self.root, self._manifest)
                self._manifest_dirty = False
                for meta in replaced:
                    self._mappings.invalidate(meta.path)
                    try:
                        (self.root / meta.path).unlink()
                    except OSError:
                        pass
            cataloged = {m.path for m in self._manifest.segments}
            for orphan in self.root.glob("seg-*.rtb"):
                if orphan.name not in cataloged:
                    try:
                        orphan.unlink()
                    except OSError:
                        pass
        return merged

    # -- introspection ---------------------------------------------------------

    def _sync_mapping_metrics(self) -> None:
        if self._m_hits is None:
            return
        hits, misses = self._mappings.hits, self._mappings.misses
        last_hits, last_misses = self._mapping_synced
        if hits > last_hits:
            self._m_hits.inc(hits - last_hits)
        if misses > last_misses:
            self._m_misses.inc(misses - last_misses)
        self._mapping_synced = (hits, misses)

    def stats(self) -> dict:
        """JSON-able lake health snapshot (``repro stats --ingest``)."""
        with self._lock:
            buffered_records = sum(
                sum(a.size for a in parts) for parts in self._buffers.values()
            )
            pending_rows = len(self._pending_summaries)
            segments = len(self._manifest.segments)
            summary_files = len(self._manifest.summaries)
        return {
            "enabled": True,
            "root": str(self.root),
            "segments": segments,
            "segments_written": self.segments_written,
            "spilled_records": self.spilled_records,
            "spilled_bytes": self.spilled_bytes,
            "buffered_records": buffered_records,
            "summary_files": summary_files,
            "summary_rows": self.summary_rows_written,
            "pending_summary_rows": pending_rows,
            "mapping_hits": self._mappings.hits,
            "mapping_misses": self._mappings.misses,
            "mapping_hit_rate": self._mappings.hit_rate,
            "open_mappings": len(self._mappings),
        }
