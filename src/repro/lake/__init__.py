"""Tiered trace lake: write-behind spill, mmap reads, summary folds.

PR 5's bounded retention keeps collector memory flat by evicting chunks
older than the horizon -- to nowhere.  The lake gives eviction a second
tier: evicted timestamp arrays are written behind as time-indexed
``.rtb`` segments under a lake root, cataloged by a crash-safe JSON
manifest, and read back zero-copy through an LRU of open segment
mappings.  On top of the raw tier, the engine materializes per-(client,
front_end, edge) correlation summaries at block-eviction time so that
week-scale drift questions fold a few hundred cached lag-product rows
instead of re-correlating raw timestamps.

See ``docs/TRACES.md`` (segment/manifest format) and
``docs/PERFORMANCE.md`` (spill cost, fold-vs-recorrelate numbers).
"""

from repro.lake.lake import TraceLake
from repro.lake.manifest import (
    MANIFEST_NAME,
    LakeManifest,
    SegmentMeta,
    SummaryMeta,
    load_manifest,
    save_manifest,
)
from repro.lake.segments import (
    SegmentMappingLRU,
    read_segment,
    segment_filename,
    write_segment,
)
from repro.lake.summaries import BlockSummary, fold_summaries

__all__ = [
    "BlockSummary",
    "LakeManifest",
    "MANIFEST_NAME",
    "SegmentMappingLRU",
    "SegmentMeta",
    "SummaryMeta",
    "TraceLake",
    "fold_summaries",
    "load_manifest",
    "read_segment",
    "save_manifest",
    "segment_filename",
    "write_segment",
]
