"""Raw spill segments: one-section ``.rtb`` files plus an mmap LRU.

A segment is the binary columnar capture format of
:mod:`repro.tracing.storage` restricted to exactly one section -- the
magic followed by one CRC-checked ``(src, dst, side, timestamps)``
stream.  Reuse buys the full corruption contract for free: truncation,
byte flips and count mismatches all raise
:class:`~repro.errors.TraceError`, and the zero-copy
``read_capture_binary(..., mmap=True)`` path serves segment payloads as
views straight into the page cache.

:class:`SegmentMappingLRU` bounds how many segment mappings stay open:
historical queries touch segments in time order, so a small LRU keeps
the hot tail mapped while week-old segments fall out.  Eviction only
drops the cache's reference -- arrays already handed to a reader keep
their mapping alive by refcount, so a concurrent spill, compaction or
cache eviction can never invalidate data a query is still holding.
"""

from __future__ import annotations

import collections
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.lake.manifest import SegmentMeta
from repro.tracing.records import TimestampBatch
from repro.tracing.storage import (
    BINARY_MAGIC,
    encode_capture_section,
    read_capture_binary,
)


def segment_filename(seq: int) -> str:
    """Canonical segment filename for a manifest sequence number."""
    return f"seg-{seq:08d}.rtb"


@dataclass(frozen=True)
class SegmentWriteInfo:
    """What :func:`write_segment` committed (feeds the manifest entry)."""

    count: int
    crc: int
    nbytes: int
    t_min: float
    t_max: float


def write_segment(
    path: "os.PathLike[str]",
    src: str,
    dst: str,
    observed_at_destination: bool,
    values: np.ndarray,
) -> SegmentWriteInfo:
    """Write one spill segment; returns the manifest-entry fields.

    The payload is written whole to a temp file and renamed into place,
    so a crash can never leave a half-written file under the segment's
    final name.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    if values.size == 0:
        raise TraceError("refusing to write an empty lake segment")
    batch = TimestampBatch(src, dst, observed_at_destination, values)
    section, crc = encode_capture_section(batch)
    payload = BINARY_MAGIC + section
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return SegmentWriteInfo(
        count=int(values.size),
        crc=int(crc),
        nbytes=len(payload),
        t_min=float(values.min()),
        t_max=float(values.max()),
    )


def read_segment(path: "os.PathLike[str]", meta: SegmentMeta) -> np.ndarray:
    """Zero-copy read of one segment, cross-checked against its catalog entry.

    Any disagreement between the file and the manifest -- stream
    identity, record count, or the body CRC recorded at spill time --
    raises :class:`~repro.errors.TraceError`: a swapped or regenerated
    segment must never be served under a stale catalog entry.
    """
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(len(BINARY_MAGIC) + 4)
        batches = list(read_capture_binary(path, mmap=True))
    except OSError as exc:
        raise TraceError(f"{path}: cannot read lake segment: {exc}") from exc
    if len(prefix) == len(BINARY_MAGIC) + 4:
        stored_crc = int.from_bytes(prefix[len(BINARY_MAGIC):], "little")
        if stored_crc != meta.crc:
            raise TraceError(
                f"{path}: segment CRC {stored_crc:#010x} does not match "
                f"cataloged CRC {meta.crc:#010x} for seq {meta.seq}"
            )
    if len(batches) != 1:
        raise TraceError(
            f"{path}: lake segment must contain exactly one section, "
            f"found {len(batches)}"
        )
    batch = batches[0]
    if (
        batch.src != meta.src
        or batch.dst != meta.dst
        or batch.observed_at_destination != meta.observed_at_destination
        or len(batch) != meta.count
    ):
        raise TraceError(
            f"{path}: segment does not match manifest entry seq {meta.seq} "
            f"({batch.src!r}->{batch.dst!r} side={int(batch.observed_at_destination)} "
            f"count={len(batch)} vs cataloged {meta.src!r}->{meta.dst!r} "
            f"side={int(meta.observed_at_destination)} count={meta.count})"
        )
    return batch.timestamps


class SegmentMappingLRU:
    """Bounded cache of open segment mappings, keyed by segment path.

    ``get`` returns the segment's zero-copy timestamp array; a capacity
    overflow drops the least-recently-used entry (the mapping itself is
    freed once no returned array references it).  Thread-safe: the lake
    serves historical queries while the engine keeps spilling.
    """

    def __init__(self, root: "os.PathLike[str]", capacity: int = 64) -> None:
        if capacity < 1:
            raise TraceError(f"mapping cache capacity must be >= 1, got {capacity}")
        self._root = Path(root)
        self.capacity = int(capacity)
        self._entries: "collections.OrderedDict[Tuple[str, int], np.ndarray]" = (
            collections.OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, meta: SegmentMeta) -> np.ndarray:
        # The CRC in the key drops stale mappings when compaction rewrites
        # a segment sequence under a recycled filename.
        key = (meta.path, meta.crc)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
        array = read_segment(self._root / meta.path, meta)
        with self._lock:
            self.misses += 1
            self._entries[key] = array
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return array

    def invalidate(self, path: Optional[str] = None) -> None:
        """Drop cached mappings (all of them, or one segment's)."""
        with self._lock:
            if path is None:
                self._entries.clear()
            else:
                for key in [k for k in self._entries if k[0] == path]:
                    del self._entries[key]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
