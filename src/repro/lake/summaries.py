"""Materialized correlation summaries (the lake's precomputed views).

When the sliding-window correlator evicts its oldest block, the block's
contribution to the window aggregate -- the sum of every cached
lag-product vector involving it -- is about to be subtracted and lost.
The engine instead hands that row (plus the block's marginal mass/energy
statistics and, when the FFT kernel left one warm, the block's cached
spectrum) to the lake as a :class:`BlockSummary`, keyed by the service
class and edge it belongs to.

Folding summaries answers drift questions over arbitrary past spans by
pure vector addition: ``sum(lag_products)`` re-creates the span's raw
lag-product aggregate and the folded totals/energies normalize it,
skipping the correlation kernels entirely.  The fold is deterministic
(summaries are ordered by block start) but an *approximation* of a
from-scratch correlation over the span: block pairs straddling the span
boundary are attributed to their older block, and the boundary mass
corrections of :func:`repro.core.correlation._normalize` are replaced by
the whole-span masses -- an ``O(max_lag / span)`` relative effect, which
is why summary folds are meant for spans much longer than ``T_u`` (the
week-vs-Monday questions), not single-window forensics.

Arrays are serialized as base64 of their little-endian bytes, so a
summary round-trips bit-exactly through JSON.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.core.correlation import CorrelationSeries, fold_correlation
from repro.errors import CorrelationError, TraceError


def _encode_array(values: np.ndarray, dtype: str) -> str:
    return base64.b64encode(
        np.ascontiguousarray(values, dtype=dtype).tobytes()
    ).decode("ascii")


def _decode_array(text: str, dtype: str) -> np.ndarray:
    try:
        raw = base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise TraceError(f"lake summary: bad base64 payload: {exc}") from exc
    itemsize = np.dtype(dtype).itemsize
    if len(raw) % itemsize:
        raise TraceError(
            f"lake summary: payload length {len(raw)} not a multiple of {itemsize}"
        )
    return np.frombuffer(raw, dtype=dtype).copy()


@dataclass(frozen=True)
class BlockSummary:
    """One evicted block's materialized contribution for one (class, edge).

    ``lag_products`` is the block's summed pair-product row
    (``None`` for a quiet block: identically zero, but its length and
    zero masses still count toward the fold's normalization).
    ``spectrum`` carries the block's cached ``rfft`` when the engine's
    :class:`~repro.core.correlation.SpectrumCache` was warm at eviction.
    """

    client: str
    root: str
    src: str
    dst: str
    block_start: int  # absolute quantum index
    block_length: int  # quanta
    quantum: float
    x_total: float
    x_energy: float
    y_total: float
    y_energy: float
    lag_products: Optional[np.ndarray] = None
    spectrum: Optional[np.ndarray] = None
    spectrum_size: Optional[int] = None

    @property
    def t_min(self) -> float:
        return self.block_start * self.quantum

    @property
    def t_max(self) -> float:
        return (self.block_start + self.block_length) * self.quantum

    @property
    def quiet(self) -> bool:
        return self.lag_products is None

    def to_dict(self) -> dict:
        doc = {
            "client": self.client,
            "root": self.root,
            "src": self.src,
            "dst": self.dst,
            "block_start": self.block_start,
            "block_length": self.block_length,
            "quantum": self.quantum,
            "x_total": self.x_total,
            "x_energy": self.x_energy,
            "y_total": self.y_total,
            "y_energy": self.y_energy,
        }
        if self.lag_products is not None:
            doc["lag_products"] = _encode_array(self.lag_products, "<f8")
        if self.spectrum is not None:
            doc["spectrum"] = _encode_array(self.spectrum, "<c16")
            doc["spectrum_size"] = int(self.spectrum_size or 0)
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "BlockSummary":
        try:
            summary = cls(
                client=str(data["client"]),
                root=str(data["root"]),
                src=str(data["src"]),
                dst=str(data["dst"]),
                block_start=int(data["block_start"]),
                block_length=int(data["block_length"]),
                quantum=float(data["quantum"]),
                x_total=float(data["x_total"]),
                x_energy=float(data["x_energy"]),
                y_total=float(data["y_total"]),
                y_energy=float(data["y_energy"]),
                lag_products=(
                    _decode_array(data["lag_products"], "<f8")
                    if "lag_products" in data
                    else None
                ),
                spectrum=(
                    _decode_array(data["spectrum"], "<c16")
                    if "spectrum" in data
                    else None
                ),
                spectrum_size=(
                    int(data["spectrum_size"]) if "spectrum_size" in data else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"lake summary: malformed row: {exc}") from exc
        if summary.block_length < 1 or summary.quantum <= 0:
            raise TraceError("lake summary: bad block geometry")
        return summary


def fold_summaries(
    summaries: Iterable[BlockSummary],
    max_lag: Optional[int] = None,
) -> CorrelationSeries:
    """Fold many block summaries into one normalized correlation series.

    All summaries must share one quantum; rows are summed, masses and
    energies accumulate, and the span length is the total block length
    (quiet summaries contribute length but zero mass -- dropping them
    would silently inflate the span's mean rate).  See the module
    docstring for the approximation semantics versus a from-scratch
    correlation over the same span.
    """
    rows = sorted(summaries, key=lambda s: (s.block_start, s.src, s.dst))
    if not rows:
        raise CorrelationError("cannot fold an empty summary set")
    quantum = rows[0].quantum
    lag_sum: Optional[np.ndarray] = None
    n = 0
    x_total = x_energy = y_total = y_energy = 0.0
    for row in rows:
        if row.quantum != quantum:
            raise CorrelationError(
                f"summary quantum mismatch: {row.quantum} vs {quantum}"
            )
        n += row.block_length
        x_total += row.x_total
        x_energy += row.x_energy
        y_total += row.y_total
        y_energy += row.y_energy
        if row.lag_products is None:
            continue
        if lag_sum is None:
            lag_sum = row.lag_products.astype(np.float64, copy=True)
        elif row.lag_products.size != lag_sum.size:
            raise CorrelationError(
                f"summary lag-row length mismatch: {row.lag_products.size} "
                f"vs {lag_sum.size}"
            )
        else:
            lag_sum += row.lag_products
    if lag_sum is None:
        lag_sum = np.zeros((max_lag or 0) + 1, dtype=np.float64)
    if max_lag is not None:
        lag_sum = lag_sum[: max_lag + 1]
    return fold_correlation(
        lag_sum, n, x_total, x_energy, y_total, y_energy, quantum
    )
