"""Crash-safe segment catalog for the tiered trace lake.

The manifest is one JSON document at ``<root>/manifest.json`` listing
every committed segment (raw ``.rtb`` spill) and summary file
(materialized correlation rows).  It is the lake's source of truth: a
segment file not in the manifest does not exist as far as readers are
concerned, which is what makes the spill crash-safe -- the manifest is
replaced atomically (write temp + fsync + ``os.replace``) only *after*
its segments are fully on disk, so a crash mid-spill leaves at worst an
orphaned segment file that the next :meth:`~repro.lake.lake.TraceLake.compact`
sweeps up.

Loading validates aggressively and raises
:class:`~repro.errors.TraceError` on any malformed document; a corrupt
manifest must never be silently treated as an empty lake.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Union

from repro.errors import TraceError

PathLike = Union[str, "os.PathLike[str]"]

#: Manifest filename under the lake root.
MANIFEST_NAME = "manifest.json"

#: Manifest document format version.
MANIFEST_VERSION = 1


@dataclass(frozen=True)
class SegmentMeta:
    """Catalog entry for one raw spill segment (a one-section ``.rtb``)."""

    seq: int
    path: str  # filename relative to the lake root
    src: str
    dst: str
    observed_at_destination: bool
    t_min: float
    t_max: float
    count: int
    crc: int  # CRC-32 of the segment's section body (matches the file header)
    nbytes: int  # segment file size

    @property
    def stream(self) -> tuple:
        return (self.src, self.dst, self.observed_at_destination)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "path": self.path,
            "src": self.src,
            "dst": self.dst,
            "side": int(self.observed_at_destination),
            "t_min": self.t_min,
            "t_max": self.t_max,
            "count": self.count,
            "crc": self.crc,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentMeta":
        try:
            side = int(data["side"])
            if side not in (0, 1):
                raise ValueError(f"bad side {side}")
            meta = cls(
                seq=int(data["seq"]),
                path=str(data["path"]),
                src=str(data["src"]),
                dst=str(data["dst"]),
                observed_at_destination=bool(side),
                t_min=float(data["t_min"]),
                t_max=float(data["t_max"]),
                count=int(data["count"]),
                crc=int(data["crc"]),
                nbytes=int(data["nbytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"lake manifest: malformed segment entry: {exc}") from exc
        if meta.count < 0 or meta.nbytes < 0 or meta.seq < 0:
            raise TraceError(f"lake manifest: negative field in segment {meta.seq}")
        if meta.count and meta.t_min > meta.t_max:
            raise TraceError(
                f"lake manifest: inverted time range in segment {meta.seq}"
            )
        if os.path.sep in meta.path or meta.path in ("", ".", ".."):
            raise TraceError(
                f"lake manifest: segment path {meta.path!r} escapes the lake root"
            )
        return meta


@dataclass(frozen=True)
class SummaryMeta:
    """Catalog entry for one materialized-summary file (JSON rows)."""

    seq: int
    path: str
    count: int
    t_min: float
    t_max: float
    nbytes: int

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "path": self.path,
            "count": self.count,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "nbytes": self.nbytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SummaryMeta":
        try:
            meta = cls(
                seq=int(data["seq"]),
                path=str(data["path"]),
                count=int(data["count"]),
                t_min=float(data["t_min"]),
                t_max=float(data["t_max"]),
                nbytes=int(data["nbytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"lake manifest: malformed summary entry: {exc}") from exc
        if os.path.sep in meta.path or meta.path in ("", ".", ".."):
            raise TraceError(
                f"lake manifest: summary path {meta.path!r} escapes the lake root"
            )
        return meta


@dataclass
class LakeManifest:
    """In-memory manifest: segment + summary catalogs and the seq counter."""

    next_seq: int = 0
    segments: List[SegmentMeta] = None  # type: ignore[assignment]
    summaries: List[SummaryMeta] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.segments is None:
            self.segments = []
        if self.summaries is None:
            self.summaries = []

    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "next_seq": self.next_seq,
            "segments": [s.to_dict() for s in self.segments],
            "summaries": [s.to_dict() for s in self.summaries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LakeManifest":
        if not isinstance(data, dict):
            raise TraceError("lake manifest: document is not a JSON object")
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise TraceError(f"lake manifest: unsupported version {version!r}")
        try:
            next_seq = int(data["next_seq"])
            raw_segments = data["segments"]
            raw_summaries = data["summaries"]
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"lake manifest: malformed document: {exc}") from exc
        if not isinstance(raw_segments, list) or not isinstance(raw_summaries, list):
            raise TraceError("lake manifest: catalogs must be lists")
        segments = [SegmentMeta.from_dict(entry) for entry in raw_segments]
        summaries = [SummaryMeta.from_dict(entry) for entry in raw_summaries]
        seqs = [s.seq for s in segments] + [s.seq for s in summaries]
        if len(set(seqs)) != len(seqs):
            raise TraceError("lake manifest: duplicate sequence number")
        if seqs and next_seq <= max(seqs):
            raise TraceError(
                f"lake manifest: next_seq {next_seq} collides with cataloged "
                f"sequence {max(seqs)}"
            )
        return cls(next_seq=next_seq, segments=segments, summaries=summaries)


def load_manifest(root: PathLike) -> LakeManifest:
    """Load the manifest under ``root``; a missing file is an empty lake."""
    path = Path(root) / MANIFEST_NAME
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return LakeManifest()
    except UnicodeDecodeError as exc:
        raise TraceError(f"{path}: lake manifest is not UTF-8: {exc}") from exc
    except OSError as exc:
        raise TraceError(f"{path}: cannot read lake manifest: {exc}") from exc
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise TraceError(f"{path}: lake manifest is not valid JSON: {exc}") from exc
    return LakeManifest.from_dict(data)


def save_manifest(root: PathLike, manifest: LakeManifest) -> None:
    """Atomically replace the manifest under ``root``.

    Writes to a temp file in the same directory, fsyncs, then
    ``os.replace``s over the live manifest -- readers observe either the
    old or the new catalog, never a torn write.
    """
    root = Path(root)
    path = root / MANIFEST_NAME
    tmp = root / (MANIFEST_NAME + ".tmp")
    payload = json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
