"""Render flight-record dumps as human-readable timelines.

The Chrome trace export (:mod:`repro.obs.export`) targets Perfetto; this
module covers the terminal and the browser without any tooling: an ASCII
Gantt chart of each recorded refresh's span tree (with its diagnostic
events inlined), and an equivalent standalone SVG. Both operate on the
JSON-able dump produced by ``engine.dump_flight_record()`` /
:meth:`repro.obs.flight.FlightRecorder.dump`, fresh or reloaded from disk.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional

#: Characters of the label column in the ASCII chart.
_LABEL_WIDTH = 34
#: Span-tree depth beyond which indentation stops growing (cycle guard).
_MAX_DEPTH = 16

_ROW_HEIGHT = 18
_SVG_MARGIN = 16
_SVG_LABEL_PX = 240
_SVG_BAR_PX = 520

_CATEGORY_COLORS = {
    "engine": "#1f77b4",
    "pathmap": "#2ca02c",
    "tracer": "#ff7f0e",
    "correlator": "#9467bd",
    "replay": "#17becf",
}
_DEFAULT_COLOR = "#8c564b"
_EVENT_COLOR = "#d62728"


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def _span_color(name: str) -> str:
    prefix = name.split(".", 1)[0]
    return _CATEGORY_COLORS.get(prefix, _DEFAULT_COLOR)


def _span_label(span: dict) -> str:
    """Span name plus its most identifying attribute, if any."""
    attrs = span.get("attributes", {})
    for key in ("service_class", "edge", "node", "subscriber"):
        if key in attrs:
            return f"{span['name']} [{attrs[key]}]"
    return span["name"]


def _ordered_with_depth(spans: List[dict]) -> List[tuple]:
    """Spans sorted by start time, each paired with its nesting depth."""
    by_id = {s["span_id"]: s for s in spans}
    depths: Dict[int, int] = {}

    def depth_of(span: dict) -> int:
        cached = depths.get(span["span_id"])
        if cached is not None:
            return cached
        depth = 0
        current = span
        while current.get("parent_id") in by_id and depth < _MAX_DEPTH:
            current = by_id[current["parent_id"]]
            depth += 1
        depths[span["span_id"]] = depth
        return depth

    ordered = sorted(spans, key=lambda s: (s["start"], s["span_id"]))
    return [(span, depth_of(span)) for span in ordered]


def _event_label(event: dict) -> str:
    attrs = event.get("attributes", {})
    detail = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    text = f"{event['kind']} @ t={event['time']:.3f}"
    return f"{text} ({detail})" if detail else text


def render_timeline_ascii(
    dump: dict, width: int = 100, last: Optional[int] = None
) -> str:
    """ASCII Gantt chart of a flight-record dump, one block per refresh.

    Each span is a row: indented label, a bar positioned within the
    refresh's own time extent, and the span's duration. Diagnostic events
    follow their refresh as ``*`` lines. Frames recorded with tracing off
    still show their sample numbers and events.
    """
    frames = dump.get("frames", [])
    if last is not None:
        frames = frames[len(frames) - min(last, len(frames)):]
    bar_width = max(10, width - _LABEL_WIDTH - 12)
    lines: List[str] = []
    if not frames:
        return "(empty flight record)"
    for frame in frames:
        spans = frame.get("spans", [])
        events = frame.get("events", [])
        lines.append(
            f"refresh {frame.get('sequence', '?')} @ t={frame.get('time', 0.0):.3f}"
            f"  ({len(spans)} spans, {len(events)} events)"
        )
        sample = frame.get("sample") or {}
        if sample:
            lines.append(
                f"  sample: refresh {_format_seconds(sample.get('refresh_seconds', 0.0))}"
                f", pathmap {_format_seconds(sample.get('pathmap_seconds', 0.0))}"
                f", {sample.get('blocks_ingested', 0)} blocks"
                f", {sample.get('correlators', 0)} correlators"
                f", {sample.get('spikes', 0)} spikes"
            )
        if spans:
            t0 = min(s["start"] for s in spans)
            t1 = max((s["end"] if s["end"] is not None else s["start"]) for s in spans)
            extent = max(t1 - t0, 1e-9)
            for span, depth in _ordered_with_depth(spans):
                end = span["end"] if span["end"] is not None else span["start"]
                label = ("  " * min(depth, _MAX_DEPTH) + _span_label(span))[:_LABEL_WIDTH]
                begin_col = int((span["start"] - t0) / extent * bar_width)
                end_col = int((end - t0) / extent * bar_width)
                end_col = max(end_col, begin_col + 1)
                bar = " " * begin_col + "#" * (end_col - begin_col)
                duration = _format_seconds(max(end - span["start"], 0.0))
                error = "  !" + span["error"] if span.get("error") else ""
                lines.append(
                    f"  {label:<{_LABEL_WIDTH}} |{bar:<{bar_width}}| {duration}{error}"
                )
        for event in events:
            lines.append(f"  * {_event_label(event)}")
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def render_timeline_svg(dump: dict, last: Optional[int] = None) -> str:
    """Standalone SVG Gantt chart of a flight-record dump.

    Same layout as the ASCII chart -- one band per refresh, one bar per
    span, diagnostic events as markers -- styled like the other
    :mod:`repro.analysis` renderers (monospace, dependency-free).
    """
    frames = dump.get("frames", [])
    if last is not None:
        frames = frames[len(frames) - min(last, len(frames)):]

    rows: List[tuple] = []  # ("header"|"span"|"event", payload)
    for frame in frames:
        spans = frame.get("spans", [])
        rows.append(("header", frame))
        if spans:
            t0 = min(s["start"] for s in spans)
            t1 = max((s["end"] if s["end"] is not None else s["start"]) for s in spans)
            extent = max(t1 - t0, 1e-9)
            for span, depth in _ordered_with_depth(spans):
                rows.append(("span", (span, depth, t0, extent)))
        for event in frame.get("events", []):
            rows.append(("event", event))

    width = _SVG_MARGIN * 2 + _SVG_LABEL_PX + _SVG_BAR_PX + 90
    height = _SVG_MARGIN * 2 + max(1, len(rows)) * _ROW_HEIGHT
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        "<title>repro flight-record timeline</title>",
    ]
    x_bar = _SVG_MARGIN + _SVG_LABEL_PX
    y = _SVG_MARGIN
    for kind, payload in rows:
        mid = y + _ROW_HEIGHT - 6
        if kind == "header":
            frame = payload
            parts.append(
                f'<text x="{_SVG_MARGIN}" y="{mid}" font-weight="bold">'
                f"refresh {frame.get('sequence', '?')} @ "
                f"t={frame.get('time', 0.0):.3f} "
                f"({len(frame.get('spans', []))} spans, "
                f"{len(frame.get('events', []))} events)</text>"
            )
        elif kind == "span":
            span, depth, t0, extent = payload
            end = span["end"] if span["end"] is not None else span["start"]
            x0 = x_bar + (span["start"] - t0) / extent * _SVG_BAR_PX
            bar = max((end - span["start"]) / extent * _SVG_BAR_PX, 1.5)
            label = (" " * 2 * min(depth, _MAX_DEPTH)) + _span_label(span)
            parts.append(
                f'<text x="{_SVG_MARGIN}" y="{mid}">{html.escape(label)}</text>'
            )
            parts.append(
                f'<rect x="{x0:.1f}" y="{y + 3}" width="{bar:.1f}" '
                f'height="{_ROW_HEIGHT - 7}" fill="{_span_color(span["name"])}" '
                f'fill-opacity="0.8"><title>{html.escape(_span_label(span))}: '
                f"{_format_seconds(max(end - span['start'], 0.0))}</title></rect>"
            )
            parts.append(
                f'<text x="{x0 + bar + 4:.1f}" y="{mid}" fill="#555">'
                f"{_format_seconds(max(end - span['start'], 0.0))}</text>"
            )
        else:
            event = payload
            parts.append(
                f'<circle cx="{_SVG_MARGIN + 4}" cy="{mid - 4}" r="3" '
                f'fill="{_EVENT_COLOR}"/>'
            )
            parts.append(
                f'<text x="{_SVG_MARGIN + 12}" y="{mid}" fill="{_EVENT_COLOR}">'
                f"{html.escape(_event_label(event))}</text>"
            )
        y += _ROW_HEIGHT
    parts.append("</svg>")
    return "\n".join(parts)


def write_timeline_svg(dump: dict, path: str, last: Optional[int] = None) -> None:
    """Render and save the SVG timeline to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_timeline_svg(dump, last=last))
        handle.write("\n")
