"""Dependency-free SVG rendering of service graphs.

The paper's Section 5: "We are also building visualization interfaces
that would highlight interesting performance behaviors of service paths."
This renderer lays the graph out in causal layers (by cumulative delay),
draws delay-labelled edges, and fills bottleneck nodes grey -- a direct
visual analogue of the paper's Figures 5 and 6, viewable in any browser.
"""

from __future__ import annotations

import html
from typing import Dict, List, Tuple

from repro.core.bottleneck import find_bottlenecks
from repro.core.service_graph import NodeId, ServiceGraph

NODE_WIDTH = 96
NODE_HEIGHT = 34
H_GAP = 70
V_GAP = 46
MARGIN = 24


def _format_delay(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _layer_assignment(graph: ServiceGraph) -> Dict[NodeId, int]:
    """Causal layering: a node's layer is the hop distance of its first
    visit along any root-to-leaf path (client = 0)."""
    layers: Dict[NodeId, int] = {graph.client: 0, graph.root: 1}
    for path in graph.paths(max_paths=200):
        for depth, node in enumerate(path.nodes):
            if node not in layers or depth < layers[node]:
                layers[node] = depth
    # Unreached nodes (edge targets never on a simple path) trail behind.
    worst = max(layers.values(), default=0)
    for node in graph.nodes:
        layers.setdefault(node, worst + 1)
    return layers


def _positions(layers: Dict[NodeId, int]) -> Dict[NodeId, Tuple[float, float]]:
    columns: Dict[int, List[NodeId]] = {}
    for node, layer in layers.items():
        columns.setdefault(layer, []).append(node)
    positions: Dict[NodeId, Tuple[float, float]] = {}
    for layer, nodes in columns.items():
        for row, node in enumerate(sorted(nodes)):
            x = MARGIN + layer * (NODE_WIDTH + H_GAP)
            y = MARGIN + row * (NODE_HEIGHT + V_GAP)
            positions[node] = (x, y)
    return positions


def render_svg(
    graph: ServiceGraph,
    mark_bottlenecks: bool = True,
    bottleneck_share: float = 0.30,
) -> str:
    """Render one service graph as a standalone SVG document."""
    grey = set()
    if mark_bottlenecks:
        grey = set(find_bottlenecks(graph, bottleneck_share).bottlenecks)
    layers = _layer_assignment(graph)
    positions = _positions(layers)

    width = MARGIN * 2 + (max(layers.values(), default=0) + 1) * (NODE_WIDTH + H_GAP)
    rows = max(
        (sum(1 for n in layers.values() if n == layer) for layer in set(layers.values())),
        default=1,
    )
    height = MARGIN * 2 + rows * (NODE_HEIGHT + V_GAP) + 20

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        '<defs><marker id="arrow" viewBox="0 0 8 8" refX="8" refY="4" '
        'markerWidth="7" markerHeight="7" orient="auto">'
        '<path d="M0,0 L8,4 L0,8 z" fill="#444"/></marker></defs>',
        f'<title>service class of {html.escape(graph.client)}</title>',
    ]

    # Edges first (under the nodes).
    for edge in sorted(graph.edges, key=lambda e: (e.src, e.dst)):
        x1, y1 = positions[edge.src]
        x2, y2 = positions[edge.dst]
        forward = layers[edge.src] < layers[edge.dst]
        sx = x1 + NODE_WIDTH if forward else x1
        ex = x2 if forward else x2 + NODE_WIDTH
        sy = y1 + NODE_HEIGHT / 2
        ey = y2 + NODE_HEIGHT / 2
        if forward:
            parts.append(
                f'<line x1="{sx}" y1="{sy}" x2="{ex}" y2="{ey}" '
                'stroke="#444" marker-end="url(#arrow)"/>'
            )
        else:
            # Return edge: curve below the layer band.
            dip = max(sy, ey) + NODE_HEIGHT
            parts.append(
                f'<path d="M {sx} {sy} Q {(sx + ex) / 2} {dip} {ex} {ey}" '
                'fill="none" stroke="#999" stroke-dasharray="4 3" '
                'marker-end="url(#arrow)"/>'
            )
        label = ", ".join(_format_delay(d) for d in edge.delays[:3])
        lx = (sx + ex) / 2
        ly = (sy + ey) / 2 - 4 if forward else max(sy, ey) + NODE_HEIGHT / 2 + 6
        parts.append(
            f'<text x="{lx}" y="{ly}" text-anchor="middle" '
            f'fill="#333">{html.escape(label)}</text>'
        )

    node_delays = graph.node_delays()
    for node, (x, y) in positions.items():
        fill = "#d0d0d0" if node in grey else "#ffffff"
        shape = (
            f'<ellipse cx="{x + NODE_WIDTH / 2}" cy="{y + NODE_HEIGHT / 2}" '
            f'rx="{NODE_WIDTH / 2}" ry="{NODE_HEIGHT / 2}" '
            f'fill="{fill}" stroke="#222"/>'
            if node == graph.client
            else f'<rect x="{x}" y="{y}" width="{NODE_WIDTH}" '
                 f'height="{NODE_HEIGHT}" rx="4" fill="{fill}" stroke="#222"/>'
        )
        parts.append(shape)
        parts.append(
            f'<text x="{x + NODE_WIDTH / 2}" y="{y + NODE_HEIGHT / 2 - 2}" '
            f'text-anchor="middle" font-weight="bold">{html.escape(node)}</text>'
        )
        if node in node_delays:
            parts.append(
                f'<text x="{x + NODE_WIDTH / 2}" y="{y + NODE_HEIGHT / 2 + 11}" '
                f'text-anchor="middle" fill="#555">'
                f'{_format_delay(node_delays[node])}</text>'
            )

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(graph: ServiceGraph, path: str, **kwargs) -> None:
    """Render and save to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(graph, **kwargs))


#: Categorical line colours for the series chart.
_SERIES_COLORS = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
                  "#8c564b", "#17becf"]


def render_series_svg(
    times,
    series: Dict[str, List[float]],
    title: str = "",
    y_label: str = "delay (ms)",
    width: int = 640,
    height: int = 300,
    y_scale: float = 1e3,
) -> str:
    """Line chart of per-refresh delay series (the Figure 7 plot shape).

    Parameters
    ----------
    times:
        Shared x values (refresh times, seconds).
    series:
        ``{label: values}``; each list aligned with ``times`` (shorter
        series are plotted over their prefix).
    y_scale:
        Multiplier applied to y values before plotting (default:
        seconds -> milliseconds).
    """
    times = list(times)
    if not times or not series:
        raise ValueError("render_series_svg needs at least one point")
    pad_l, pad_r, pad_t, pad_b = 56, 16, 28, 36
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b

    x_min, x_max = min(times), max(times)
    x_span = (x_max - x_min) or 1.0
    all_values = [v * y_scale for vs in series.values() for v in vs]
    y_min, y_max = 0.0, max(all_values) * 1.1 or 1.0

    def sx(t):
        return pad_l + (t - x_min) / x_span * plot_w

    def sy(v):
        return pad_t + plot_h - (v * y_scale - y_min) / (y_max - y_min) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect x="{pad_l}" y="{pad_t}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#888"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="16" text-anchor="middle" '
            f'font-weight="bold">{html.escape(title)}</text>'
        )
    # y gridlines + labels.
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        value = y_min + frac * (y_max - y_min)
        y = pad_t + plot_h - frac * plot_h
        parts.append(
            f'<line x1="{pad_l}" y1="{y}" x2="{pad_l + plot_w}" y2="{y}" '
            'stroke="#ddd"/>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{y + 3}" text-anchor="end">'
            f'{value:.0f}</text>'
        )
    parts.append(
        f'<text x="{pad_l / 3}" y="{pad_t + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 {pad_l / 3} {pad_t + plot_h / 2})">'
        f'{html.escape(y_label)}</text>'
    )
    # x labels at the ends.
    parts.append(
        f'<text x="{pad_l}" y="{height - 10}" text-anchor="start">'
        f'{x_min:.0f}s</text>'
    )
    parts.append(
        f'<text x="{pad_l + plot_w}" y="{height - 10}" text-anchor="end">'
        f'{x_max:.0f}s</text>'
    )
    # series lines + legend.
    for index, (label, values) in enumerate(sorted(series.items())):
        color = _SERIES_COLORS[index % len(_SERIES_COLORS)]
        points = " ".join(
            f"{sx(t):.1f},{sy(v):.1f}" for t, v in zip(times, values)
        )
        parts.append(
            f'<polyline points="{points}" fill="none" stroke="{color}" '
            'stroke-width="1.5"/>'
        )
        ly = pad_t + 12 + index * 14
        parts.append(
            f'<line x1="{pad_l + plot_w - 120}" y1="{ly - 4}" '
            f'x2="{pad_l + plot_w - 100}" y2="{ly - 4}" stroke="{color}" '
            'stroke-width="2"/>'
        )
        parts.append(
            f'<text x="{pad_l + plot_w - 94}" y="{ly}">'
            f'{html.escape(label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)
