"""Long-horizon drift queries over the trace lake (``repro history``).

Answers "has the delay between these services drifted since last week?"
without replaying a week of traces.  Two estimators over the same span:

``span_estimate``
    Folds the lake's **materialized correlation summaries** (persisted
    at correlator-eviction time, :mod:`repro.lake.summaries`) by pure
    vector addition -- no correlation kernels run.  This is the fast
    path the ``benchmarks/test_lake_speedup.py`` gate measures, and it
    carries the fold's documented ``O(max_lag / span)`` boundary
    approximation.

``raw_span_estimate``
    Re-correlates from the **raw spilled timestamps** (stitched through
    the collector's cache-aside read path semantics): density series are
    rebuilt over the span and pushed through
    :func:`~repro.core.correlation.correlate_sparse`.  Exact, slow, and
    the reference the speedup is measured against.

Both peak-pick the normalized correlation, so their delay estimates
agree whenever the span's signal is stationary enough for the fold's
boundary approximation to wash out (the long-span regime summaries are
built for).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

import numpy as np

from repro.config import PathmapConfig
from repro.core.correlation import CorrelationSeries, correlate_sparse
from repro.core.timeseries import build_density_series
from repro.errors import AnalysisError
from repro.lake.lake import TraceLake
from repro.lake.summaries import BlockSummary, fold_summaries


@dataclasses.dataclass(frozen=True)
class SpanEstimate:
    """One span's correlation-derived delay estimate for a (class, edge)."""

    client: str
    root: str
    src: str
    dst: str
    #: Span actually covered (block-aligned for summary folds).
    start: float
    end: float
    #: Window length in quanta the correlation was normalized over.
    n: int
    #: Summary rows folded (0 for raw replays).
    blocks: int
    #: Peak-correlation lag converted to seconds (NaN when degenerate).
    delay: float
    #: Correlation value at the peak.
    peak: float
    degenerate: bool
    #: ``"summaries"`` or ``"raw"``.
    source: str
    series: CorrelationSeries

    def to_dict(self) -> dict:
        return {
            "client": self.client,
            "root": self.root,
            "src": self.src,
            "dst": self.dst,
            "start": self.start,
            "end": self.end,
            "n": self.n,
            "blocks": self.blocks,
            "delay": self.delay,
            "peak": self.peak,
            "degenerate": self.degenerate,
            "source": self.source,
        }


def _peak(series: CorrelationSeries) -> Tuple[float, float]:
    """(delay seconds, peak value); NaN delay for degenerate series."""
    if series.degenerate or series.values.size == 0:
        return float("nan"), 0.0
    lag = int(np.argmax(series.values))
    return lag * series.quantum, float(series.values[lag])


def span_estimate(
    lake: TraceLake,
    client: str,
    root: str,
    src: str,
    dst: str,
    start: float = float("-inf"),
    end: float = float("inf"),
    max_lag: Optional[int] = None,
) -> SpanEstimate:
    """Delay estimate for a span by folding materialized summaries."""
    rows: List[BlockSummary] = lake.summaries(
        client=client, root=root, src=src, dst=dst, start=start, end=end
    )
    if not rows:
        raise AnalysisError(
            f"no materialized summaries for ({client}, {root}) x "
            f"({src}, {dst}) in [{start}, {end})"
        )
    series = fold_summaries(rows, max_lag=max_lag)
    delay, peak = _peak(series)
    return SpanEstimate(
        client=client,
        root=root,
        src=src,
        dst=dst,
        start=min(r.t_min for r in rows),
        end=max(r.t_max for r in rows),
        n=series.n,
        blocks=len(rows),
        delay=delay,
        peak=peak,
        degenerate=series.degenerate,
        source="summaries",
        series=series,
    )


def _lake_edge_stamps(
    lake: TraceLake, src: str, dst: str, start: float, end: float
) -> np.ndarray:
    """One edge's spilled timestamps in ``[start, end)``, sorted.

    Destination-side captures preferred, source-side fallback -- the
    collector's Algorithm 1 signal selection applied to the lake's
    stream catalog.
    """
    streams = set(lake.streams())
    for at_dst in (True, False):
        if (src, dst, at_dst) in streams:
            return np.sort(lake.query(src, dst, at_dst, start=start, end=end))
    return np.empty(0, dtype=np.float64)


def raw_span_estimate(
    lake: TraceLake,
    config: PathmapConfig,
    client: str,
    root: str,
    src: str,
    dst: str,
    start: float,
    end: float,
    max_lag: Optional[int] = None,
) -> SpanEstimate:
    """Delay estimate for a span by re-correlating raw spilled traces.

    The exact (kernel-running) comparator for :func:`span_estimate`:
    reference and signal density series are rebuilt from the lake's raw
    segments over ``[start, end)`` and correlated from scratch.
    """
    if not (math.isfinite(start) and math.isfinite(end)) or start >= end:
        raise AnalysisError(f"raw replay needs a finite span, got [{start}, {end})")
    ref_stamps = _lake_edge_stamps(lake, client, root, start, end)
    sig_stamps = _lake_edge_stamps(lake, src, dst, start, end)
    if ref_stamps.size == 0 or sig_stamps.size == 0:
        raise AnalysisError(
            f"no spilled traces for ({client}, {root}) x ({src}, {dst}) "
            f"in [{start}, {end})"
        )
    tau = config.quantum
    window_start = int(np.floor(start / tau))
    window_length = max(1, int(round((end - start) / tau)))
    ref_series = build_density_series(
        ref_stamps,
        quantum=tau,
        sampling_quanta=config.sampling_quanta,
        window_start=window_start,
        window_length=window_length,
    )
    sig_series = build_density_series(
        sig_stamps,
        quantum=tau,
        sampling_quanta=config.sampling_quanta,
        window_start=window_start,
        window_length=window_length,
    )
    series = correlate_sparse(ref_series, sig_series, max_lag=max_lag)
    delay, peak = _peak(series)
    return SpanEstimate(
        client=client,
        root=root,
        src=src,
        dst=dst,
        start=window_start * tau,
        end=(window_start + window_length) * tau,
        n=series.n,
        blocks=0,
        delay=delay,
        peak=peak,
        degenerate=series.degenerate,
        source="raw",
        series=series,
    )


@dataclasses.dataclass(frozen=True)
class DriftReport:
    """Delay drift of one (class, edge) between two spans."""

    baseline: SpanEstimate
    current: SpanEstimate

    @property
    def drift_seconds(self) -> float:
        return self.current.delay - self.baseline.delay

    @property
    def drift_quanta(self) -> int:
        if math.isnan(self.drift_seconds):
            return 0
        return int(round(self.drift_seconds / self.baseline.series.quantum))

    @property
    def comparable(self) -> bool:
        return not (self.baseline.degenerate or self.current.degenerate)

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline.to_dict(),
            "current": self.current.to_dict(),
            "drift_seconds": self.drift_seconds,
            "drift_quanta": self.drift_quanta,
            "comparable": self.comparable,
        }


def delay_drift(
    lake: TraceLake,
    client: str,
    root: str,
    src: str,
    dst: str,
    baseline_span: Tuple[float, float],
    current_span: Tuple[float, float],
    max_lag: Optional[int] = None,
) -> DriftReport:
    """Compare a (class, edge) delay across two spans via summary folds."""
    baseline = span_estimate(
        lake, client, root, src, dst, baseline_span[0], baseline_span[1], max_lag
    )
    current = span_estimate(
        lake, client, root, src, dst, current_span[0], current_span[1], max_lag
    )
    return DriftReport(baseline=baseline, current=current)
