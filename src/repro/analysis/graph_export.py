"""Interchange exports of service graphs (networkx, edge lists).

Downstream users live in the Python graph ecosystem; a
:class:`networkx.DiGraph` view lets them run centrality, dominator, or
flow analyses on pathmap output directly. networkx is an *optional*
dependency: importing this module without it raises a clear error only
when the conversion is actually requested.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.service_graph import NodeId, ServiceGraph
from repro.errors import AnalysisError


def to_networkx(graph: ServiceGraph):
    """Convert to a :class:`networkx.DiGraph`.

    Node attributes: ``role`` ("client" / "root" / "service") and
    ``delay`` (the node's computation delay where defined). Edge
    attributes: ``delays`` (all spike labels) and ``delay`` (minimum).
    """
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise AnalysisError(
            "networkx is required for to_networkx(); pip install networkx"
        ) from exc

    out = nx.DiGraph(client=graph.client, root=graph.root)
    node_delays = graph.node_delays()
    for node in graph.nodes:
        if node == graph.client:
            role = "client"
        elif node == graph.root:
            role = "root"
        else:
            role = "service"
        attrs = {"role": role}
        if node in node_delays:
            attrs["delay"] = node_delays[node]
        out.add_node(node, **attrs)
    for edge in graph.edges:
        out.add_edge(
            edge.src, edge.dst, delays=list(edge.delays), delay=edge.min_delay
        )
    return out


def to_edge_list(graph: ServiceGraph) -> List[Tuple[NodeId, NodeId, float]]:
    """Flat ``(src, dst, min_delay)`` triples, sorted by delay."""
    return sorted(
        ((e.src, e.dst, e.min_delay) for e in graph.edges),
        key=lambda item: item[2],
    )


def adjacency(graph: ServiceGraph) -> Dict[NodeId, List[NodeId]]:
    """Successor lists for every node (simple dict form)."""
    return {node: graph.successors(node) for node in sorted(graph.nodes)}
