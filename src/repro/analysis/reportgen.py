"""Structured diagnosis reports from pathmap output.

Turns a :class:`~repro.core.pathmap.PathmapResult` into the report a
system administrator would want after an incident: per-class paths,
per-node delay attribution, bottlenecks, and end-to-end latencies -- as a
plain dict (JSON-ready) and as readable text. This is the automation the
paper promises in Section 1: "E2EProf can be used to automate performance
diagnosis, thereby reducing such maintenance costs."
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.bottleneck import find_bottlenecks
from repro.core.pathmap import PathmapResult
from repro.core.service_graph import ServiceGraph
from repro.errors import AnalysisError
from repro.management.monitor import server_side_latency


def summarize_graph(graph: ServiceGraph, bottleneck_share: float = 0.30) -> Dict:
    """JSON-ready summary of one service class's graph."""
    report = find_bottlenecks(graph, threshold_share=bottleneck_share)
    paths = graph.paths()
    try:
        latency = server_side_latency(graph)
    except AnalysisError:
        latency = None
    return {
        "client": graph.client,
        "root": graph.root,
        "end_to_end_latency": latency,
        "paths": [
            {
                "nodes": list(path.nodes),
                "cumulative_delays": list(path.cumulative_delays),
                "total_delay": path.total_delay,
            }
            for path in paths
        ],
        "node_delays": dict(sorted(report.node_delays.items())),
        "bottlenecks": list(report.bottlenecks),
        "edges": [
            {"src": e.src, "dst": e.dst, "delays": list(e.delays)}
            for e in sorted(graph.edges, key=lambda e: e.min_delay)
        ],
    }


def summarize_result(
    result: PathmapResult, bottleneck_share: float = 0.30
) -> Dict:
    """JSON-ready summary of a whole analysis pass."""
    return {
        "classes": {
            f"{client}@{root}": summarize_graph(graph, bottleneck_share)
            for (client, root), graph in sorted(result.graphs.items())
        },
        "stats": {
            "graphs": result.stats.graphs,
            "correlations": result.stats.correlations,
            "spikes": result.stats.spikes,
            "edges_discovered": result.stats.edges_discovered,
            "elapsed_seconds": result.stats.elapsed_seconds,
        },
    }


def report_text(result: PathmapResult, bottleneck_share: float = 0.30) -> str:
    """Readable multi-class diagnosis report."""
    summary = summarize_result(result, bottleneck_share)
    lines: List[str] = ["E2EProf diagnosis report", "=" * 24]
    for name, cls in summary["classes"].items():
        lines.append("")
        lines.append(f"service class {name}")
        latency = cls["end_to_end_latency"]
        if latency is not None:
            lines.append(f"  end-to-end latency: {latency * 1e3:.1f} ms")
        for path in cls["paths"]:
            chain = " -> ".join(path["nodes"])
            lines.append(f"  path: {chain}  ({path['total_delay'] * 1e3:.1f} ms)")
        if cls["bottlenecks"]:
            worst = cls["bottlenecks"][0]
            share = (
                cls["node_delays"][worst] / sum(cls["node_delays"].values())
                if cls["node_delays"]
                else 0.0
            )
            lines.append(f"  bottleneck: {worst} ({share:.0%} of attributed delay)")
        else:
            lines.append("  bottleneck: none (delay evenly spread)")
    stats = summary["stats"]
    lines.append("")
    lines.append(
        f"analysis: {stats['graphs']} classes, {stats['edges_discovered']} causal "
        f"edges, {stats['correlations']} correlations in "
        f"{stats['elapsed_seconds']:.2f}s"
    )
    return "\n".join(lines)


def report_json(result: PathmapResult, indent: Optional[int] = 2) -> str:
    """The structured summary serialized as JSON."""
    return json.dumps(summarize_result(result), indent=indent, sort_keys=True)


class RefreshJournal:
    """Subscriber that appends one JSON line per engine refresh to a file.

    The durable record of an online monitoring session: each line is
    ``{"time": ..., **summarize_result(...)}``, so incidents can be
    reconstructed after the fact (and the journal is itself an input to
    offline tooling).
    """

    def __init__(self, path: str, bottleneck_share: float = 0.30) -> None:
        self.path = path
        self.bottleneck_share = bottleneck_share
        self.entries = 0
        # Truncate: a journal documents one session.
        open(path, "w", encoding="utf-8").close()

    def __call__(self, now: float, result: PathmapResult) -> None:
        record = {"time": now}
        record.update(summarize_result(result, self.bottleneck_share))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
        self.entries += 1

    def subscribe_to(self, engine: "object") -> None:
        engine.subscribe(self)


def read_journal(path: str) -> List[Dict]:
    """Load a refresh journal back into memory."""
    out: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
