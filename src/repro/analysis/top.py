"""Render refresh-ledger history as a live terminal cost view.

The ``repro top`` subcommand is the paper's Figure 9 argument as a
dashboard: while the engine runs, every refresh's
:class:`~repro.obs.ledger.RefreshLedger` feeds a redrawn screen showing
the refresh rate, where the wall time goes (per-stage bars with last/p50
milliseconds), which correlation kernels the density dispatch routed rows
to (with their measured ns/row EWMAs), and how much work the quiet-skip
and cache optimizations avoided.

The renderer is a pure function over ledger history, so it serves three
masters: the live ANSI view, the ``--once`` / non-tty single frame, and
the human-readable half of ``repro profile``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.ledger import (
    CORRELATION_KERNELS,
    PIPELINE_STAGES,
    RefreshLedger,
)

#: Width of the per-stage bar column, in characters.
_BAR_WIDTH = 24
#: Eighth-block characters for sub-cell bar resolution.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _fmt_ms(seconds: Optional[float]) -> str:
    """Milliseconds with sensible precision ("-" for None)."""
    if seconds is None:
        return "-"
    ms = seconds * 1e3
    if ms >= 100.0:
        return f"{ms:.0f}ms"
    if ms >= 1.0:
        return f"{ms:.2f}ms"
    return f"{ms * 1e3:.1f}us"


def _fmt_ns(value: Optional[float]) -> str:
    """Nanoseconds-per-row figure ("-" until the EWMA has warmed)."""
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.2f}us"
    return f"{value:.0f}ns"


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    """A unicode bar filling ``fraction`` of ``width`` cells."""
    fraction = min(1.0, max(0.0, fraction))
    eighths = int(round(fraction * width * 8))
    full, rem = divmod(eighths, 8)
    bar = "█" * full + (_BLOCKS[rem] if rem else "")
    return bar.ljust(width)


def render_top(
    ledgers: Sequence[RefreshLedger],
    ewma: Optional[Dict[str, dict]] = None,
    title: str = "repro top",
) -> str:
    """One screenful of cost accounting over recent ledgers.

    Parameters
    ----------
    ledgers:
        Recent :class:`RefreshLedger` records, oldest first (e.g.
        ``engine.ledger.history(32)``). Must be non-empty.
    ewma:
        Optional :meth:`LedgerRecorder.ewma_snapshot` dict; when given,
        the kernel table shows the engine-lifetime EWMAs instead of the
        latest ledger's stamped values.
    title:
        Header label (the CLI passes the workload name).
    """
    if not ledgers:
        return f"{title}: no refreshes recorded yet\n"
    latest = ledgers[-1]
    refresh_times = [led.refresh_seconds for led in ledgers]
    lines: List[str] = []

    span = latest.time - ledgers[0].time
    rate = (len(ledgers) - 1) / span if span > 0 else 0.0
    lines.append(
        f"{title} | refresh #{latest.sequence} @ t={latest.time:.1f}s"
        f" | {len(ledgers)} sampled | {rate:.2f} refresh/s"
    )
    lines.append(
        "refresh cost   last "
        f"{_fmt_ms(latest.refresh_seconds)}  p50 "
        f"{_fmt_ms(_percentile(refresh_times, 0.50))}  p95 "
        f"{_fmt_ms(_percentile(refresh_times, 0.95))}"
    )
    lines.append("")

    # Per-stage bars, scaled to the slowest stage's p50.
    stage_p50 = {
        name: _percentile([led.stage_seconds(name) for led in ledgers], 0.50)
        for name in PIPELINE_STAGES
    }
    scale = max(stage_p50.values()) or 1.0
    lines.append(f"{'stage':<10} {'':<{_BAR_WIDTH}} {'last':>9} {'p50':>9}  work")
    for name in PIPELINE_STAGES:
        sample = latest.stage(name)
        lines.append(
            f"{name:<10} {_bar(stage_p50[name] / scale)} "
            f"{_fmt_ms(sample.seconds):>9} {_fmt_ms(stage_p50[name]):>9}  "
            f"{sample.items} {sample.unit}".rstrip()
        )
    lines.append("")

    # Kernel mix over the sampled window. units/row is the dispatch
    # model's density signal (pairs for sparse, run-pairs for RLE,
    # size*log2(size) for FFT); bytes/row is the data each routed row
    # actually touched -- together they show *why* the density dispatch
    # sent rows where it did.
    rows_by_kernel = {
        name: sum(led.kernel(name).rows for led in ledgers)
        for name in CORRELATION_KERNELS
    }
    total_rows = sum(rows_by_kernel.values())
    lines.append(
        f"{'kernel':<14} {'rows':>9} {'share':>7} {'ns/row ewma':>12}"
        f" {'units/row':>11} {'bytes/row':>11} {'bytes':>12}"
    )
    for name in CORRELATION_KERNELS:
        rows = rows_by_kernel[name]
        share = rows / total_rows if total_rows else 0.0
        if ewma is not None and name in ewma:
            ns = ewma[name].get("ns_per_row")
        else:
            ns = latest.kernel(name).ns_per_row_ewma
        nbytes = sum(led.kernel(name).bytes_touched for led in ledgers)
        units = sum(led.kernel(name).work_units for led in ledgers)
        units_row = f"{units / rows:,.0f}" if rows else "-"
        bytes_row = f"{nbytes / rows:,.0f}" if rows else "-"
        lines.append(
            f"{name:<14} {rows:>9} {share:>6.1%} {_fmt_ns(ns):>12}"
            f" {units_row:>11} {bytes_row:>11} {nbytes:>12}"
        )
    lines.append("")

    # Optimization ratios (window totals).
    skips = sum(led.skips for led in ledgers)
    hits = sum(led.cache_hits for led in ledgers)
    pair_rows = (
        rows_by_kernel.get("sparse_batch", 0)
        + rows_by_kernel.get("rle", 0)
        + rows_by_kernel.get("fft_batch", 0)
    )
    skip_ratio = skips / (skips + pair_rows) if skips + pair_rows else 0.0
    lines.append(
        f"quiet skips {skips} ({skip_ratio:.1%} of pair work)"
        f" | correlator cache hits {hits}"
    )
    return "\n".join(lines) + "\n"


def render_profile(
    ledgers: Sequence[RefreshLedger],
    ewma: Optional[Dict[str, dict]] = None,
    title: str = "repro profile",
) -> str:
    """Human-readable profile summary: the top frame plus EWMA detail."""
    out = render_top(ledgers, ewma=ewma, title=title)
    if not ewma:
        return out
    lines = [out, "kernel cost model (engine-lifetime EWMAs)"]
    for kernel in sorted(ewma):
        entry = ewma[kernel]
        lines.append(
            f"  {kernel:<14} ns/row {_fmt_ns(entry.get('ns_per_row')):>10}"
            f"  ns/unit {_fmt_ns(entry.get('ns_per_unit')):>10}"
            f"  samples {entry.get('samples', 0)}"
        )
    return "\n".join(lines) + "\n"
