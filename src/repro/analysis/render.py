"""Service-graph rendering (paper Figures 5, 6; Section 5 future work:
"We are also building visualization interfaces that would highlight
interesting performance behaviors of service paths.").

Two renderers:

* :func:`render_ascii` -- the paper's figure style in text: one line per
  causal path, nodes joined by delay-labelled arrows, bottleneck nodes
  marked (the figures' grey boxes become ``*NODE*``).
* :func:`render_dot` -- Graphviz DOT output for real visualization.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.bottleneck import find_bottlenecks
from repro.core.service_graph import ServiceGraph


def _format_delay(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def render_ascii(
    graph: ServiceGraph,
    mark_bottlenecks: bool = True,
    bottleneck_share: float = 0.30,
    max_paths: int = 20,
) -> str:
    """Render a service graph as delay-labelled arrow chains.

    Bottleneck nodes (per :func:`repro.core.bottleneck.find_bottlenecks`)
    are wrapped in asterisks, standing in for the paper's grey boxes.
    """
    grey = set()
    if mark_bottlenecks:
        grey = set(find_bottlenecks(graph, bottleneck_share).bottlenecks)

    def label(node: str) -> str:
        return f"*{node}*" if node in grey else node

    lines = [f"service class of {graph.client} (root {graph.root}):"]
    for path in graph.paths(max_paths=max_paths):
        parts = [label(path.nodes[0])]
        for node, delay in zip(path.nodes[1:], path.cumulative_delays):
            parts.append(f"-[{_format_delay(delay)}]-> {label(node)}")
        lines.append("  " + " ".join(parts))
    delays = graph.node_delays()
    if delays:
        attribution = ", ".join(
            f"{label(node)}={_format_delay(delay)}"
            for node, delay in sorted(delays.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"  node delays: {attribution}")
    return "\n".join(lines)


def render_dot(
    graph: ServiceGraph,
    mark_bottlenecks: bool = True,
    bottleneck_share: float = 0.30,
) -> str:
    """Render a service graph as Graphviz DOT (grey = bottleneck)."""
    grey = set()
    if mark_bottlenecks:
        grey = set(find_bottlenecks(graph, bottleneck_share).bottlenecks)
    lines = ["digraph servicegraph {", "  rankdir=LR;"]
    for node in sorted(graph.nodes):
        attrs = ['shape=box']
        if node in grey:
            attrs.append('style=filled')
            attrs.append('fillcolor=grey')
        if node == graph.client:
            attrs.append('shape=ellipse')
        lines.append(f'  "{node}" [{", ".join(attrs)}];')
    for edge in sorted(graph.edges, key=lambda e: (e.src, e.dst)):
        label = ", ".join(_format_delay(d) for d in edge.delays)
        lines.append(f'  "{edge.src}" -> "{edge.dst}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def render_comparison_table(
    headers: List[str], rows: Iterable[List[str]], title: Optional[str] = None
) -> str:
    """Plain-text table used by the benchmark harnesses' output."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
