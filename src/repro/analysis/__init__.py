"""Rendering and ground-truth comparison of analysis results."""

from repro.analysis.compare import (
    DelayErrors,
    EdgeSetComparison,
    compare_edge_delays,
    compare_edge_sets,
    compare_node_delays,
)
from repro.analysis.diff import EdgeDelta, GraphDiff, diff_graphs
from repro.analysis.graph_export import adjacency, to_edge_list, to_networkx
from repro.analysis.reportgen import report_json, report_text, summarize_graph, summarize_result
from repro.analysis.svg import render_svg, write_svg
from repro.analysis.render import render_ascii, render_comparison_table, render_dot
from repro.analysis.top import render_profile, render_top
from repro.analysis.timeline import (
    render_timeline_ascii,
    render_timeline_svg,
    write_timeline_svg,
)
