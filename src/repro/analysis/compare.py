"""Comparison of pathmap output against ground truth (Section 4.1.1).

The paper validates E2EProf by comparing its computed per-server delays
and end-to-end latencies with instrumented measurements ("The difference
of the processing delays computed at each server is within 10%"). This
module provides the same comparison against the simulator's exact ground
truth: edge-set precision/recall, per-edge delay errors, and per-node
processing-delay errors.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Set, Tuple

import numpy as np

from repro.core.service_graph import NodeId, ServiceGraph
from repro.simulation.groundtruth import GroundTruth

EdgeKey = Tuple[NodeId, NodeId]


@dataclasses.dataclass(frozen=True)
class EdgeSetComparison:
    """Discovered vs true edge sets for one service class."""

    true_edges: Set[EdgeKey]
    found_edges: Set[EdgeKey]

    @property
    def missing(self) -> Set[EdgeKey]:
        return self.true_edges - self.found_edges

    @property
    def spurious(self) -> Set[EdgeKey]:
        return self.found_edges - self.true_edges

    @property
    def precision(self) -> float:
        if not self.found_edges:
            return 1.0 if not self.true_edges else 0.0
        return len(self.found_edges & self.true_edges) / len(self.found_edges)

    @property
    def recall(self) -> float:
        if not self.true_edges:
            return 1.0
        return len(self.found_edges & self.true_edges) / len(self.true_edges)

    @property
    def exact(self) -> bool:
        return self.true_edges == self.found_edges


def compare_edge_sets(
    graph: ServiceGraph,
    truth: GroundTruth,
    service_class: str,
    min_requests: int = 1,
) -> EdgeSetComparison:
    """Compare the discovered edges against the edges requests truly took.

    ``min_requests`` filters true edges traversed fewer times than that
    (transient stragglers below pathmap's statistical floor).
    """
    true_edges = {
        edge
        for edge, count in truth.traversed_edges(service_class).items()
        if count >= min_requests
    }
    return EdgeSetComparison(true_edges=true_edges, found_edges=graph.edge_set())


@dataclasses.dataclass(frozen=True)
class DelayErrors:
    """Per-edge relative errors of pathmap's cumulative delay labels."""

    per_edge: Dict[EdgeKey, float]

    @property
    def max_relative_error(self) -> float:
        if not self.per_edge:
            return 0.0
        return max(abs(v) for v in self.per_edge.values())

    @property
    def mean_relative_error(self) -> float:
        if not self.per_edge:
            return 0.0
        return float(np.mean([abs(v) for v in self.per_edge.values()]))


def compare_edge_delays(
    graph: ServiceGraph,
    truth: GroundTruth,
    service_class: str,
    since: float = 0.0,
    until: float = float("inf"),
    skip_client_edges: bool = True,
) -> DelayErrors:
    """Relative error of each discovered edge's smallest delay label
    against the true mean cumulative delay on that edge."""
    errors: Dict[EdgeKey, float] = {}
    for edge in graph.edges:
        key = (edge.src, edge.dst)
        if skip_client_edges and edge.src == graph.client:
            continue
        true_mean = truth.mean_edge_delay(service_class, key, since=since, until=until)
        if math.isnan(true_mean):
            continue
        if true_mean <= 0:
            continue
        closest = min(edge.delays, key=lambda d: abs(d - true_mean))
        errors[key] = (closest - true_mean) / true_mean
    return DelayErrors(errors)


def compare_node_delays(
    graph: ServiceGraph,
    expected: Dict[NodeId, float],
    tolerance: float = 0.10,
) -> Dict[NodeId, Tuple[float, float, bool]]:
    """Compare pathmap's per-node computation delays against expected
    values (e.g. configured service-time means).

    Returns ``{node: (measured, expected, within_tolerance)}`` for nodes
    present in both.
    """
    out: Dict[NodeId, Tuple[float, float, bool]] = {}
    measured = graph.node_delays()
    for node, expected_delay in expected.items():
        if node not in measured or expected_delay <= 0:
            continue
        got = measured[node]
        ok = abs(got - expected_delay) / expected_delay <= tolerance
        out[node] = (got, expected_delay, ok)
    return out
