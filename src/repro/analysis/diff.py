"""Diffing two service graphs (incident forensics).

E2EProf's purpose is noticing that *now* differs from *before* ("to
recognize and analyze performance problems when they occur -- online").
The change/anomaly detectors do that streamingly; this module does it
comparatively: given two analyses of the same class (a healthy baseline
and an incident window, or pre/post deploy), produce the structural and
delay differences an operator would paste into an incident report.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.core.service_graph import NodeId, ServiceGraph
from repro.errors import AnalysisError

EdgeKey = Tuple[NodeId, NodeId]


@dataclasses.dataclass(frozen=True)
class EdgeDelta:
    """Delay movement of one edge present in both graphs."""

    edge: EdgeKey
    before: float
    after: float

    @property
    def change(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> float:
        if self.before == 0.0:
            return float("inf") if self.after else 0.0
        return self.change / self.before


@dataclasses.dataclass
class GraphDiff:
    """Differences between a baseline and a comparison graph."""

    client: NodeId
    added_edges: Set[EdgeKey]
    removed_edges: Set[EdgeKey]
    deltas: List[EdgeDelta]
    node_deltas: Dict[NodeId, Tuple[Optional[float], Optional[float]]]

    @property
    def unchanged(self) -> bool:
        return (
            not self.added_edges
            and not self.removed_edges
            and all(abs(d.change) < 1e-12 for d in self.deltas)
        )

    def significant_deltas(
        self, absolute: float = 0.005, relative: float = 0.25
    ) -> List[EdgeDelta]:
        """Edges whose delay moved by both thresholds, biggest first."""
        out = [
            d for d in self.deltas
            if abs(d.change) >= absolute
            and (d.before == 0 or abs(d.change) / d.before >= relative)
        ]
        return sorted(out, key=lambda d: -abs(d.change))

    def suspect_nodes(self, absolute: float = 0.005) -> List[NodeId]:
        """Nodes whose computation delay moved by >= ``absolute``,
        biggest movement first -- the diff's bottom line."""
        movements = []
        for node, (before, after) in self.node_deltas.items():
            if before is None or after is None:
                continue
            if abs(after - before) >= absolute:
                movements.append((abs(after - before), node))
        return [node for _, node in sorted(movements, reverse=True)]

    def summary(self) -> str:
        """Readable one-paragraph incident summary."""
        lines = [f"diff for service class of {self.client}:"]
        if self.unchanged:
            lines.append("  no structural or delay changes")
            return "\n".join(lines)
        for edge in sorted(self.removed_edges):
            lines.append(f"  edge disappeared: {edge[0]}->{edge[1]}")
        for edge in sorted(self.added_edges):
            lines.append(f"  edge appeared:    {edge[0]}->{edge[1]}")
        for delta in self.significant_deltas():
            lines.append(
                f"  {delta.edge[0]}->{delta.edge[1]}: "
                f"{delta.before * 1e3:.1f} -> {delta.after * 1e3:.1f} ms "
                f"({delta.change * 1e3:+.1f})"
            )
        suspects = self.suspect_nodes()
        if suspects:
            lines.append(f"  suspect node(s): {', '.join(suspects)}")
        return "\n".join(lines)


def diff_graphs(before: ServiceGraph, after: ServiceGraph) -> GraphDiff:
    """Diff two graphs of the same service class."""
    if before.client != after.client:
        raise AnalysisError(
            f"cannot diff different classes: {before.client!r} vs {after.client!r}"
        )
    before_edges = before.edge_set()
    after_edges = after.edge_set()
    deltas = [
        EdgeDelta(
            edge=edge,
            before=before.edge(*edge).min_delay,
            after=after.edge(*edge).min_delay,
        )
        for edge in sorted(before_edges & after_edges)
    ]
    node_deltas: Dict[NodeId, Tuple[Optional[float], Optional[float]]] = {}
    for node in before.nodes | after.nodes:
        b = before.node_delay(node) if node in before else None
        a = after.node_delay(node) if node in after else None
        if b is not None or a is not None:
            node_deltas[node] = (b, a)
    return GraphDiff(
        client=before.client,
        added_edges=after_edges - before_edges,
        removed_edges=before_edges - after_edges,
        deltas=deltas,
        node_deltas=node_deltas,
    )
