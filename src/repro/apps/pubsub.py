"""Publish-subscribe overlay (paper Section 5 future work).

"Our near term future work will explore other areas and applications to
which the techniques presented in this paper can be applied. These
include network overlays and publish-subscribe systems."

A pub-sub overlay is the fully unidirectional, fan-out-heavy case:
publishers emit events on topics; a tree of brokers routes each event to
every subscriber of its topic. There are no responses, and a single
inbound event fans out into several outbound messages -- exactly the
"changes in rate across nodes" situation pathmap's assumptions allow.

Pathmap applies unchanged: each publisher is a client node of one service
class, and the recovered service graph is that topic's dissemination tree
annotated with per-hop delivery delays.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import PathmapConfig
from repro.simulation.distributions import Distribution, Erlang
from repro.simulation.nodes import (
    Absorb,
    ClientNode,
    Decision,
    Forward,
    Message,
    Router,
    ServiceNode,
)
from repro.simulation.topology import Topology
from repro.tracing.records import NodeId

#: Analysis parameters suited to millisecond broker hops. The small
#: absolute spike floor suppresses chance alignments between unrelated
#: topics on shared broker links (real dissemination spikes here measure
#: 0.3-1.0; chance alignments ~0.05).
PUBSUB_ANALYSIS_CONFIG = PathmapConfig(
    window=60.0,
    refresh_interval=20.0,
    quantum=1e-3,
    sampling_window=20e-3,
    max_transaction_delay=2.0,
    min_spike_height=0.10,
)


class TopicRouter(Router):
    """Forwards each event to the broker's per-topic downstream list;
    absorbs events for topics with no local subscription (leaf brokers
    and subscriber endpoints)."""

    def __init__(self, routes: Dict[str, Sequence[NodeId]]) -> None:
        self._routes = {topic: tuple(targets) for topic, targets in routes.items()}

    def route(self, node: ServiceNode, message: Message) -> Decision:
        targets = self._routes.get(message.service_class, ())
        if not targets:
            return Absorb()
        return Forward(*targets)


@dataclasses.dataclass
class PubSubDeployment:
    """A wired pub-sub overlay ready to run."""

    topology: Topology
    config: PathmapConfig
    brokers: Dict[str, ServiceNode]
    subscribers: Dict[str, ServiceNode]
    publishers: Dict[str, ClientNode]
    #: topic -> the dissemination edges a published event must traverse.
    expected_edges: Dict[str, List[Tuple[NodeId, NodeId]]]

    @property
    def collector(self):
        return self.topology.collector

    def run_until(self, end_time: float) -> int:
        return self.topology.run_until(end_time)

    def window(self, end_time: float, config: Optional[PathmapConfig] = None):
        return self.collector.window(config or self.config, end_time=end_time)


def build_pubsub(
    seed: int = 0,
    publish_rate: float = 20.0,
    broker_service: Optional[Distribution] = None,
    config: PathmapConfig = PUBSUB_ANALYSIS_CONFIG,
) -> PubSubDeployment:
    """Build a two-level broker tree with two topics.

    Topology::

        PUB-news --> B-root --> B-left  --> SUB-1, SUB-2      (topic "news")
        PUB-alerts -> B-root --> B-left  --> SUB-1             (topic "alerts")
                              \\-> B-right --> SUB-3            (topic "alerts")

    The "news" topic fans out to two subscribers through one branch; the
    "alerts" topic fans out across *both* branches at the root (the
    rate-change case: one inbound event, two outbound messages).
    """
    service = broker_service or Erlang(0.004, k=8)
    topo = Topology(seed=seed)

    # Leaves first (routers reference downstream ids).
    sub1 = topo.add_service_node("SUB1", Erlang(0.002, k=4), router=TopicRouter({}))
    sub2 = topo.add_service_node("SUB2", Erlang(0.002, k=4), router=TopicRouter({}))
    sub3 = topo.add_service_node("SUB3", Erlang(0.002, k=4), router=TopicRouter({}))
    b_left = topo.add_service_node(
        "BL", service,
        router=TopicRouter({"news": ("SUB1", "SUB2"), "alerts": ("SUB1",)}),
    )
    b_right = topo.add_service_node(
        "BR", service, router=TopicRouter({"alerts": ("SUB3",)})
    )
    b_root = topo.add_service_node(
        "B0", service,
        router=TopicRouter({"news": ("BL",), "alerts": ("BL", "BR")}),
    )

    pub_news = topo.add_client("PUB-news", "news", front_end="B0")
    pub_alerts = topo.add_client("PUB-alerts", "alerts", front_end="B0")
    topo.open_workload(pub_news, rate=publish_rate)
    topo.open_workload(pub_alerts, rate=publish_rate)

    expected = {
        "news": [
            ("PUB-news", "B0"), ("B0", "BL"), ("BL", "SUB1"), ("BL", "SUB2"),
        ],
        "alerts": [
            ("PUB-alerts", "B0"), ("B0", "BL"), ("B0", "BR"),
            ("BL", "SUB1"), ("BR", "SUB3"),
        ],
    }
    return PubSubDeployment(
        topology=topo,
        config=config,
        brokers={"B0": b_root, "BL": b_left, "BR": b_right},
        subscribers={"SUB1": sub1, "SUB2": sub2, "SUB3": sub3},
        publishers={"news": pub_news, "alerts": pub_alerts},
        expected_edges=expected,
    )
