"""Simulated RUBiS deployment (paper Section 4.1, Figure 4).

The paper's testbed: an Apache web server (WS) in front of two Tomcat
servlet servers (TS1, TS2), each backed by a JBoss EJB server (EJB1,
EJB2), all sharing one MySQL database (DS). Two client nodes run httperf,
each emulating 30 sessions of one service class (*bidding* and
*comment*), with Poisson request arrivals.

This module builds the same six-server topology on the simulation
substrate, with service-time distributions chosen so the EJB tier
dominates the path latency (the grey bottleneck nodes of Figures 5/6) and
end-to-end latencies land in the paper's few-tens-of-milliseconds range.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Union

from repro.config import PathmapConfig
from repro.apps.dispatch import AffinityRouter, LatencyAwareRouter, RoundRobinRouter
from repro.errors import TopologyError
from repro.simulation.distributions import Constant, Erlang, Exponential
from repro.simulation.groundtruth import GroundTruth
from repro.simulation.nodes import ClientNode, Router, ServiceNode, StaticRouter
from repro.simulation.topology import Topology

BIDDING = "bidding"
COMMENT = "comment"

#: Mean request service times (seconds) per tier. The EJB tier is the
#: dominant contributor, as in the paper's figures.
DEFAULT_SERVICE_MEANS = {
    "WS": 0.003,
    "TS1": 0.008,
    "TS2": 0.008,
    "EJB1": 0.020,
    "EJB2": 0.025,
    "DS": 0.010,
}

#: Pathmap parameters used for the RUBiS experiments: the paper's W, dW,
#: tau and omega, with the transaction-delay bound tightened from the
#: paper's very loose 1 minute to 2 s (our simulated transactions finish
#: within ~100 ms; a tight T_u is exactly what the paper's first
#: optimization calls for, and it keeps analysis cost proportional).
RUBIS_ANALYSIS_CONFIG = PathmapConfig(
    window=180.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=2.0,
    # Real RUBiS spikes measure 0.3-1.0; the floor suppresses rare sub-0.1
    # chance alignments that the bare mean+3*sigma rule admits.
    min_spike_height=0.10,
)


@dataclasses.dataclass
class RubisDeployment:
    """A wired RUBiS system ready to run."""

    topology: Topology
    config: PathmapConfig
    web_server: ServiceNode
    tomcats: Dict[str, ServiceNode]
    ejbs: Dict[str, ServiceNode]
    database: ServiceNode
    clients: Dict[str, ClientNode]
    dispatcher: Router
    ground_truth: GroundTruth

    @property
    def collector(self):
        return self.topology.collector

    def run_until(self, end_time: float) -> int:
        return self.topology.run_until(end_time)

    def window(self, end_time: float, config: Optional[PathmapConfig] = None):
        """Analysis window ending at ``end_time`` (defaults to deployment config)."""
        return self.collector.window(config or self.config, end_time=end_time)


def _make_dispatcher(dispatch: Union[str, Router]) -> Router:
    if isinstance(dispatch, Router):
        return dispatch
    if dispatch == "affinity":
        return AffinityRouter({BIDDING: "TS1", COMMENT: "TS2"})
    if dispatch == "round_robin":
        return RoundRobinRouter(["TS1", "TS2"])
    if dispatch == "latency_aware":
        return LatencyAwareRouter(["TS1", "TS2"])
    raise TopologyError(
        f"unknown dispatch {dispatch!r}: use 'affinity', 'round_robin', "
        "'latency_aware' or a Router instance"
    )


def build_rubis(
    dispatch: Union[str, Router] = "affinity",
    seed: int = 0,
    request_rate: float = 10.0,
    workload: str = "open",
    sessions: int = 30,
    service_means: Optional[Dict[str, float]] = None,
    db_fanout: int = 1,
    packets_per_message: int = 1,
    config: PathmapConfig = RUBIS_ANALYSIS_CONFIG,
) -> RubisDeployment:
    """Build the six-server RUBiS topology with two client classes.

    Parameters
    ----------
    dispatch:
        Web-server dispatch policy: ``"affinity"`` (Figure 5),
        ``"round_robin"`` (Figure 6), ``"latency_aware"`` (Section 4.2),
        or any :class:`Router`.
    request_rate:
        Per-class Poisson arrival rate (requests/second) for the open
        workload.
    workload:
        ``"open"`` (Poisson arrivals, the paper's httperf setting) or
        ``"closed"`` (think-loop sessions).
    sessions:
        Session count per class for the closed workload (paper: 30).
    db_fanout:
        Number of database queries each EJB issues per request (> 1
        exercises the paper's "changes in rate across nodes" case).
    packets_per_message:
        Back-to-back wire packets per application message (> 1 models the
        paper's observation that "a single transaction may be composed of
        multiple packets sent back-to-back").
    """
    if workload not in ("open", "closed"):
        raise TopologyError(f"unknown workload {workload!r}")
    means = dict(DEFAULT_SERVICE_MEANS)
    if service_means:
        means.update(service_means)

    topo = Topology(seed=seed, packets_per_message=packets_per_message)
    dispatcher = _make_dispatcher(dispatch)

    database = topo.add_service_node("DS", Erlang(means["DS"], k=8), workers=16)
    db_target = "DS" if db_fanout == 1 else tuple(["DS"] * db_fanout)
    ejb1 = topo.add_service_node(
        "EJB1", Erlang(means["EJB1"], k=8), workers=8,
        router=StaticRouter({}, default=db_target),
    )
    ejb2 = topo.add_service_node(
        "EJB2", Erlang(means["EJB2"], k=8), workers=8,
        router=StaticRouter({}, default=db_target),
    )
    ts1 = topo.add_service_node(
        "TS1", Erlang(means["TS1"], k=8), workers=8,
        router=StaticRouter({}, default="EJB1"),
    )
    ts2 = topo.add_service_node(
        "TS2", Erlang(means["TS2"], k=8), workers=8,
        router=StaticRouter({}, default="EJB2"),
    )
    web_server = topo.add_service_node(
        "WS", Erlang(means["WS"], k=8), workers=16, router=dispatcher
    )

    truth = topo.ground_truth("WS")

    c1 = topo.add_client("C1", BIDDING, front_end="WS")
    c2 = topo.add_client("C2", COMMENT, front_end="WS")
    # Client access links are slower than the server LAN; this is what
    # makes the client-perceived latency exceed E2EProf's server-side view
    # (the paper measured ~16% more at the client, Section 4.1.1).
    for client_id in ("C1", "C2"):
        topo.set_link_latency(client_id, "WS", Constant(0.003))
        topo.set_link_latency("WS", client_id, Constant(0.003))
    if workload == "open":
        topo.open_workload(c1, rate=request_rate)
        topo.open_workload(c2, rate=request_rate)
    else:
        topo.closed_workload(c1, sessions=sessions, think_time=Exponential(sessions / request_rate))
        topo.closed_workload(c2, sessions=sessions, think_time=Exponential(sessions / request_rate))

    return RubisDeployment(
        topology=topo,
        config=config,
        web_server=web_server,
        tomcats={"TS1": ts1, "TS2": ts2},
        ejbs={"EJB1": ejb1, "EJB2": ejb2},
        database=database,
        clients={BIDDING: c1, COMMENT: c2},
        dispatcher=dispatcher,
        ground_truth=truth,
    )


#: The true request paths per dispatch mode, for validating pathmap output.
EXPECTED_AFFINITY_PATHS = {
    BIDDING: [("C1", "WS"), ("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DS")],
    COMMENT: [("C2", "WS"), ("WS", "TS2"), ("TS2", "EJB2"), ("EJB2", "DS")],
}

EXPECTED_ROUND_ROBIN_EDGES = {
    BIDDING: {
        ("C1", "WS"),
        ("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DS"),
        ("WS", "TS2"), ("TS2", "EJB2"), ("EJB2", "DS"),
    },
    COMMENT: {
        ("C2", "WS"),
        ("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DS"),
        ("WS", "TS2"), ("TS2", "EJB2"), ("EJB2", "DS"),
    },
}
