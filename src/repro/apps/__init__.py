"""The paper's case-study applications on the simulation substrate."""

from repro.apps.delta import DeltaDeployment, build_delta, inject_batch
from repro.apps.dispatch import AffinityRouter, LatencyAwareRouter, RoundRobinRouter
from repro.apps.faults import (
    RandomPerturbation,
    apply_perturbations,
    degrade_link,
    scheduled_delay,
    staircase_delay,
)
from repro.apps.pubsub import PubSubDeployment, TopicRouter, build_pubsub
from repro.apps.rubis import RubisDeployment, build_rubis
