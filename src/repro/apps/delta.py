"""Simulated Delta Air Lines Revenue Pipeline (paper Section 4.3, Figure 8).

The Revenue Pipeline is a unidirectional event-processing subsystem:
"About 40K events per hour arrive in one of 25 queues in the front-end
control system and are then forwarded to the back-end servers." The paper
analyzed a week-long application-level *access log* (timestamps, server
ids, request ids) rather than packet captures.

This module reproduces the two properties the paper says challenge
pathmap's steady-state assumption:

* **Large queueing delays**: the back-end database stage is provisioned
  tightly, so queueing -- not processing -- dominates under load.
* **Drastic traffic variation**: a nightly *batch* ("all of Delta Air
  Lines' paper tickets processed all over the world in the last 24 hours
  is submitted at 4 AM EST, due to which the queue length goes as high as
  4000") is injected as a burst of events on top of the Poisson feed.

A configurable "slow database connection" fault reproduces the diagnosis
anecdote at the end of Section 4.3.

The generated trace is exported as :class:`AccessLogRecord` streams and
re-ingested through :mod:`repro.tracing.access_log`, exercising the same
log-based path the paper used.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.config import PathmapConfig
from repro.errors import TopologyError
from repro.simulation.distributions import Constant, Erlang, Exponential, LogNormal
from repro.simulation.nodes import ClientNode, Message, REQUEST, ServiceNode, SinkRouter, StaticRouter
from repro.simulation.topology import Topology
from repro.simulation.workload import OnOffWorkload
from repro.tracing.records import AccessLogRecord, NodeId

#: Pathmap parameters used for the Delta analysis (Section 4.3): sliding
#: window 1 hour, time quantum 1 s, sampling window 50 s.
DELTA_ANALYSIS_CONFIG = PathmapConfig(
    window=3600.0,
    refresh_interval=600.0,
    quantum=1.0,
    sampling_window=50.0,
    max_transaction_delay=900.0,
)

#: 40K events/hour across the whole front end.
EVENTS_PER_HOUR = 40_000.0

BACKEND_STAGES = ("VAL", "RDB", "ACCT")


@dataclasses.dataclass
class DeltaDeployment:
    """A wired Revenue Pipeline ready to run."""

    topology: Topology
    config: PathmapConfig
    queues: Dict[str, ServiceNode]
    backend: Dict[str, ServiceNode]
    feeds: Dict[str, ClientNode]
    access_log: List[AccessLogRecord]

    @property
    def collector(self):
        return self.topology.collector

    def run_until(self, end_time: float) -> int:
        return self.topology.run_until(end_time)

    def window(self, end_time: float, config: Optional[PathmapConfig] = None):
        return self.collector.window(config or self.config, end_time=end_time)

    def sorted_access_log(self) -> List[AccessLogRecord]:
        """The application-level event log, timestamp-ordered."""
        return sorted(
            self.access_log, key=lambda r: (r.timestamp, r.server, r.request_id)
        )


def build_delta(
    seed: int = 0,
    num_queues: int = 25,
    events_per_hour: float = EVENTS_PER_HOUR,
    slow_db_factor: float = 1.0,
    burst_on: Optional[float] = None,
    config: PathmapConfig = DELTA_ANALYSIS_CONFIG,
) -> DeltaDeployment:
    """Build the Revenue Pipeline topology.

    Parameters
    ----------
    num_queues:
        Front-end queues (paper: 25). Each queue receives its own feed
        (its own service class) and forwards to the shared back end.
    events_per_hour:
        Aggregate feed rate across all queues (paper: ~40K/h).
    slow_db_factor:
        >= 1; multiplies the database stage's service time to reproduce
        the "slow database server connection" diagnosis case.
    burst_on:
        When set, feeds become ON/OFF bursty with this mean phase length
        (seconds) instead of plain Poisson.
    """
    if num_queues < 1:
        raise TopologyError(f"num_queues must be >= 1, got {num_queues}")
    if slow_db_factor < 1:
        raise TopologyError(f"slow_db_factor must be >= 1, got {slow_db_factor}")

    topo = Topology(seed=seed)

    # Back end: validation -> revenue database -> accounting sink.
    # Stage service times are seconds (the paper's Delta delays are
    # seconds-to-minutes); worker pools are provisioned for ~60% utilization
    # at the nominal 40K events/hour, so the nightly batch overloads them
    # and queueing delays dominate -- the property that breaks pathmap's
    # steady-state assumption in Section 4.3.
    acct = topo.add_service_node(
        "ACCT", Erlang(3.0, k=4), workers=56, router=SinkRouter()
    )
    rdb = topo.add_service_node(
        "RDB",
        LogNormal(8.0 * slow_db_factor, log_sigma=0.5),
        workers=140,
        router=StaticRouter({}, default="ACCT"),
    )
    val = topo.add_service_node(
        "VAL", Erlang(5.0, k=4), workers=90, router=StaticRouter({}, default="RDB")
    )

    queues: Dict[str, ServiceNode] = {}
    feeds: Dict[str, ClientNode] = {}
    per_queue_rate = events_per_hour / 3600.0 / num_queues
    for i in range(1, num_queues + 1):
        queue_id = f"Q{i:02d}"
        queue = topo.add_service_node(
            queue_id,
            Constant(2.0),  # queue hand-off: stamp, persist, forward
            workers=4,
            router=StaticRouter({}, default="VAL"),
        )
        queues[queue_id] = queue
        feed = topo.add_client(f"FEED{i:02d}", f"events-{queue_id}", front_end=queue_id)
        feeds[queue_id] = feed
        if burst_on is None:
            topo.open_workload(feed, rate=per_queue_rate)
        else:
            # Optional bursty feeds (ON at twice the average rate, 50%
            # duty): enterprise traffic is "inherently bursty". Keep the
            # phases SHORT relative to the lag range, or the correlation
            # pedestal they create swamps spike detection.
            workload = OnOffWorkload(
                topo.sim,
                feed,
                rate=2.0 * per_queue_rate,
                on_time=Exponential(burst_on),
                off_time=Exponential(burst_on),
                rng=topo.rng,
            )
            workload.start()
            topo.workloads.append(workload)

    deployment = DeltaDeployment(
        topology=topo,
        config=config,
        queues=queues,
        backend={"VAL": val, "RDB": rdb, "ACCT": acct},
        feeds=feeds,
        access_log=[],
    )
    topo.fabric.add_capture_hook(_access_log_hook(deployment))
    return deployment


def _access_log_hook(deployment: DeltaDeployment):
    """Convert fabric captures into application-level access-log records."""

    def hook(timestamp: float, src: NodeId, dst: NodeId, observer: NodeId, message: object) -> None:
        if not isinstance(message, Message) or message.kind != REQUEST:
            return
        if observer == src and deployment.topology.fabric.tracer(src) is not None:
            deployment.access_log.append(
                AccessLogRecord(
                    timestamp=timestamp,
                    server=src,
                    request_id=message.request_id,
                    event="send",
                    peer=dst,
                )
            )
        elif observer == dst:
            deployment.access_log.append(
                AccessLogRecord(
                    timestamp=timestamp,
                    server=dst,
                    request_id=message.request_id,
                    event="recv",
                )
            )

    return hook


#: Hourly traffic weights over a day (fraction of the daily mean), a
#: typical enterprise diurnal curve: quiet overnight, business-hours
#: plateau, evening tail. Index = hour of day.
DIURNAL_WEIGHTS = [
    0.4, 0.3, 0.3, 0.3, 0.5, 0.6, 0.8, 1.1,
    1.4, 1.6, 1.7, 1.7, 1.6, 1.6, 1.7, 1.6,
    1.5, 1.3, 1.1, 1.0, 0.8, 0.7, 0.6, 0.5,
]

#: Seconds after midnight of the nightly paper-ticket batch (4 AM EST).
BATCH_HOUR_SECONDS = 4 * 3600.0


def run_day(
    deployment: DeltaDeployment,
    day_start: Optional[float] = None,
    batch_events: int = 4000,
    batch_over_seconds: float = 300.0,
) -> float:
    """Drive one diurnal day of traffic: hourly rate modulation following
    :data:`DIURNAL_WEIGHTS` plus the 4 AM batch. Returns the end time.

    The deployment's feeds must have been built with their default
    workloads; this function stops them and replays the day with
    time-varying rates (the paper's week-long trace is seven of these).
    """
    sim = deployment.topology.sim
    start = day_start if day_start is not None else sim.now
    feeds = list(deployment.feeds.values())
    base_rate = _mean_feed_rate(deployment)

    # Stop the constant-rate workloads; the diurnal schedule takes over.
    for workload in deployment.topology.workloads:
        stop = getattr(workload, "stop", None)
        if stop is not None:
            stop()

    for hour, weight in enumerate(DIURNAL_WEIGHTS):
        hour_start = start + hour * 3600.0
        rate = base_rate * weight
        for feed in feeds:
            _schedule_hour(sim, deployment.topology, feed, hour_start, rate)
    if batch_events:
        inject_batch(
            deployment,
            at=start + BATCH_HOUR_SECONDS,
            events=batch_events,
            over_seconds=batch_over_seconds,
        )
    end = start + 24 * 3600.0
    deployment.run_until(end)
    return end


def _mean_feed_rate(deployment: DeltaDeployment) -> float:
    """Per-feed mean arrival rate implied by the built deployment."""
    # Reconstructed from the first open workload's configured rate; all
    # feeds share it by construction.
    for workload in deployment.topology.workloads:
        rate = getattr(workload, "rate", None)
        if rate is not None:
            return float(rate)
    raise TopologyError("deployment has no rate-bearing workloads")


def _schedule_hour(sim, topology, feed, hour_start: float, rate: float) -> None:
    """Poisson arrivals at ``rate`` for one hour starting at ``hour_start``."""
    rng = topology.rng

    def arrive() -> None:
        if sim.now >= hour_start + 3600.0:
            return
        feed.issue_request()
        sim.schedule(float(rng.exponential(1.0 / rate)), arrive)

    first = hour_start + float(rng.exponential(1.0 / rate))
    sim.schedule_at(max(first, sim.now), arrive)


def inject_batch(
    deployment: DeltaDeployment,
    at: float,
    events: int = 4000,
    over_seconds: float = 300.0,
) -> None:
    """Schedule the 4 AM paper-ticket batch: ``events`` events spread
    uniformly over ``over_seconds``, round-robin across all queues."""
    if events < 1:
        raise TopologyError(f"events must be >= 1, got {events}")
    if over_seconds <= 0:
        raise TopologyError(f"over_seconds must be positive, got {over_seconds}")
    feeds = list(deployment.feeds.values())
    sim = deployment.topology.sim
    gap = over_seconds / events
    for k in range(events):
        feed = feeds[k % len(feeds)]
        sim.schedule_at(at + k * gap, feed.issue_request)


def peak_backend_queue_length(deployment: DeltaDeployment) -> int:
    """Current total queue length across back-end stages (probe helper)."""
    return sum(node.queue_length for node in deployment.backend.values())
