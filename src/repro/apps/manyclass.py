"""Synthetic many-class topology for refresh-throughput benchmarking.

The paper's testbeds carry a handful of service classes; an enterprise
analyzer sees hundreds, most of them *quiet* at any given moment (trading
desks after close, batch feeds between runs, regional front ends off
peak). This app builds that shape on the simulation substrate: ``classes``
independent three-tier stacks (client -> front end -> app server) sharing
one database, where a configurable fraction of the classes stops issuing
requests after a warmup period. Their correlators stay live in the engine
-- real deployments cannot know a class is gone for good -- so every
refresh must still walk them, which is exactly the work the batched
refresh's quiet-edge skipping eliminates (see ``docs/PERFORMANCE.md`` and
``tools/bench_refresh.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.config import PathmapConfig
from repro.errors import TopologyError
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import ClientNode, StaticRouter
from repro.simulation.topology import Topology
from repro.simulation.workload import OpenWorkload

#: Analysis parameters for the refresh benchmark: a short window (three
#: 2 s blocks) and a 0.5 s transaction-delay bound keep single refreshes
#: fast enough to measure many of them in CI.
MANY_CLASS_CONFIG = PathmapConfig(
    window=6.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=0.5,
    min_spike_height=0.10,
)


@dataclasses.dataclass
class ManyClassDeployment:
    """A wired many-class system ready to run."""

    topology: Topology
    config: PathmapConfig
    clients: Dict[str, ClientNode]
    workloads: Dict[str, OpenWorkload]
    #: Class names whose workload stops at ``quiet_after`` (sim seconds).
    quiet_classes: List[str]
    quiet_after: Optional[float]

    @property
    def collector(self):
        return self.topology.collector

    def run_until(self, end_time: float) -> int:
        return self.topology.run_until(end_time)


def build_many_class(
    classes: int = 12,
    quiet_fraction: float = 0.5,
    seed: int = 0,
    request_rate: float = 8.0,
    quiet_after: Optional[float] = 5.0,
    config: PathmapConfig = MANY_CLASS_CONFIG,
) -> ManyClassDeployment:
    """Build ``classes`` three-tier stacks sharing one database.

    Class ``i`` is the chain ``C{i} -> FE{i} -> AP{i} -> DB``. The last
    ``round(classes * quiet_fraction)`` classes stop issuing requests at
    simulation time ``quiet_after`` (None keeps every class active): from
    the next full block on, every edge of a stopped class is quiet while
    its correlators remain live in an attached engine.
    """
    if classes < 1:
        raise TopologyError(f"classes must be >= 1, got {classes}")
    if not 0.0 <= quiet_fraction <= 1.0:
        raise TopologyError(
            f"quiet_fraction must be in [0, 1], got {quiet_fraction}"
        )
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.004, k=8), workers=16)
    clients: Dict[str, ClientNode] = {}
    workloads: Dict[str, OpenWorkload] = {}
    names: List[str] = []
    for i in range(classes):
        name = f"K{i}"
        names.append(name)
        topo.add_service_node(
            f"AP{i}", Erlang(0.006, k=8), workers=8,
            router=StaticRouter({}, default="DB"),
        )
        topo.add_service_node(
            f"FE{i}", Erlang(0.002, k=8), workers=8,
            router=StaticRouter({}, default=f"AP{i}"),
        )
        client = topo.add_client(f"C{i}", name, front_end=f"FE{i}")
        clients[name] = client
        workloads[name] = topo.open_workload(client, rate=request_rate)

    num_quiet = int(round(classes * quiet_fraction))
    quiet = names[classes - num_quiet :] if num_quiet else []
    if quiet and quiet_after is not None:
        for name in quiet:
            topo.sim.schedule_at(quiet_after, workloads[name].stop)
    return ManyClassDeployment(
        topology=topo,
        config=config,
        clients=clients,
        workloads=workloads,
        quiet_classes=quiet,
        quiet_after=quiet_after if quiet else None,
    )
