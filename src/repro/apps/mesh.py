"""Fan-out service mesh: the 100+-service regime of modern deployments.

The paper's testbeds top out at a handful of services per path; the
degradation cases it concedes (Section 4.3) and the follow-on tracing
work (YTrace's datacenter meshes) live at a very different scale --
dozens of front ends fanning out to shared backend pools over shared
stores. This app builds that shape on the simulation substrate:

* ``classes`` front-end stacks, each ``C{i} -> FE{i} -> AGG{i}``;
* every aggregator fans out (one request, several parallel child
  requests -- the paper's "changes in rate across nodes") to ``fanout``
  backends drawn deterministically from a shared pool of ``backends``;
* every backend queries one of ``stores`` shared stores.

With the defaults (24 classes, 48 backends, 8 stores) the deployment has
``24 * 2 + 48 + 8 + 24 = 128`` nodes counting clients -- two orders
above RUBiS -- while every class keeps a distinct causal sub-mesh for
ground-truth scoring (:mod:`repro.scenarios` uses this as its scale
scenario).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.config import PathmapConfig
from repro.errors import TopologyError
from repro.simulation.distributions import Erlang
from repro.simulation.nodes import ClientNode, StaticRouter
from repro.simulation.topology import Topology
from repro.simulation.workload import OpenWorkload

#: Analysis parameters for the mesh: many-class scale economics (short
#: window, tight transaction-delay bound) -- see MANY_CLASS_CONFIG.
MESH_CONFIG = PathmapConfig(
    window=8.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=0.5,
    min_spike_height=0.10,
)


@dataclasses.dataclass
class MeshDeployment:
    """A wired fan-out mesh ready to run."""

    topology: Topology
    config: PathmapConfig
    clients: Dict[str, ClientNode]
    workloads: Dict[str, OpenWorkload]
    #: Service-class name -> its front-end node id.
    fronts: Dict[str, str]
    #: Backend node ids each class's aggregator fans out to.
    class_backends: Dict[str, List[str]]
    #: Total service nodes (excluding clients).
    service_count: int

    @property
    def collector(self):
        return self.topology.collector

    def run_until(self, end_time: float) -> int:
        return self.topology.run_until(end_time)


def build_mesh(
    classes: int = 24,
    backends: int = 48,
    stores: int = 8,
    fanout: int = 3,
    seed: int = 0,
    request_rate: float = 5.0,
    config: PathmapConfig = MESH_CONFIG,
) -> MeshDeployment:
    """Build the fan-out mesh.

    Class ``i`` is ``C{i} -> FE{i} -> AGG{i} -=> {fanout backends}``,
    with backend ``B{j}`` querying store ``ST{j % stores}``. Backend
    assignment is the deterministic stride ``B{(i * fanout + k) %
    backends}``, so every seed sees the same topology (only traffic
    varies) and neighbouring classes overlap on shared backends --
    the per-class correlation has to disentangle them.
    """
    if classes < 1:
        raise TopologyError(f"classes must be >= 1, got {classes}")
    if backends < 1:
        raise TopologyError(f"backends must be >= 1, got {backends}")
    if stores < 1:
        raise TopologyError(f"stores must be >= 1, got {stores}")
    if not 1 <= fanout <= backends:
        raise TopologyError(
            f"fanout must be in [1, backends], got {fanout} (backends={backends})"
        )
    topo = Topology(seed=seed)
    for s in range(stores):
        topo.add_service_node(f"ST{s}", Erlang(0.003, k=8), workers=16)
    for b in range(backends):
        topo.add_service_node(
            f"B{b}", Erlang(0.005, k=8), workers=8,
            router=StaticRouter({}, default=f"ST{b % stores}"),
        )
    clients: Dict[str, ClientNode] = {}
    workloads: Dict[str, OpenWorkload] = {}
    fronts: Dict[str, str] = {}
    class_backends: Dict[str, List[str]] = {}
    for i in range(classes):
        name = f"M{i}"
        targets = [f"B{(i * fanout + k) % backends}" for k in range(fanout)]
        topo.add_service_node(
            f"AGG{i}", Erlang(0.004, k=8), workers=8,
            router=StaticRouter({}, default=tuple(targets)),
        )
        topo.add_service_node(
            f"FE{i}", Erlang(0.002, k=8), workers=8,
            router=StaticRouter({}, default=f"AGG{i}"),
        )
        client = topo.add_client(f"C{i}", name, front_end=f"FE{i}")
        clients[name] = client
        fronts[name] = f"FE{i}"
        class_backends[name] = targets
        workloads[name] = topo.open_workload(client, rate=request_rate)
    return MeshDeployment(
        topology=topo,
        config=config,
        clients=clients,
        workloads=workloads,
        fronts=fronts,
        class_backends=class_backends,
        service_count=stores + backends + 2 * classes,
    )
