"""Front-end dispatch policies (paper Sections 4.1 and 4.2).

The web server's request scheduler decides which application-server path
each request takes:

* :class:`AffinityRouter` -- each service class is pinned to one server
  (Figure 5's setup: bidding -> TS1, comment -> TS2).
* :class:`RoundRobinRouter` -- requests alternate over the servers
  regardless of class (Figure 6's setup; each class takes two paths).
* :class:`LatencyAwareRouter` -- the E2EProf-driven policy of Section 4.2:
  a priority class is steered to whichever path currently has the lowest
  measured latency; other classes take the remaining path. The path
  latencies are updated online from pathmap output by
  :class:`repro.management.scheduler.PathSelector`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Sequence

from repro.errors import TopologyError
from repro.simulation.nodes import Decision, Forward, Message, Router, ServiceNode
from repro.tracing.records import NodeId


class AffinityRouter(Router):
    """Pin each service class to one downstream node."""

    def __init__(self, by_class: Dict[str, NodeId]) -> None:
        if not by_class:
            raise TopologyError("affinity map must not be empty")
        self._by_class = dict(by_class)

    def route(self, node: ServiceNode, message: Message) -> Decision:
        try:
            target = self._by_class[message.service_class]
        except KeyError:
            raise TopologyError(
                f"no affinity target for class {message.service_class!r}"
            ) from None
        return Forward(target)


class RoundRobinRouter(Router):
    """Alternate over downstream nodes, regardless of service class."""

    def __init__(self, targets: Sequence[NodeId]) -> None:
        if not targets:
            raise TopologyError("round robin needs at least one target")
        self.targets = list(targets)
        self._cycle = itertools.cycle(self.targets)

    def route(self, node: ServiceNode, message: Message) -> Decision:
        return Forward(next(self._cycle))


class RandomChoiceRouter(Router):
    """Forward each request to one of several targets with fixed
    probabilities -- cache-hit/miss splits, canary fractions, weighted
    load balancing.

    ``choices`` maps target node id to weight (normalized internally).
    """

    def __init__(self, choices: Dict[NodeId, float], rng) -> None:
        if not choices:
            raise TopologyError("random choice needs at least one target")
        if any(w <= 0 for w in choices.values()):
            raise TopologyError("choice weights must be positive")
        total = sum(choices.values())
        self.targets = list(choices)
        self._weights = [w / total for w in choices.values()]
        self._rng = rng

    def route(self, node: ServiceNode, message: Message) -> Decision:
        index = int(self._rng.choice(len(self.targets), p=self._weights))
        return Forward(self.targets[index])


class LatencyAwareRouter(Router):
    """Steer a priority class to the currently-fastest path.

    The router itself is policy-free: it holds a mutable class->target
    assignment that an external controller (the E2EProf path selector)
    updates as new service-path latencies arrive. Until the first update,
    it behaves like round-robin.
    """

    def __init__(self, targets: Sequence[NodeId]) -> None:
        if len(targets) < 2:
            raise TopologyError("latency-aware routing needs >= 2 targets")
        self.targets = list(targets)
        self._assignment: Dict[str, NodeId] = {}
        self._fallback = RoundRobinRouter(targets)
        self.reassignments = 0

    def assign(self, service_class: str, target: NodeId) -> None:
        """Pin a class to a target (called by the path selector)."""
        if target not in self.targets:
            raise TopologyError(f"{target!r} is not one of {self.targets}")
        if self._assignment.get(service_class) != target:
            self.reassignments += 1
        self._assignment[service_class] = target

    def assignment(self, service_class: str) -> Optional[NodeId]:
        return self._assignment.get(service_class)

    def route(self, node: ServiceNode, message: Message) -> Decision:
        target = self._assignment.get(message.service_class)
        if target is None:
            return self._fallback.route(node, message)
        return Forward(target)
