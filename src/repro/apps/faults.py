"""Fault and perturbation injection (paper Sections 4.1.2 and 4.2).

The paper's change-detection and SLA experiments perturb servers with
artificial delays:

* Figure 7: "artificially introducing some amount of delay in the bid
  request processing and increasing it after every 3 minutes" -- a
  staircase, :func:`staircase_delay`.
* Table 1: "artificial delay experienced by the two EJB servers, which
  changes once per minute. These delays are randomly chosen, ranging from
  0 to 100 milliseconds" -- :class:`RandomPerturbation`.

These produce ``DelayFunction`` callables to plug into
:meth:`repro.simulation.nodes.ServiceNode.set_extra_delay`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulation.nodes import DelayFunction, ServiceNode


def staircase_delay(
    step: float, interval: float, start: float = 0.0, max_delay: Optional[float] = None
) -> DelayFunction:
    """Delay that increases by ``step`` seconds every ``interval`` seconds.

    At time ``t`` the injected delay is ``step * (1 + (t - start) //
    interval)`` (the first step applies immediately at ``start``), capped
    at ``max_delay`` if given. Before ``start`` the delay is zero.
    """
    if step < 0:
        raise SimulationError(f"step must be non-negative, got {step}")
    if interval <= 0:
        raise SimulationError(f"interval must be positive, got {interval}")

    def delay(now: float) -> float:
        if now < start:
            return 0.0
        value = step * (1 + int((now - start) // interval))
        if max_delay is not None:
            value = min(value, max_delay)
        return value

    return delay


def scheduled_delay(schedule: Sequence[Tuple[float, float]]) -> DelayFunction:
    """Piecewise-constant delay from ``(start_time, delay)`` breakpoints.

    The delay at time ``t`` is that of the last breakpoint at or before
    ``t`` (zero before the first breakpoint). Breakpoints must be sorted.
    """
    if not schedule:
        raise SimulationError("schedule must not be empty")
    times = [t for t, _ in schedule]
    if any(b < a for a, b in zip(times, times[1:])):
        raise SimulationError("schedule breakpoints must be sorted")
    if any(d < 0 for _, d in schedule):
        raise SimulationError("delays must be non-negative")

    def delay(now: float) -> float:
        value = 0.0
        for start_time, amount in schedule:
            if now >= start_time:
                value = amount
            else:
                break
        return value

    return delay


class RandomPerturbation:
    """Random piecewise-constant delay, re-drawn every ``interval`` seconds.

    Used by the Table 1 experiment: delays uniform in ``[low, high]``,
    changing once per minute, independently per perturbed node. The drawn
    schedule is recorded so experiments can report ground truth.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        low: float = 0.0,
        high: float = 0.100,
        interval: float = 60.0,
    ) -> None:
        if not 0 <= low <= high:
            raise SimulationError(f"need 0 <= low <= high, got [{low}, {high}]")
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self.rng = rng
        self.low = low
        self.high = high
        self.interval = interval
        self._drawn: List[float] = []

    def _value_for_epoch(self, epoch: int) -> float:
        while len(self._drawn) <= epoch:
            self._drawn.append(float(self.rng.uniform(self.low, self.high)))
        return self._drawn[epoch]

    def __call__(self, now: float) -> float:
        if now < 0:
            return 0.0
        return self._value_for_epoch(int(now // self.interval))

    def drawn_schedule(self) -> List[float]:
        """Delays drawn so far, one per elapsed interval."""
        return list(self._drawn)


def apply_perturbations(
    nodes: Sequence[ServiceNode],
    rng: np.random.Generator,
    low: float = 0.0,
    high: float = 0.100,
    interval: float = 60.0,
) -> List[RandomPerturbation]:
    """Attach an independent random perturbation to each node (Table 1)."""
    perturbations = []
    for node in nodes:
        perturbation = RandomPerturbation(rng, low=low, high=high, interval=interval)
        node.set_extra_delay(perturbation)
        perturbations.append(perturbation)
    return perturbations


def degrade_link(node: ServiceNode, factor: float) -> DelayFunction:
    """Make a node's effective service time ``factor`` times its mean --
    models the Delta case's "slow database server connection".

    Returns the delay function that was installed (constant extra delay of
    ``(factor - 1) * mean``).
    """
    if factor < 1:
        raise SimulationError(f"degradation factor must be >= 1, got {factor}")
    extra = (factor - 1.0) * node.service_time.mean()

    def delay(now: float) -> float:
        return extra

    node.set_extra_delay(delay)
    return delay
