"""Configuration objects for pathmap analysis.

The paper (Section 3) parameterizes the pathmap algorithm by:

* ``W`` -- the length of the sliding window over which analysis is run,
* ``dW`` -- the service-graph refresh interval (how often the window slides),
* ``tau`` -- the *time quantum*, the smallest delay of interest; the time
  series has one sample per quantum,
* ``omega`` -- the *rectangular sampling window* used by the density
  function; an integral multiple of ``tau`` (the paper recommends
  ``omega = 50 * tau``),
* ``T_u`` -- an upper bound on the end-to-end transaction delay, which caps
  the lag range of the cross-correlation.

All times in this package are floats in **seconds**. Quantum indices are
integers (``i`` in the paper's ``d(i)``).
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import ConfigError

#: Default ratio ``omega / tau`` recommended by the paper (Section 3.5):
#: "For the systems we have analyzed, omega = 50 * tau gave the best set of
#: results."
DEFAULT_OMEGA_QUANTA = 50

#: Spike threshold used in Section 3.3: local maxima exceeding
#: ``mean + 3 * std``.
DEFAULT_SPIKE_SIGMA = 3.0


def _is_multiple(value: float, base: float, rel_tol: float = 1e-6) -> bool:
    """Return True when ``value`` is an integral multiple of ``base``."""
    if base <= 0:
        return False
    ratio = value / base
    return math.isclose(ratio, round(ratio), rel_tol=rel_tol, abs_tol=rel_tol)


@dataclasses.dataclass(frozen=True)
class PathmapConfig:
    """Parameters of the pathmap algorithm (paper Sections 3.3-3.5).

    The defaults mirror the RUBiS configuration used in Section 4.1:
    ``W = 3 min``, ``dW = 1 min``, ``tau = 1 ms``, ``omega = 50 ms`` and
    ``T_u = 1 min``.
    """

    #: Sliding window length ``W`` in seconds.
    window: float = 180.0
    #: Refresh interval ``dW`` in seconds. The service graph is recomputed
    #: every ``refresh_interval`` seconds from the most recent ``window``
    #: seconds of trace.
    refresh_interval: float = 60.0
    #: Time quantum ``tau`` in seconds (resolution of the analysis).
    quantum: float = 1e-3
    #: Rectangular sampling window ``omega`` in seconds. Must be an integral
    #: multiple of ``quantum``.
    sampling_window: float = 50e-3
    #: Upper bound ``T_u`` on the transaction delay, in seconds. Correlation
    #: lags are only evaluated in ``[0, T_u]``.
    max_transaction_delay: float = 60.0
    #: Spike detection threshold, in standard deviations above the mean of
    #: the correlation series.
    spike_sigma: float = DEFAULT_SPIKE_SIGMA
    #: Resolution window in seconds: among spikes closer than this, only the
    #: tallest is kept. Defaults to ``sampling_window`` when None.
    resolution_window: float | None = None
    #: Minimum number of samples two series must overlap on for their
    #: correlation to be considered statistically meaningful.
    min_overlap_samples: int = 8
    #: Absolute floor on spike heights (normalized correlation value).
    #: The paper's mean + 3*sigma rule alone admits occasional chance
    #: alignments on causally unrelated edges (~0.05 high); a small floor
    #: removes them without touching real spikes (typically > 0.3).
    #: 0.0 keeps the paper's exact rule.
    min_spike_height: float = 0.0
    #: Worker threads for the refresh/analysis fan-out (paper Section 3.7:
    #: the service graph of each client node can be computed in parallel).
    #: 1 = fully serial; > 1 shards the per-class pathmap DFS and the
    #: engine's reference-grouped correlator updates across a thread pool.
    #: Results are identical to serial either way.
    workers: int = 1
    #: Refresh parallelism mode: ``"serial"`` (one thread), ``"threads"``
    #: (a ``workers``-wide thread pool; GIL-bound outside the numpy
    #: kernels), ``"processes"`` (consistent-hash sharded worker
    #: *processes* reading blocks over shared memory -- see
    #: :mod:`repro.core.shards`) or ``"auto"`` (the default:
    #: ``threads`` when ``workers > 1``, else ``serial``). Every mode is
    #: bit-identical to serial; only the wall-clock cost changes.
    parallel: str = "auto"
    #: Worker-process count for ``parallel="processes"``. 0 (the
    #: default) falls back to ``workers``.
    shards: int = 0
    #: Trace retention horizon in seconds for bounded-memory collectors
    #: (see :attr:`retention_horizon`). None picks the analysis-safe
    #: default ``3 * window + max_transaction_delay``; an explicit value
    #: must cover at least one window plus the transaction delay bound,
    #: or the retained trace could not serve a full analysis window.
    retention: float | None = None
    #: Drive the sparse-vs-RLE kernel dispatch from the refresh ledger's
    #: *measured* per-kernel cost EWMAs instead of the modeled cost
    #: constant. Output is bit-identical either way (both kernels produce
    #: the same lag products); only which kernel runs may differ. Falls
    #: back to the modeled rule until both kernel EWMAs have warmed up.
    measured_dispatch: bool = False
    #: Dense-regime FFT batch kernel routing. ``"auto"`` (the default)
    #: lets the density dispatch send rows whose direct-kernel cost
    #: exceeds the FFT transform cost to the batched FFT kernel (modeled
    #: frontier by default; measured ns/unit frontier once
    #: ``measured_dispatch`` EWMAs warm). ``"off"`` never uses the FFT
    #: kernel (every row keeps the bit-exact direct kernels -- also the
    #: A/B baseline for benchmarks). ``"force"`` routes every batchable
    #: row through the FFT kernel regardless of density (equivalence
    #: testing). FFT lag products agree with the direct kernels to float
    #: tolerance, not bitwise; see docs/PERFORMANCE.md.
    fft_dispatch: str = "auto"

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ConfigError(f"quantum must be positive, got {self.quantum}")
        if self.window <= 0:
            raise ConfigError(f"window must be positive, got {self.window}")
        if self.refresh_interval <= 0:
            raise ConfigError(
                f"refresh_interval must be positive, got {self.refresh_interval}"
            )
        if self.refresh_interval > self.window:
            raise ConfigError(
                "refresh_interval must not exceed window "
                f"({self.refresh_interval} > {self.window})"
            )
        if self.sampling_window < self.quantum:
            raise ConfigError(
                "sampling_window must be at least one quantum "
                f"({self.sampling_window} < {self.quantum})"
            )
        if not _is_multiple(self.sampling_window, self.quantum):
            raise ConfigError(
                "sampling_window must be an integral multiple of quantum "
                f"(omega={self.sampling_window}, tau={self.quantum})"
            )
        if self.max_transaction_delay <= 0:
            raise ConfigError(
                "max_transaction_delay must be positive, got "
                f"{self.max_transaction_delay}"
            )
        if self.spike_sigma <= 0:
            raise ConfigError(f"spike_sigma must be positive, got {self.spike_sigma}")
        if self.resolution_window is not None and self.resolution_window < 0:
            raise ConfigError(
                f"resolution_window must be non-negative, got {self.resolution_window}"
            )
        if self.min_overlap_samples < 1:
            raise ConfigError(
                f"min_overlap_samples must be >= 1, got {self.min_overlap_samples}"
            )
        if not 0.0 <= self.min_spike_height < 1.0:
            raise ConfigError(
                f"min_spike_height must be in [0, 1), got {self.min_spike_height}"
            )
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.parallel not in ("auto", "serial", "threads", "processes"):
            raise ConfigError(
                "parallel must be one of auto/serial/threads/processes, "
                f"got {self.parallel!r}"
            )
        if self.shards < 0:
            raise ConfigError(f"shards must be >= 0, got {self.shards}")
        if self.fft_dispatch not in ("auto", "off", "force"):
            raise ConfigError(
                "fft_dispatch must be one of auto/off/force, "
                f"got {self.fft_dispatch!r}"
            )
        if self.retention is not None:
            floor = self.window + self.max_transaction_delay
            if self.retention < floor:
                raise ConfigError(
                    "retention must cover window + max_transaction_delay "
                    f"({self.retention} < {floor})"
                )

    # -- derived quantities, all in quanta ---------------------------------

    @property
    def window_quanta(self) -> int:
        """Number of quanta in the sliding window (``W / tau``)."""
        return max(1, round(self.window / self.quantum))

    @property
    def refresh_quanta(self) -> int:
        """Number of quanta in the refresh interval (``dW / tau``)."""
        return max(1, round(self.refresh_interval / self.quantum))

    @property
    def sampling_quanta(self) -> int:
        """Width of the rectangular sampling window in quanta (``omega / tau``)."""
        return max(1, round(self.sampling_window / self.quantum))

    @property
    def max_lag_quanta(self) -> int:
        """Largest correlation lag evaluated, in quanta (``T_u / tau``).

        Capped at ``window_quanta - 1``: lags beyond the window have no
        overlap at all.
        """
        lag = round(self.max_transaction_delay / self.quantum)
        return max(1, min(lag, self.window_quanta - 1))

    @property
    def resolution_quanta(self) -> int:
        """Spike resolution window in quanta.

        Defaults to the sampling window width: the density function already
        smears each message over ``omega``, so spikes closer than ``omega``
        are not distinguishable.
        """
        if self.resolution_window is None:
            return self.sampling_quanta
        return max(1, round(self.resolution_window / self.quantum))

    @property
    def retention_horizon(self) -> float:
        """Trace retention horizon in seconds for a bounded collector.

        :attr:`retention` when set, otherwise ``3 * window +
        max_transaction_delay`` -- enough history for the current window,
        the correlation lag bound and two windows of slack (re-analysis,
        late arrivals), while keeping resident trace memory flat. Pass it
        as ``TraceCollector(retention=config.retention_horizon)``;
        collectors retain everything unless asked.
        """
        if self.retention is not None:
            return self.retention
        return 3.0 * self.window + self.max_transaction_delay

    def with_window(self, window: float, refresh_interval: float | None = None) -> "PathmapConfig":
        """Return a copy with a different sliding window (and optionally dW)."""
        return dataclasses.replace(
            self,
            window=window,
            refresh_interval=(
                refresh_interval if refresh_interval is not None else min(self.refresh_interval, window)
            ),
        )

    def with_resolution(
        self,
        quantum: float,
        omega_quanta: int = DEFAULT_OMEGA_QUANTA,
        max_transaction_delay: float | None = None,
    ) -> "PathmapConfig":
        """Return a copy at a different time resolution.

        ``omega`` is given in quanta (so it always stays an integral
        multiple of the new ``tau``); any explicit resolution window is
        dropped back to its ``omega`` default. This is how the auto-tuner
        and the scenario harness derive comparable configs that differ
        only in resolution.
        """
        return dataclasses.replace(
            self,
            quantum=quantum,
            sampling_window=omega_quanta * quantum,
            max_transaction_delay=(
                max_transaction_delay
                if max_transaction_delay is not None
                else self.max_transaction_delay
            ),
            resolution_window=None,
        )


@dataclasses.dataclass(frozen=True)
class TransportConfig:
    """Parameters of the fault-tolerant tracer -> analyzer transport
    (:mod:`repro.tracing.transport`).

    Thresholds are expressed in refresh intervals (``dW`` multiples)
    because the transport clocks itself off the engine's flush cadence:
    one block per edge per refresh, one heartbeat per tracer per refresh.
    """

    #: Reorder tolerance: how many blocks newer than a hole may arrive
    #: before the hole is declared lost and the stream skips ahead.
    lateness_blocks: int = 2
    #: A tracer unheard for more than this many refresh intervals is
    #: flagged ``lagging`` (its edges degrade).
    stale_after_refreshes: float = 1.5
    #: Beyond this many refresh intervals of silence the tracer is
    #: ``dead`` (its edges are stale).
    dead_after_refreshes: float = 3.0
    #: An edge whose in-window gap ratio exceeds this is ``stale`` even
    #: if its tracer is alive.
    stale_gap_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.lateness_blocks < 0:
            raise ConfigError(
                f"lateness_blocks must be >= 0, got {self.lateness_blocks}"
            )
        if self.stale_after_refreshes <= 0:
            raise ConfigError(
                "stale_after_refreshes must be positive, got "
                f"{self.stale_after_refreshes}"
            )
        if self.dead_after_refreshes < self.stale_after_refreshes:
            raise ConfigError(
                "dead_after_refreshes must be >= stale_after_refreshes "
                f"({self.dead_after_refreshes} < {self.stale_after_refreshes})"
            )
        if not 0.0 < self.stale_gap_ratio <= 1.0:
            raise ConfigError(
                f"stale_gap_ratio must be in (0, 1], got {self.stale_gap_ratio}"
            )


@dataclasses.dataclass(frozen=True)
class LakeConfig:
    """Parameters of the tiered trace lake (:mod:`repro.lake`).

    A lake turns the collector's retention eviction into a write-behind
    spill tier: evicted timestamp arrays land in time-indexed ``.rtb``
    segments under ``root`` with an atomic JSON manifest, historical
    window reads stitch segments back in through an mmap LRU, and (when
    ``summaries`` is on) correlator evictions persist materialized
    correlation summaries for ``repro history`` drift queries.
    """

    #: Lake directory (created if missing). None disables the lake.
    root: str | None = None
    #: Per-stream write-behind buffer threshold in payload bytes; a
    #: stream's buffered evictions are cut into one segment once they
    #: cross it.
    segment_bytes: int = 256 * 1024
    #: Open segment mappings kept by the read path's LRU.
    mapping_cache: int = 64
    #: Persist materialized correlation summaries at correlator-eviction
    #: time (serial/threads engines only; the raw spill tier is
    #: mode-independent).
    summaries: bool = True

    def __post_init__(self) -> None:
        if self.segment_bytes < 8:
            raise ConfigError(
                f"segment_bytes must be >= 8, got {self.segment_bytes}"
            )
        if self.mapping_cache < 1:
            raise ConfigError(
                f"mapping_cache must be >= 1, got {self.mapping_cache}"
            )


#: Configuration used for the RUBiS experiments in Section 4.1.
RUBIS_CONFIG = PathmapConfig(
    window=180.0,
    refresh_interval=60.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=60.0,
)

#: Configuration used for the Delta Revenue Pipeline analysis in Section 4.3
#: (W = 1 hour, tau = 1 s, omega = 50 s).
DELTA_CONFIG = PathmapConfig(
    window=3600.0,
    refresh_interval=600.0,
    quantum=1.0,
    sampling_window=50.0,
    max_transaction_delay=1800.0,
)
