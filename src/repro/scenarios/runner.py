"""Scenario runner: replay the analysis over a simulated run and grade it.

Offline mirror of the online engine loop: simulate the scenario once,
then for every refresh tick rebuild the sliding window from the trace
collector, run pathmap, and grade each class against ground truth. Two
analysis modes share the loop:

* :func:`analyze_static` -- one fixed :class:`PathmapConfig` for every
  refresh (the scenario's base config, or any config re-paced to the
  scenario's W/dW). The static grid (:data:`STATIC_GRID`) is what the
  benchmark matrix sweeps.
* :func:`analyze_adaptive` -- the closed loop. Every refresh,
  per class: calibrate traffic statistics from the class's observed
  reference-edge timestamps, auto-tune (tau, omega, T_u) with
  :func:`~repro.core.autotune.autotune_config` (the transaction-delay
  hint comes from the previous refresh's graph), group classes that
  tuned to the same config, and analyze each group at its own
  resolution. A :class:`~repro.core.change_detection.ChangeDetector`
  watches every refresh; after a detected shift, windows that straddle
  the change point are clipped to the post-change span, so delay labels
  re-converge in one refresh instead of a full window. Classes whose
  window contains no traffic are reported as silence, never analyzed
  from stale data.

Both modes return a :class:`~repro.scenarios.scoring.ScenarioScore`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import PathmapConfig
from repro.core.autotune import (
    TrafficStats,
    autotune_config,
    observed_delay_bound,
)
from repro.core.change_detection import ChangeDetector
from repro.core.pathmap import PathmapResult, compute_service_graphs
from repro.scenarios.base import ScenarioRun
from repro.scenarios.scoring import (
    ScenarioScore,
    detection_latencies,
    score_refresh,
)
from repro.tracing.records import NodeId

#: The static resolution grid the benchmark matrix sweeps: name ->
#: (tau seconds, omega in quanta, T_u seconds). "fast" is the paper's
#: RUBiS resolution; "slow" suits 100ms+ services; "medium" splits the
#: difference. Each is re-paced to the scenario's own W/dW.
STATIC_GRID: Dict[str, Tuple[float, int, float]] = {
    "fast": (1e-3, 50, 0.5),
    "medium": (5e-3, 50, 2.0),
    "slow": (20e-3, 50, 10.0),
}


def grid_config(run: ScenarioRun, name: str) -> PathmapConfig:
    """The named grid resolution re-paced to ``run``'s window/refresh."""
    tau, omega_quanta, tu = STATIC_GRID[name]
    return run.config.with_resolution(tau, omega_quanta, tu)


def _repace(run: ScenarioRun, config: PathmapConfig) -> PathmapConfig:
    """Force ``config`` onto the scenario's pacing so refresh grading
    stays comparable across configs (resolution is what varies)."""
    if (
        config.window == run.config.window
        and config.refresh_interval == run.config.refresh_interval
    ):
        return config
    return dataclasses.replace(
        config,
        window=run.config.window,
        refresh_interval=run.config.refresh_interval,
    )


def analyze_static(
    run: ScenarioRun,
    config: Optional[PathmapConfig] = None,
    mode: str = "static",
) -> ScenarioScore:
    """Grade one fixed config over every refresh of the scenario."""
    run.simulate()
    cfg = run.config if config is None else _repace(run, config)
    collector = run.topology.collector
    detector = ChangeDetector()
    keys = run.class_keys()
    cells = []
    for end in run.refresh_ends():
        start = end - cfg.window
        window = collector.window(cfg, end)
        result = compute_service_graphs(window, cfg, workers=cfg.workers)
        detector.record(end, result)
        for cls, (client, front) in keys.items():
            graph = result.graphs.get((client, front))
            cells.append(
                score_refresh(graph, run.truths[cls], cls, client, start, end)
            )
    detections = [(e.time, e.edge) for e in detector.events()]
    return ScenarioScore(
        run.name,
        mode,
        run.seed,
        cells,
        detection_latencies(run.change_points, detections),
    )


#: A change event smaller than this (seconds) does not trigger window
#: clipping -- same default as the online AdaptiveController.
MIN_CLIP_SHIFT = 0.01

#: Classes with fewer reference-edge observations than this in a window
#: are reported as silence (no analysis can be calibrated on them).
MIN_CALIBRATION_REQUESTS = 2


def analyze_adaptive(run: ScenarioRun, mode: str = "adaptive") -> ScenarioScore:
    """Grade the self-tuning analysis over every refresh of the scenario."""
    run.simulate()
    base = run.config
    collector = run.topology.collector
    detector = ChangeDetector()
    keys = run.class_keys()
    cells = []
    #: Per-class transaction-delay hint from the previous refresh.
    delay_hints: Dict[str, float] = {}
    #: Time of the latest clip-worthy detected change (None = none yet).
    change_clip: Optional[float] = None

    for end in run.refresh_ends():
        start = end - base.window
        # Clip windows that straddle a detected change: keep only the
        # span from one refresh before the detection (the change lies in
        # (detect - dW, detect]) so two delay regimes never share a
        # window longer than necessary.
        win_start = start
        if change_clip is not None:
            clipped = change_clip - base.refresh_interval
            if start < clipped <= end - 2.0 * base.refresh_interval:
                win_start = clipped

        # -- calibrate every class from its observed reference edge -----
        groups: Dict[PathmapConfig, List[Tuple[str, NodeId, NodeId]]] = {}
        silent: List[Tuple[str, NodeId]] = []
        for cls, (client, front) in keys.items():
            stamps = collector.edge_timestamps(client, front)
            lo = int(np.searchsorted(stamps, win_start))
            hi = int(np.searchsorted(stamps, end))
            stamps = stamps[lo:hi]
            if stamps.size < MIN_CALIBRATION_REQUESTS:
                silent.append((cls, client))
                continue
            stats = TrafficStats.from_timestamps(
                stamps, win_start, end, delay_bound=delay_hints.get(cls)
            )
            tuned = autotune_config(base, stats)
            groups.setdefault(tuned, []).append((cls, client, front))

        # -- analyze each resolution group over the (clipped) window ----
        events_before = len(detector.events())
        for cfg in sorted(
            groups,
            key=lambda c: (c.quantum, c.sampling_window, c.max_transaction_delay),
        ):
            members = groups[cfg]
            cfg_run = (
                cfg if win_start == start else cfg.with_window(end - win_start)
            )
            window = collector.window(cfg_run, end, start_time=win_start)
            result = compute_service_graphs(window, cfg_run, workers=cfg_run.workers)
            # Feed the detector only this group's classes, so a class
            # analyzed in one group is never double-recorded via another
            # group's (whole-window) result.
            detector.record(
                end,
                PathmapResult(
                    {
                        (client, front): result.graphs[(client, front)]
                        for (_, client, front) in members
                        if (client, front) in result.graphs
                    },
                    result.stats,
                ),
            )
            for cls, client, front in members:
                graph = result.graphs.get((client, front))
                if graph is not None:
                    observed = observed_delay_bound(graph)
                    if observed is not None:
                        # Ratchet with slow decay: a refresh that loses
                        # deep edges must not collapse the hint (and
                        # thereby T_u) in one step -- that feedback loop
                        # never recovers.
                        previous = delay_hints.get(cls, 0.0)
                        delay_hints[cls] = max(observed, 0.5 * previous)
                cells.append(
                    score_refresh(
                        graph, run.truths[cls], cls, client, win_start, end
                    )
                )
        # Silence says nothing about service delays, so hints survive a
        # trough: when the class returns, tuning resumes where it was.
        for cls, client in silent:
            cells.append(
                score_refresh(None, run.truths[cls], cls, client, win_start, end)
            )

        # -- arm window clipping off fresh detections --------------------
        for event in detector.events()[events_before:]:
            if abs(event.magnitude) >= MIN_CLIP_SHIFT:
                change_clip = end if change_clip is None else max(change_clip, end)

    detections = [(e.time, e.edge) for e in detector.events()]
    return ScenarioScore(
        run.name,
        mode,
        run.seed,
        cells,
        detection_latencies(run.change_points, detections),
    )


def run_scenario(
    run: ScenarioRun,
    adaptive: bool = False,
    config: Optional[PathmapConfig] = None,
    mode: Optional[str] = None,
) -> ScenarioScore:
    """Simulate (if needed) and grade one scenario run.

    ``adaptive=True`` runs the self-tuning analysis; otherwise ``config``
    (default: the scenario's own base config) is graded statically.
    """
    if adaptive:
        return analyze_adaptive(run, mode=mode or "adaptive")
    return analyze_static(run, config=config, mode=mode or "static")
