"""Non-steady-state scenario suite with ground-truth accuracy scoring.

E2EProf's pathmap assumes near-steady-state traffic inside each analysis
window, and the paper concedes degradation under large queueing delays
and drastic traffic variation (Section 4.3). This package is the
measurement substrate for that concession: a parameterized library of
labeled workloads -- flash crowd, diurnal cycle, retry storm, cache
stampede, canary shift, 100+-service fan-out mesh -- each built on the
simulation substrate with exact ground truth attached, plus a scoring
harness that grades any :class:`~repro.config.PathmapConfig` (or the
adaptive auto-tuned analysis) against any scenario on path
precision/recall/F1, delay-estimate error and change-detection latency.

Usage::

    from repro.scenarios import get_scenario, run_scenario

    run = get_scenario("flash_crowd").build(seed=7)
    score = run_scenario(run, adaptive=True)
    print(score.aggregate_f1, score.mean_delay_error)

or from the CLI: ``repro scenarios list | run | score``.
"""

from repro.scenarios.base import ChangePoint, Scenario, ScenarioRun
from repro.scenarios.library import SCENARIOS, get_scenario, list_scenarios
from repro.scenarios.runner import analyze_adaptive, analyze_static, run_scenario
from repro.scenarios.scoring import (
    ClassScore,
    EdgeScore,
    ScenarioScore,
    edge_f1,
    score_refresh,
)

__all__ = [
    "ChangePoint",
    "ClassScore",
    "EdgeScore",
    "SCENARIOS",
    "Scenario",
    "ScenarioRun",
    "ScenarioScore",
    "analyze_adaptive",
    "analyze_static",
    "edge_f1",
    "get_scenario",
    "list_scenarios",
    "run_scenario",
    "score_refresh",
]
