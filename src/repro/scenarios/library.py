"""The scenario catalog.

Eight labeled workloads spanning the regimes where pathmap's
steady-state assumption holds, bends and breaks:

========================  =====================================================
``steady_state``          Poisson baseline (the paper's RUBiS regime).
``fanout_mesh``           Steady traffic at 100+-service scale (fan-out mesh).
``flash_crowd``           8x rate step mid-run; queueing shifts deep delays.
``diurnal_cycle``         Slow sinusoidal load on slow (100ms+) services.
``retry_storm``           Backend slowdown + timeout retries (load feedback).
``cache_stampede``        Periodic cache expiry re-routes traffic in bursts.
``canary_shift``          Traffic ramps 0 -> 100% from path v1 to path v2.
``traffic_trough``        Rate drops to zero mid-run, then recovers.
========================  =====================================================

Every builder is deterministic per seed: same seed, same topology, same
record stream. Perturbations are driven by the simulation clock, and all
randomness flows from the topology's seeded generator.

Adding a scenario: write a ``_build_<name>(seed) -> ScenarioRun`` that
wires a topology with ground truth attached *before* traffic starts,
register it in :data:`SCENARIOS`, and document it in
``docs/SCENARIOS.md``. Mark it ``steady=True`` only if its traffic honours
the steady-state assumption end to end (steady scenarios form the
regression baseline the adaptive analysis must not regress).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.apps.mesh import build_mesh
from repro.config import PathmapConfig
from repro.errors import AnalysisError
from repro.scenarios.base import ChangePoint, Scenario, ScenarioRun
from repro.simulation.distributions import Erlang
from repro.simulation.groundtruth import GroundTruth
from repro.simulation.nodes import (
    Decision,
    Forward,
    Message,
    Reply,
    Router,
    ServiceNode,
    StaticRouter,
)
from repro.simulation.topology import Topology

#: Fast-regime analysis pacing: millisecond services, 8 s window.
FAST_CONFIG = PathmapConfig(
    window=8.0,
    refresh_interval=2.0,
    quantum=1e-3,
    sampling_window=50e-3,
    max_transaction_delay=0.5,
    min_spike_height=0.10,
)

#: Slow-regime analysis pacing for the diurnal scenario: 100ms+ services
#: need a coarser quantum and a far larger transaction-delay bound.
SLOW_CONFIG = PathmapConfig(
    window=60.0,
    refresh_interval=15.0,
    quantum=20e-3,
    sampling_window=1.0,
    max_transaction_delay=10.0,
    min_spike_height=0.10,
)


class StampedeRouter(Router):
    """Cache node: replies from cache except during periodic expiry
    windows, when every request stampedes through to the backing store.

    ``(now - offset) mod period < duration`` defines the stampede
    windows -- pure simulation-clock logic, deterministic per seed.
    """

    def __init__(
        self,
        target: str,
        period: float = 8.0,
        duration: float = 1.0,
        offset: float = 0.0,
    ) -> None:
        if period <= 0 or not 0 < duration < period:
            raise AnalysisError(
                f"need 0 < duration < period, got {duration}/{period}"
            )
        self.target = target
        self.period = period
        self.duration = duration
        self.offset = offset

    def in_stampede(self, now: float) -> bool:
        return (now - self.offset) % self.period < self.duration

    def route(self, node: ServiceNode, message: Message) -> Decision:
        if self.in_stampede(node.sim.now):
            return Forward(self.target)
        return Reply()


class CanaryRouter(Router):
    """Load balancer shifting traffic between two path variants.

    Each request goes to ``v2`` with probability ``fraction(now)`` (else
    ``v1``), drawn from the node's seeded generator -- the canary ramp of
    a progressive rollout. ``fraction`` returning 1.0 retires v1
    entirely: its path disappears mid-run.
    """

    def __init__(self, v1: str, v2: str, fraction) -> None:
        self.v1 = v1
        self.v2 = v2
        self.fraction = fraction

    def route(self, node: ServiceNode, message: Message) -> Decision:
        p = min(max(self.fraction(node.sim.now), 0.0), 1.0)
        # Consume exactly one uniform per request regardless of p, so
        # seeded runs stay aligned across fraction schedules.
        if float(node.rng.uniform()) < p:
            return Forward(self.v2)
        return Forward(self.v1)


def _three_tier(
    topo: Topology,
    index: int,
    cls: str,
    fe_kwargs: Optional[dict] = None,
    ap_kwargs: Optional[dict] = None,
) -> Tuple[str, str]:
    """One ``C -> FE -> AP -> DB`` stack (DB must already exist).
    Returns (client node id, front-end node id)."""
    fe_kwargs = dict(fe_kwargs or {})
    ap_kwargs = dict(ap_kwargs or {})
    ap_kwargs.setdefault("service_time", Erlang(0.006, k=8))
    ap_kwargs.setdefault("workers", 8)
    fe_kwargs.setdefault("service_time", Erlang(0.002, k=8))
    fe_kwargs.setdefault("workers", 8)
    topo.add_service_node(
        f"AP{index}", router=StaticRouter({}, default="DB"), **ap_kwargs
    )
    topo.add_service_node(
        f"FE{index}", router=StaticRouter({}, default=f"AP{index}"), **fe_kwargs
    )
    topo.add_client(f"C{index}", cls, front_end=f"FE{index}")
    return f"C{index}", f"FE{index}"


def _finish(
    name: str,
    topo: Topology,
    config: PathmapConfig,
    duration: float,
    clients: Dict[str, str],
    fronts: Dict[str, str],
    change_points: Optional[List[ChangePoint]] = None,
    steady: bool = False,
    warmup: float = 0.0,
) -> ScenarioRun:
    truths: Dict[str, GroundTruth] = {
        cls: topo.ground_truth(front) for cls, front in fronts.items()
    }
    return ScenarioRun(
        name=name,
        topology=topo,
        config=config,
        duration=duration,
        clients=clients,
        fronts=fronts,
        truths=truths,
        change_points=list(change_points or []),
        steady=steady,
        warmup=warmup,
    )


def _build_steady_state(seed: int) -> ScenarioRun:
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.004, k=8), workers=16)
    clients, fronts = {}, {}
    for i, cls in enumerate(("browse", "bid", "sell")):
        client, front = _three_tier(topo, i, cls)
        clients[cls], fronts[cls] = client, front
    run = _finish(
        "steady_state", topo, FAST_CONFIG, 30.0, clients, fronts,
        steady=True, warmup=2.0,
    )
    for cls in clients:
        topo.open_workload(topo.clients[clients[cls]], rate=10.0)
    return run


def _build_fanout_mesh(seed: int) -> ScenarioRun:
    # build_mesh wires its own workloads; attach ground truth first by
    # rebuilding the hooks -- the recorders tap the fabric, and no
    # traffic flows until run_until, so attach order is safe here.
    mesh = build_mesh(classes=24, backends=48, stores=8, fanout=3,
                      seed=seed, request_rate=5.0)
    topo = mesh.topology
    clients = {cls: client.node_id for cls, client in mesh.clients.items()}
    return _finish(
        "fanout_mesh", topo, mesh.config, 20.0, clients, mesh.fronts,
        steady=True, warmup=2.0,
    )


def _build_flash_crowd(seed: int) -> ScenarioRun:
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.004, k=8), workers=16)
    clients, fronts = {}, {}
    # The crowd class's app server is deliberately under-provisioned:
    # the 8x rate step drives its utilization toward saturation, so
    # queueing shifts every downstream arrival -- the "large queueing
    # delays" regime of paper Section 4.3.
    client, front = _three_tier(
        topo, 0, "crowd",
        ap_kwargs={"service_time": Erlang(0.015, k=8), "workers": 1},
    )
    clients["crowd"], fronts["crowd"] = client, front
    client, front = _three_tier(topo, 1, "background")
    clients["background"], fronts["background"] = client, front
    run = _finish(
        "flash_crowd", topo, FAST_CONFIG, 30.0, clients, fronts,
        change_points=[
            ChangePoint(14.0, "flash crowd onset (6 -> 48 req/s)", ("AP0", "DB")),
            ChangePoint(22.0, "flash crowd subsides"),
        ],
        warmup=2.0,
    )
    topo.modulated_workload(
        topo.clients[clients["crowd"]],
        lambda t: 48.0 if 14.0 <= t < 22.0 else 6.0,
        peak_rate=48.0,
    )
    topo.open_workload(topo.clients[clients["background"]], rate=8.0)
    return run


def _build_diurnal_cycle(seed: int) -> ScenarioRun:
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.100, k=8), workers=16)
    clients, fronts = {}, {}
    for i, cls in enumerate(("day", "night")):
        client, front = _three_tier(
            topo, i, cls,
            fe_kwargs={"service_time": Erlang(0.150, k=8), "workers": 8},
            ap_kwargs={"service_time": Erlang(0.300, k=8), "workers": 8},
        )
        clients[cls], fronts[cls] = client, front
    run = _finish(
        "diurnal_cycle", topo, SLOW_CONFIG, 140.0, clients, fronts,
        warmup=0.0,
    )
    period = 40.0
    for phase, cls in enumerate(clients):
        topo.modulated_workload(
            topo.clients[clients[cls]],
            # Opposite phases: "day" peaks while "night" troughs.
            lambda t, p=phase: 3.0
            * (1.0 + 0.9 * math.sin(2.0 * math.pi * (t / period + 0.5 * p))),
            peak_rate=6.0,
        )
    return run


def _build_retry_storm(seed: int) -> ScenarioRun:
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.004, k=8), workers=16)
    clients, fronts = {}, {}
    client, front = _three_tier(topo, 0, "orders")
    clients["orders"], fronts["orders"] = client, front
    client, front = _three_tier(topo, 1, "background")
    clients["background"], fronts["background"] = client, front
    run = _finish(
        "retry_storm", topo, FAST_CONFIG, 30.0, clients, fronts,
        change_points=[
            # The slowdown is injected into DB *processing*, so request
            # arrivals at DB are unchanged; the response edge back to
            # the app server is where the delay shift lands.
            ChangePoint(14.0, "DB slows by 300 ms; retries ignite", ("DB", "AP0")),
        ],
        warmup=2.0,
    )
    topo.retry_workload(
        topo.clients[clients["orders"]], rate=8.0,
        timeout=0.2, retry_delay=0.1, max_retries=2,
    )
    topo.open_workload(topo.clients[clients["background"]], rate=8.0)
    topo.node("DB").set_extra_delay(lambda t: 0.3 if t >= 14.0 else 0.0)
    return run


def _build_cache_stampede(seed: int) -> ScenarioRun:
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.010, k=8), workers=8)
    router = StampedeRouter("DB", period=8.0, duration=1.0, offset=4.0)
    topo.add_service_node("CACHE", Erlang(0.001, k=8), workers=8, router=router)
    topo.add_service_node(
        "FE0", Erlang(0.002, k=8), workers=8,
        router=StaticRouter({}, default="CACHE"),
    )
    topo.add_client("C0", "lookup", front_end="FE0")
    clients = {"lookup": "C0"}
    fronts = {"lookup": "FE0"}
    run = _finish(
        "cache_stampede", topo, FAST_CONFIG, 30.0, clients, fronts,
        warmup=2.0,
    )
    topo.open_workload(topo.clients["C0"], rate=12.0)
    return run


def _build_canary_shift(seed: int) -> ScenarioRun:
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.004, k=8), workers=16)
    for v in (1, 2):
        topo.add_service_node(
            f"AP{v}",
            # v2 is the faster rewrite being canaried in.
            Erlang(0.008 if v == 1 else 0.003, k=8),
            workers=8,
            router=StaticRouter({}, default="DB"),
        )

    def fraction(t: float) -> float:
        if t < 10.0:
            return 0.0
        if t >= 18.0:
            return 1.0
        return (t - 10.0) / 8.0

    topo.add_service_node(
        "LB", Erlang(0.001, k=8), workers=8,
        router=CanaryRouter("AP1", "AP2", fraction),
    )
    topo.add_client("C0", "checkout", front_end="LB")
    clients = {"checkout": "C0"}
    fronts = {"checkout": "LB"}
    run = _finish(
        "canary_shift", topo, FAST_CONFIG, 32.0, clients, fronts,
        change_points=[
            ChangePoint(10.0, "canary ramp begins (v1 -> v2)"),
            ChangePoint(18.0, "100% on v2; v1 path retired"),
        ],
        warmup=2.0,
    )
    topo.open_workload(topo.clients["C0"], rate=12.0)
    return run


def _build_traffic_trough(seed: int) -> ScenarioRun:
    topo = Topology(seed=seed)
    topo.add_service_node("DB", Erlang(0.004, k=8), workers=16)
    clients, fronts = {}, {}
    client, front = _three_tier(topo, 0, "regional")
    clients["regional"], fronts["regional"] = client, front
    client, front = _three_tier(topo, 1, "steady")
    clients["steady"], fronts["steady"] = client, front
    run = _finish(
        "traffic_trough", topo, FAST_CONFIG, 32.0, clients, fronts,
        change_points=[
            ChangePoint(14.0, "regional traffic drops to zero"),
            ChangePoint(24.0, "regional traffic returns"),
        ],
        warmup=2.0,
    )
    topo.modulated_workload(
        topo.clients[clients["regional"]],
        lambda t: 0.0 if 14.0 <= t < 24.0 else 10.0,
        peak_rate=10.0,
    )
    topo.open_workload(topo.clients[clients["steady"]], rate=8.0)
    return run


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "steady_state",
            "Poisson baseline: three 3-tier classes over a shared DB",
            _build_steady_state,
            steady=True,
            tags=("baseline",),
        ),
        Scenario(
            "fanout_mesh",
            "Steady traffic across a 128-node fan-out mesh (24 classes)",
            _build_fanout_mesh,
            steady=True,
            tags=("baseline", "scale"),
        ),
        Scenario(
            "flash_crowd",
            "8x rate step onto an under-provisioned app server",
            _build_flash_crowd,
            tags=("bursty", "queueing"),
        ),
        Scenario(
            "diurnal_cycle",
            "Slow sinusoidal load on 100ms+ services (coarse regime)",
            _build_diurnal_cycle,
            tags=("slow", "nonstationary"),
        ),
        Scenario(
            "retry_storm",
            "Backend slowdown ignites timeout-driven client retries",
            _build_retry_storm,
            tags=("bursty", "feedback", "change"),
        ),
        Scenario(
            "cache_stampede",
            "Periodic cache expiry stampedes traffic to the store",
            _build_cache_stampede,
            tags=("bursty", "path-variant"),
        ),
        Scenario(
            "canary_shift",
            "Traffic ramps 0 -> 100% from path v1 to v2; v1 disappears",
            _build_canary_shift,
            tags=("path-variant", "disappearance", "change"),
        ),
        Scenario(
            "traffic_trough",
            "Traffic drops to zero mid-run, then recovers",
            _build_traffic_trough,
            tags=("trough", "disappearance"),
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise AnalysisError(f"unknown scenario {name!r} (known: {known})") from None


def list_scenarios() -> List[Scenario]:
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]
