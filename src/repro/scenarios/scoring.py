"""Accuracy harness: grade pathmap output against exact ground truth.

The unit of grading is one (refresh, service class) pair: the edges a
:class:`~repro.core.service_graph.ServiceGraph` claims the class
traversed, versus the edges its requests actually traversed during that
analysis window (the ground-truth recorder windows by *front-end
arrival*, the same time origin pathmap's delay labels use). From the
edge confusion we derive:

* **path precision / recall / F1** -- did the analysis find the real
  causal edges, and only those? Empty-vs-empty counts as a perfect score
  (correctly reporting silence *is* the right answer for a traffic
  trough); claiming edges for a class with no traffic scores zero (the
  stale-path failure mode).
* **delay error** -- median relative error of the predicted cumulative
  delay labels on true-positive edges, against the true mean delay.
* **change-detection latency** -- per labeled
  :class:`~repro.scenarios.base.ChangePoint`, how long after the shift
  the first matching :class:`~repro.core.change_detection.ChangeEvent`
  fired (None if never detected).

Aggregation is deliberately flat: a :class:`ScenarioScore` averages F1
over every (refresh, class) cell, so a config cannot hide a broken
regime behind a good steady-state stretch.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.service_graph import ServiceGraph
from repro.scenarios.base import ChangePoint
from repro.simulation.groundtruth import GroundTruth
from repro.tracing.records import NodeId

EdgeKey = Tuple[NodeId, NodeId]

#: A truth edge must carry at least this many requests inside the window
#: to count as required (single stragglers at window borders are noise no
#: correlation threshold should be penalized for missing).
DEFAULT_MIN_COUNT = 2

#: Relative delay errors are computed against max(true delay, this floor)
#: so sub-millisecond truths don't explode the ratio.
DELAY_FLOOR = 1e-3


def edge_f1(
    predicted: Set[EdgeKey], truth: Set[EdgeKey]
) -> Tuple[float, float, float]:
    """(precision, recall, F1) of a predicted edge set.

    Both sets empty is a perfect (1, 1, 1): the class had no traffic and
    the analysis correctly stayed silent. Predicting edges for an empty
    truth scores precision 0 -- the stale-path penalty.
    """
    if not predicted and not truth:
        return (1.0, 1.0, 1.0)
    tp = len(predicted & truth)
    precision = tp / len(predicted) if predicted else 1.0
    recall = tp / len(truth) if truth else 0.0
    if precision + recall == 0.0:
        return (precision, recall, 0.0)
    return (precision, recall, 2.0 * precision * recall / (precision + recall))


@dataclasses.dataclass(frozen=True)
class EdgeScore:
    """Verdict for one edge of one (refresh, class) cell."""

    edge: EdgeKey
    #: "tp" (found, real), "fp" (claimed, not real), "fn" (real, missed).
    verdict: str
    #: True mean cumulative delay inside the window (None for fp edges).
    true_delay: Optional[float] = None
    #: Predicted cumulative delay labels (empty for fn edges).
    predicted_delays: Tuple[float, ...] = ()
    #: Relative error of the closest predicted label (tp edges only).
    delay_error: Optional[float] = None


@dataclasses.dataclass
class ClassScore:
    """Accuracy of one service class in one refresh window."""

    service_class: str
    window_end: float
    precision: float
    recall: float
    f1: float
    edges: List[EdgeScore] = dataclasses.field(default_factory=list)

    @property
    def delay_errors(self) -> List[float]:
        return [e.delay_error for e in self.edges if e.delay_error is not None]

    @property
    def median_delay_error(self) -> Optional[float]:
        errors = sorted(self.delay_errors)
        if not errors:
            return None
        mid = len(errors) // 2
        if len(errors) % 2:
            return errors[mid]
        return 0.5 * (errors[mid - 1] + errors[mid])

    def to_dict(self) -> Dict:
        return {
            "class": self.service_class,
            "window_end": self.window_end,
            "precision": round(self.precision, 4),
            "recall": round(self.recall, 4),
            "f1": round(self.f1, 4),
            "median_delay_error": (
                None
                if self.median_delay_error is None
                else round(self.median_delay_error, 4)
            ),
            "tp": sum(1 for e in self.edges if e.verdict == "tp"),
            "fp": sum(1 for e in self.edges if e.verdict == "fp"),
            "fn": sum(1 for e in self.edges if e.verdict == "fn"),
        }


def _true_edges(
    truth: GroundTruth,
    service_class: str,
    client: NodeId,
    since: float,
    until: float,
    min_count: int,
) -> Set[EdgeKey]:
    """Ground-truth edge set for one window, restricted to what a passive
    enterprise-side observer could ever see: edges touching the untraced
    client are dropped (the implicit client edge is likewise dropped from
    predictions)."""
    counts = truth.traversed_edges(service_class, since=since, until=until)
    return {
        edge
        for edge, count in counts.items()
        if count >= min_count and client not in edge
    }


def score_refresh(
    graph: Optional[ServiceGraph],
    truth: GroundTruth,
    service_class: str,
    client: NodeId,
    window_start: float,
    window_end: float,
    min_count: int = DEFAULT_MIN_COUNT,
) -> ClassScore:
    """Grade one service graph against the requests its window contained.

    ``graph`` may be None (analysis produced nothing for the class) --
    scored as an empty prediction, which is perfect against an empty
    truth and zero-recall against a populated one.
    """
    real = _true_edges(
        truth, service_class, client, window_start, window_end, min_count
    )
    if graph is None:
        predicted: Set[EdgeKey] = set()
    else:
        predicted = {
            edge for edge in graph.edge_set() if client not in edge
        }
    precision, recall, f1 = edge_f1(predicted, real)

    edges: List[EdgeScore] = []
    for edge in sorted(predicted | real):
        if edge in predicted and edge in real:
            true_delay = truth.mean_edge_delay(
                service_class, edge, since=window_start, until=window_end
            )
            labels = tuple(graph.edge(*edge).delays)
            error: Optional[float] = None
            if labels and not math.isnan(true_delay):
                error = min(
                    abs(label - true_delay) / max(true_delay, DELAY_FLOOR)
                    for label in labels
                )
            edges.append(
                EdgeScore(edge, "tp", true_delay, labels, error)
            )
        elif edge in predicted:
            edges.append(
                EdgeScore(edge, "fp", None, tuple(graph.edge(*edge).delays))
            )
        else:
            true_delay = truth.mean_edge_delay(
                service_class, edge, since=window_start, until=window_end
            )
            edges.append(EdgeScore(edge, "fn", true_delay))
    return ClassScore(service_class, window_end, precision, recall, f1, edges)


def detection_latencies(
    change_points: Sequence[ChangePoint],
    detections: Iterable[Tuple[float, Optional[EdgeKey]]],
    horizon: float = float("inf"),
) -> List[Optional[float]]:
    """Latency (seconds) from each labeled change point to its first
    matching detection, or None if nothing matched before ``horizon``.

    A detection ``(time, edge)`` matches a change point when it fires at
    or after the shift and either side leaves the edge unspecified or the
    edges agree.
    """
    events = sorted(detections, key=lambda d: d[0])
    out: List[Optional[float]] = []
    for point in change_points:
        latency: Optional[float] = None
        for time, edge in events:
            if time < point.time or time > horizon:
                continue
            if point.edge is not None and edge is not None and edge != point.edge:
                continue
            latency = time - point.time
            break
        out.append(latency)
    return out


@dataclasses.dataclass
class ScenarioScore:
    """Aggregate accuracy of one analysis mode on one scenario run."""

    scenario: str
    #: Which analysis produced this score ("adaptive", "static:fast", ...).
    mode: str
    seed: int
    cells: List[ClassScore] = dataclasses.field(default_factory=list)
    #: Per labeled change point: detection latency in seconds, or None.
    detection: List[Optional[float]] = dataclasses.field(default_factory=list)

    @property
    def aggregate_f1(self) -> float:
        """Mean F1 over every (refresh, class) cell -- the headline."""
        if not self.cells:
            return 0.0
        return sum(cell.f1 for cell in self.cells) / len(self.cells)

    @property
    def aggregate_precision(self) -> float:
        if not self.cells:
            return 0.0
        return sum(cell.precision for cell in self.cells) / len(self.cells)

    @property
    def aggregate_recall(self) -> float:
        if not self.cells:
            return 0.0
        return sum(cell.recall for cell in self.cells) / len(self.cells)

    @property
    def mean_delay_error(self) -> Optional[float]:
        errors = [e for cell in self.cells for e in cell.delay_errors]
        if not errors:
            return None
        return sum(errors) / len(errors)

    @property
    def detected_fraction(self) -> Optional[float]:
        if not self.detection:
            return None
        hits = sum(1 for latency in self.detection if latency is not None)
        return hits / len(self.detection)

    def to_dict(self, include_cells: bool = False) -> Dict:
        out = {
            "scenario": self.scenario,
            "mode": self.mode,
            "seed": self.seed,
            "aggregate_f1": round(self.aggregate_f1, 4),
            "aggregate_precision": round(self.aggregate_precision, 4),
            "aggregate_recall": round(self.aggregate_recall, 4),
            "mean_delay_error": (
                None
                if self.mean_delay_error is None
                else round(self.mean_delay_error, 4)
            ),
            "cells": len(self.cells),
            "detection_latencies": [
                None if latency is None else round(latency, 3)
                for latency in self.detection
            ],
        }
        if include_cells:
            out["cell_scores"] = [cell.to_dict() for cell in self.cells]
        return out
