"""Scenario abstractions: labeled workloads with ground truth attached.

A :class:`Scenario` is a named, seeded recipe; :meth:`Scenario.build`
wires a fresh :class:`~repro.simulation.topology.Topology` with ground
truth recorders and scheduled perturbations and returns a
:class:`ScenarioRun` -- everything the scoring harness needs to simulate,
analyze and grade one instance:

* per-class ground truth (which edges, what delays -- the labels),
* the scenario's base analysis config (its pacing: W and dW),
* labeled :class:`ChangePoint` markers for change-detection latency,
* a ``steady`` flag separating regression baselines from stress cases.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from repro.config import PathmapConfig
from repro.errors import AnalysisError
from repro.simulation.groundtruth import GroundTruth
from repro.simulation.topology import Topology
from repro.tracing.records import NodeId

EdgeKey = Tuple[NodeId, NodeId]


@dataclasses.dataclass(frozen=True)
class ChangePoint:
    """A labeled moment where the system's behaviour shifts.

    ``edge`` optionally names the edge whose *observed arrival delays*
    shift (the edge a change detector should flag); None marks a pure
    traffic-shape change with no specific delay edge.
    """

    time: float
    description: str
    edge: Optional[EdgeKey] = None


@dataclasses.dataclass
class ScenarioRun:
    """One wired scenario instance, ready to simulate and grade."""

    name: str
    topology: Topology
    #: The scenario's base analysis config. Its window/refresh pacing is
    #: kept by every graded config; resolution (tau/omega/T_u) is what
    #: the static grid and the auto-tuner vary.
    config: PathmapConfig
    #: Simulation end time (seconds).
    duration: float
    #: Service class -> its client node id.
    clients: Dict[str, NodeId]
    #: Service class -> its front-end node id.
    fronts: Dict[str, NodeId]
    #: Service class -> exact recorder for its front end.
    truths: Dict[str, GroundTruth]
    #: Labeled behaviour shifts (may be empty).
    change_points: List[ChangePoint] = dataclasses.field(default_factory=list)
    #: True for steady-state scenarios (regression baselines).
    steady: bool = False
    #: Grade only refreshes whose window starts at/after this time.
    warmup: float = 0.0
    #: Seed the run was built from (stamped by :meth:`Scenario.build`).
    seed: int = 0
    _simulated: bool = dataclasses.field(default=False, repr=False)

    def simulate(self) -> "ScenarioRun":
        """Run the simulation to ``duration`` (idempotent)."""
        if not self._simulated:
            self.topology.run_until(self.duration)
            self._simulated = True
        return self

    def refresh_ends(self, config: Optional[PathmapConfig] = None) -> List[float]:
        """Gradeable refresh end times: every ``dW`` tick whose full
        window fits after warmup and inside the simulated span."""
        cfg = config if config is not None else self.config
        ends: List[float] = []
        k = 1
        while True:
            end = k * cfg.refresh_interval
            if end > self.duration:
                break
            if end - cfg.window >= self.warmup:
                ends.append(end)
            k += 1
        if not ends:
            raise AnalysisError(
                f"scenario {self.name!r}: no refresh window fits "
                f"(duration={self.duration}, window={cfg.window}, "
                f"warmup={self.warmup})"
            )
        return ends

    def class_keys(self) -> Dict[str, Tuple[NodeId, NodeId]]:
        """Service class -> the (client, root) key used by PathmapResult."""
        return {
            cls: (self.clients[cls], self.fronts[cls]) for cls in sorted(self.clients)
        }


@dataclasses.dataclass(frozen=True)
class Scenario:
    """A named, parameterized scenario recipe."""

    name: str
    description: str
    #: builder(seed) -> ScenarioRun (not yet simulated).
    builder: Callable[[int], ScenarioRun]
    steady: bool = False
    tags: Tuple[str, ...] = ()

    def build(self, seed: int = 0) -> ScenarioRun:
        """Wire one instance of the scenario (deterministic per seed)."""
        run = self.builder(seed)
        if run.name != self.name:
            raise AnalysisError(
                f"scenario builder returned run named {run.name!r}, "
                f"expected {self.name!r}"
            )
        run.seed = seed
        return run
